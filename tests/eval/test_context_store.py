"""ExperimentContext + ArtifactStore: warm-run reuse and invalidation."""

import pytest

from repro.core.hoiho import HoihoConfig
from repro.core.io import conventions_to_json, training_to_jsonl
from repro.eval.context import ExperimentContext, Scale
from repro.store import ArtifactStore, KIND_TIMELINE, KIND_WORLD


LABELS = ["2020-01"]


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


def _context(store, **overrides):
    kwargs = dict(seed=13, scale=Scale.TINY, itdk_labels=list(LABELS),
                  store=store)
    kwargs.update(overrides)
    return ExperimentContext(**kwargs)


class TestWarmRuns:
    def test_warm_run_skips_regeneration(self, store, monkeypatch):
        cold = _context(store)
        cold_timeline = cold.timeline
        cold_learned = cold.learned("2020-01")
        # world, timeline, hoiho, plus one suffix artifact per suffix
        # examined by the incremental layer
        assert store.stats.writes == 3 + cold_learned.suffixes_examined

        # A warm context must never call the generators again.
        import repro.eval.context as context_module
        monkeypatch.setattr(
            context_module, "generate_world",
            lambda *a, **k: pytest.fail("world regenerated on warm run"))
        monkeypatch.setattr(
            context_module, "build_timeline",
            lambda *a, **k: pytest.fail("timeline rebuilt on warm run"))

        warm = _context(store)
        warm_timeline = warm.timeline
        assert [t.label for t in warm_timeline] \
            == [t.label for t in cold_timeline]
        assert training_to_jsonl(warm_timeline[0].items) \
            == training_to_jsonl(cold_timeline[0].items)
        assert conventions_to_json(warm.learned("2020-01")) \
            == conventions_to_json(cold_learned)

    def test_warm_timeline_reattaches_world(self, store):
        _context(store).timeline
        warm = _context(store)
        for training_set in warm.timeline:
            if training_set.snapshot is not None:
                assert training_set.snapshot.world is warm.world

    def test_learn_timeline_uses_store(self, store):
        cold = _context(store)
        cold.learn_timeline()
        warm = _context(store)
        warm._timeline = cold.timeline  # isolate the learning lookups
        results = warm.learn_timeline()
        assert sorted(results) == sorted(t.label for t in cold.timeline)
        assert store.stats.hits >= len(results)


class TestInvalidation:
    def test_stale_fingerprint_on_config_change(self, store):
        cold = _context(store)
        cold.timeline
        assert store.contains(KIND_WORLD, cold._world_payload())
        assert store.contains(KIND_TIMELINE, cold._timeline_payload())

        # Seed and scale feed the world fingerprint...
        for changed in (_context(store, seed=14),
                        _context(store, scale=Scale.SMALL)):
            assert not store.contains(KIND_WORLD, changed._world_payload())
        # ...and every timeline knob feeds the timeline fingerprint.
        for changed in (_context(store, seed=14),
                        _context(store, scale=Scale.SMALL),
                        _context(store, itdk_labels=["2019-01"]),
                        _context(store, include_pdb=False)):
            assert not store.contains(KIND_TIMELINE,
                                      changed._timeline_payload())
        # Label restriction alone reuses the world artifact.
        assert store.contains(
            KIND_WORLD, _context(store, itdk_labels=["2019-01"])
            ._world_payload())

    def test_hoiho_config_change_relearns(self, store):
        cold = _context(store)
        cold.learned("2020-01")
        changed = _context(store, hoiho_config=HoihoConfig(min_tp=4))
        assert not store.contains(
            "hoiho", changed._hoiho_payload("2020-01"))

    def test_no_store_still_works(self):
        context = ExperimentContext(seed=13, scale=Scale.TINY,
                                    itdk_labels=list(LABELS))
        assert context.store is None
        assert context.timeline
