"""Tests for the section-7 experiment module."""

import pytest

from repro.eval import ExperimentContext, Scale, section7


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(seed=2020, scale=Scale.TINY,
                             itdk_labels=["2020-01"])


class TestSection7:
    def test_runs(self, context):
        result = section7.run(context)
        assert result.asn_suffixes >= 0
        assert result.observed_matches >= 0

    def test_full_zone_superset(self, context):
        """Every traceroute-observed match is also a full-zone match."""
        result = section7.run(context)
        assert result.full_zone_matches >= result.observed_matches

    def test_accuracy_bounds(self, context):
        result = section7.run(context)
        assert 0.0 <= result.name_accuracy <= 1.0
        assert result.name_correct <= result.name_checked

    def test_expansion_factor(self, context):
        result = section7.run(context)
        if result.observed_matches:
            assert result.expansion_factor >= 1.0
        else:
            assert result.expansion_factor == 0.0

    def test_render(self, context):
        text = section7.render(section7.run(context))
        assert "AS-name conventions" in text
        assert "Expansion beyond traceroute" in text
