"""Delta-driven incremental timeline learning through the context."""

import pytest

from repro.core.hoiho import HoihoConfig
from repro.core.io import conventions_to_json
from repro.core.types import TrainingItem
from repro.eval.context import ExperimentContext, Scale
from repro.eval.timeline import TrainingSet
from repro.store import ArtifactStore, KIND_SUFFIX

FAST = HoihoConfig(max_candidates=60, generation_sample=20, eval_pool=20,
                   set_pool=6, n_seeds=2)


def _snapshot(label, n_suffixes=5, mutated=(), per_suffix=12):
    """A synthetic training set; suffixes in ``mutated`` shift ASNs."""
    items = []
    for index in range(n_suffixes):
        suffix = "ctx%02d-inc.org" % index
        base = 500 + 31 * index + (7 if index in mutated else 0)
        for i in range(per_suffix):
            items.append(TrainingItem(
                "as%d.r%d.%s" % (base + i % 3, i, suffix), base + i % 3))
    return TrainingSet(label=label, kind="itdk", method="rtaa",
                       year=2020.0, items=items)


def _context(store, sets, **overrides):
    kwargs = dict(seed=13, scale=Scale.TINY, hoiho_config=FAST,
                  store=store)
    kwargs.update(overrides)
    context = ExperimentContext(**kwargs)
    context._timeline = list(sets)
    return context


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


class TestIncrementalTimeline:
    def test_matches_from_scratch(self, store):
        sets = [_snapshot("s0"), _snapshot("s1", mutated={0, 2})]
        incremental = _context(store, sets).learn_timeline()
        scratch = _context(None, sets).learn_timeline()
        assert sorted(incremental) == ["s0", "s1"]
        for label in scratch:
            assert incremental[label] == scratch[label]
            assert conventions_to_json(incremental[label]) \
                == conventions_to_json(scratch[label])

    def test_unchanged_suffixes_learn_once_across_labels(self, store):
        # s0 and s1 share 3 of 5 suffixes byte-for-byte; the shared
        # training problems must dispatch exactly once (intra-run
        # dedup), leaving 5 + 2 unique artifacts.
        sets = [_snapshot("s0"), _snapshot("s1", mutated={0, 2})]
        context = _context(store, sets)
        context.learn_timeline()
        counters = context.metrics.snapshot()["counters"]
        assert counters["suffix_cache_misses"] == 10  # 5 per label
        assert len(store.entries(KIND_SUFFIX)) == 7   # 5 + 2 unique

    def test_perturbed_label_reuses_unchanged_suffixes(self, store):
        _context(store, [_snapshot("s0")]).learn_timeline()
        # A new snapshot arrives: 1 of 5 suffixes changed.
        perturbed = _context(store, [_snapshot("s1", mutated={3})])
        perturbed.learn_timeline()
        counters = perturbed.metrics.snapshot()["counters"]
        assert counters["suffix_cache_hits"] == 4
        assert counters["suffix_cache_misses"] == 1

    def test_cross_context_shared_label_hits(self, store):
        # Context B's timeline includes A's label; even though B's
        # whole-result key for its own new label misses, every suffix
        # shared with A resolves from the suffix cache.
        a = _context(store, [_snapshot("2020-01")])
        learned_a = a.learn_timeline()
        b = _context(store, [_snapshot("2019-01", mutated={1}),
                             _snapshot("2020-01")])
        learned_b = b.learn_timeline()
        assert learned_b["2020-01"] == learned_a["2020-01"]
        counters = b.metrics.snapshot()["counters"]
        # 2020-01 is served whole-result; 2019-01 plans 5 suffixes of
        # which only the mutated one misses.
        assert counters["suffix_cache_hits"] == 4
        assert counters["suffix_cache_misses"] == 1

    def test_span_attrs_record_cache_traffic(self, store, tmp_path):
        from repro.obs.trace import Tracer
        tracer = Tracer(path=str(tmp_path / "trace.jsonl"))
        context = _context(store, [_snapshot("s0")], tracer=tracer)
        context.learn_timeline()
        tracer.close()
        learn = [r for r in tracer.export()
                 if r.get("name") == "stage.learn"]
        assert learn
        attrs = learn[0]["attrs"]
        assert attrs["suffix_cache_misses"] == 5
        assert attrs["suffix_cache_hits"] == 0
        assert attrs["suffix_plans"] == 5

    def test_suffix_cache_off_skips_namespace(self, store):
        context = _context(store, [_snapshot("s0")], suffix_cache=False)
        context.learn_timeline()
        assert store.entries(KIND_SUFFIX) == []
        # whole-result caching still works
        assert len(store.entries("hoiho")) == 1

    def test_config_change_invalidates_every_suffix(self, store):
        _context(store, [_snapshot("s0")]).learn_timeline()
        changed = _context(store, [_snapshot("s0")],
                           hoiho_config=HoihoConfig(max_candidates=61,
                                                    generation_sample=20,
                                                    eval_pool=20,
                                                    set_pool=6, n_seeds=2))
        changed.learn_timeline()
        counters = changed.metrics.snapshot()["counters"]
        assert counters.get("suffix_cache_hits", 0) == 0
        assert counters["suffix_cache_misses"] == 5
