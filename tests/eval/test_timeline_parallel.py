"""Parallel snapshot fan-out determinism.

The tentpole guarantee: a timeline built through worker processes is
byte-identical to the serially built one.  The TINY-scale test runs in
the tier-1 suite; the full 19-set SMALL-scale proof carries the ``slow``
marker (``make test-slow`` / ``pytest -m slow``).
"""

import pytest

from repro.core.io import training_to_jsonl
from repro.core.parallel import ParallelConfig
from repro.eval.timeline import build_timeline
from repro.topology.world import WorldConfig, generate_world


def _fingerprint(sets):
    """A byte-exact rendering of everything the learner consumes."""
    return [(t.label, t.kind, t.method, t.year, training_to_jsonl(t.items))
            for t in sets]


def _assert_identical(serial, parallel):
    assert _fingerprint(serial) == _fingerprint(parallel)
    for a, b in zip(serial, parallel):
        if a.snapshot is None:
            assert b.snapshot is None
            continue
        assert b.snapshot is not None
        assert a.snapshot.annotations == b.snapshot.annotations
        assert a.snapshot.snapshot.hostnames == b.snapshot.snapshot.hostnames
        assert len(a.snapshot.traces) == len(b.snapshot.traces)


class TestParallelTimelineTiny:
    def test_parallel_identical_to_serial(self):
        world = generate_world(31, WorldConfig.tiny())
        labels = ["2017-02", "2019-01", "2020-01"]
        serial = build_timeline(world, 31, itdk_labels=labels)
        parallel = build_timeline(
            world, 31, itdk_labels=labels,
            parallel=ParallelConfig(workers=2, backend="process",
                                    chunk_size=1))
        _assert_identical(serial, parallel)

    def test_serial_config_matches_default(self):
        world = generate_world(31, WorldConfig.tiny())
        default = build_timeline(world, 31, itdk_labels=["2020-01"])
        explicit = build_timeline(world, 31, itdk_labels=["2020-01"],
                                  parallel=ParallelConfig.serial())
        _assert_identical(default, explicit)


@pytest.mark.slow
class TestParallelTimelineSmall:
    def test_full_19_set_timeline_identical(self):
        world = generate_world(2020, WorldConfig.small())
        serial = build_timeline(world, 2020)
        parallel = build_timeline(
            world, 2020,
            parallel=ParallelConfig(workers=4, backend="process",
                                    chunk_size=1))
        assert len(serial) == 19
        _assert_identical(serial, parallel)
