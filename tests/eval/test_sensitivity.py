"""Tests for the section-6 sensitivity experiment."""

import pytest

from repro.eval import ExperimentContext, Scale, sensitivity


@pytest.fixture(scope="module")
def result():
    context = ExperimentContext(seed=2020, scale=Scale.TINY,
                                itdk_labels=["2020-01"])
    return sensitivity.run(context, stale_rates=(0.02, 0.3))


class TestSensitivity:
    def test_one_row_per_rate(self, result):
        assert [row.stale_rate for row in result.rows] == [0.02, 0.3]

    def test_feedback_never_hurts(self, result):
        for row in result.rows:
            assert row.agreement_after >= row.agreement_before

    def test_rates_bounded(self, result):
        for row in result.rows:
            assert 0.0 <= row.usable_ppv <= 1.0
            assert 0.0 <= row.decision_rate <= 1.0
            assert row.wrongly_used <= row.decisions

    def test_render(self, result):
        text = sensitivity.render(result)
        assert "Sensitivity" in text
        assert "stale rate" in text
