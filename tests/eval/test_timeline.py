"""Edge cases of the training-set timeline and its context accessors."""

import pytest

from repro.eval.context import ExperimentContext, Scale
from repro.eval.timeline import (
    ITDK_TIMELINE,
    PDB_TIMELINE,
    build_timeline,
    vps_for_year,
    alias_augment_for_year,
)
from repro.topology.world import WorldConfig, generate_world


@pytest.fixture(scope="module")
def world():
    return generate_world(23, WorldConfig.tiny())


class TestBuildTimelineRestrictions:
    def test_restricted_itdk_labels(self, world):
        sets = build_timeline(world, 23, itdk_labels=["2019-01", "2020-01"])
        itdk = [t for t in sets if t.kind == "itdk"]
        assert [t.label for t in itdk] == ["2019-01", "2020-01"]
        # PeeringDB sets still ride along by default.
        assert [t.label for t in sets if t.kind == "peeringdb"] \
            == [label for label, _ in PDB_TIMELINE]

    def test_restriction_preserves_timeline_order(self, world):
        # Labels given out of order still come back in timeline order.
        sets = build_timeline(world, 23,
                              itdk_labels=["2020-01", "2017-08"],
                              include_pdb=False)
        assert [t.label for t in sets] == ["2017-08", "2020-01"]

    def test_unknown_label_is_ignored(self, world):
        sets = build_timeline(world, 23, itdk_labels=["1999-12"],
                              include_pdb=False)
        assert sets == []

    def test_include_pdb_false(self, world):
        sets = build_timeline(world, 23, itdk_labels=["2020-01"],
                              include_pdb=False)
        assert [t.kind for t in sets] == ["itdk"]

    def test_pdb_only(self, world):
        sets = build_timeline(world, 23, itdk_labels=[])
        assert [t.kind for t in sets] == ["peeringdb", "peeringdb"]
        for training_set in sets:
            assert training_set.method == "operator"
            assert training_set.snapshot is None

    def test_snapshot_worlds_reattached(self, world):
        sets = build_timeline(world, 23, itdk_labels=["2020-01"],
                              include_pdb=False)
        assert sets[0].snapshot is not None
        assert sets[0].snapshot.world is world

    def test_methods_follow_the_2017_transition(self, world):
        labels = ["2017-02", "2017-08"]
        sets = build_timeline(world, 23, itdk_labels=labels,
                              include_pdb=False)
        assert [t.method for t in sets] == ["rtaa", "bdrmapit"]


class TestGrowthFactors:
    def test_vps_grow_over_the_decade(self):
        years = [year for _, year, _ in ITDK_TIMELINE]
        vps = [vps_for_year(year) for year in years]
        assert vps == sorted(vps)
        assert vps[-1] > vps[0]

    def test_alias_augment_bounded(self):
        for _, year, _ in ITDK_TIMELINE:
            assert 0.63 <= alias_augment_for_year(year) <= 0.75


class TestContextAccessors:
    def test_training_set_keyerror(self):
        context = ExperimentContext(seed=23, scale=Scale.TINY,
                                    itdk_labels=["2020-01"])
        with pytest.raises(KeyError):
            context.training_set("2012-07")

    def test_latest_itdk_runtimeerror_when_pdb_only(self):
        context = ExperimentContext(seed=23, scale=Scale.TINY,
                                    itdk_labels=[])
        with pytest.raises(RuntimeError):
            context.latest_itdk()

    def test_latest_pdb_runtimeerror_when_excluded(self):
        context = ExperimentContext(seed=23, scale=Scale.TINY,
                                    itdk_labels=["2020-01"],
                                    include_pdb=False)
        assert context.latest_itdk().label == "2020-01"
        with pytest.raises(RuntimeError):
            context.latest_pdb()

    def test_include_pdb_false_timeline(self):
        context = ExperimentContext(seed=23, scale=Scale.TINY,
                                    itdk_labels=["2020-01"],
                                    include_pdb=False)
        assert [t.kind for t in context.timeline] == ["itdk"]
