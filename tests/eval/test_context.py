"""Unit tests for the experiment context."""

import pytest

from repro.core.io import conventions_to_json
from repro.core.parallel import ParallelConfig
from repro.eval.context import ExperimentContext, Scale


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(seed=11, scale=Scale.TINY,
                             itdk_labels=["2020-01"])


class TestScale:
    def test_world_configs_ordered(self):
        tiny = Scale.TINY.world_config().asgraph
        small = Scale.SMALL.world_config().asgraph
        full = Scale.FULL.world_config().asgraph
        assert tiny.n_stub < small.n_stub < full.n_stub

    def test_values(self):
        assert Scale("tiny") is Scale.TINY
        assert Scale("full") is Scale.FULL


class TestContext:
    def test_world_memoised(self, context):
        assert context.world is context.world

    def test_routing_memoised(self, context):
        assert context.routing is context.routing

    def test_timeline_restricted(self, context):
        labels = [t.label for t in context.timeline]
        assert labels == ["2020-01", "2019-08-pdb", "2020-02-pdb"]

    def test_training_set_lookup(self, context):
        assert context.training_set("2020-01").label == "2020-01"
        with pytest.raises(KeyError):
            context.training_set("1999-01")

    def test_learned_memoised(self, context):
        assert context.learned("2020-01") is context.learned("2020-01")

    def test_latest_helpers(self, context):
        assert context.latest_itdk().kind == "itdk"
        assert context.latest_pdb().kind == "peeringdb"

    def test_no_itdk_raises(self):
        empty = ExperimentContext(seed=11, scale=Scale.TINY,
                                  itdk_labels=[])
        with pytest.raises(RuntimeError):
            empty.latest_itdk()


class TestLearnTimeline:
    def test_learn_timeline_populates_memo(self, context):
        results = context.learn_timeline()
        labels = [t.label for t in context.timeline]
        assert sorted(results) == sorted(labels)
        for label in labels:
            assert context.learned(label) is results[label]

    def test_parallel_timeline_identical_to_serial(self, context):
        serial = context.learn_timeline()
        par = ExperimentContext(
            seed=11, scale=Scale.TINY, itdk_labels=["2020-01"],
            parallel=ParallelConfig(workers=2, backend="process"))
        # Share the expensive artifacts so only the learning differs.
        par._world = context.world
        par._routing = context.routing
        par._timeline = context.timeline
        parallel = par.learn_timeline()
        assert sorted(parallel) == sorted(serial)
        for label, result in serial.items():
            assert conventions_to_json(parallel[label]) \
                == conventions_to_json(result)
