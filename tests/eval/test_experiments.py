"""Tests for the experiment harness on a tiny shared context.

These run the real experiment code end-to-end at TINY scale (a few dozen
ASes, three ITDK snapshots) and assert structural invariants; the
full-shape assertions live in the integration tests and benchmarks.
"""

import pytest

from repro.eval import (
    ExperimentContext,
    Scale,
    ablation,
    appendix_a,
    figure5,
    figure6,
    section5,
    table1,
    table2,
)
from repro.eval.common import pct, ratio_str, render_table
from repro.eval.timeline import ITDK_TIMELINE, PDB_TIMELINE, vps_for_year


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(
        seed=2020, scale=Scale.TINY,
        itdk_labels=["2013-04", "2017-08", "2020-01"])


class TestCommon:
    def test_pct(self):
        assert pct(0.925) == "92.5%"
        assert pct(1.0) == "100.0%"

    def test_ratio(self):
        assert ratio_str(7.9) == "1/7.9"
        assert ratio_str(None) == "1/inf"

    def test_render_table_alignment(self):
        text = render_table(["a", "bee"], [(1, 2), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert len(lines) == 5


class TestTimeline:
    def test_seventeen_itdks_two_pdbs(self):
        assert len(ITDK_TIMELINE) == 17
        assert len(PDB_TIMELINE) == 2
        methods = [m for _, _, m in ITDK_TIMELINE]
        assert methods.count("rtaa") == 12
        assert methods.count("bdrmapit") == 5

    def test_methods_switch_in_2017(self):
        for label, year, method in ITDK_TIMELINE:
            if year < 2017.5:
                assert method == "rtaa", label
            else:
                assert method == "bdrmapit", label

    def test_vps_grow(self):
        assert vps_for_year(2010.5) < vps_for_year(2015.0) \
            < vps_for_year(2020.0)

    def test_context_builds_requested_sets(self, context):
        labels = [t.label for t in context.timeline]
        assert labels == ["2013-04", "2017-08", "2020-01",
                          "2019-08-pdb", "2020-02-pdb"]

    def test_training_items_nonempty(self, context):
        for training_set in context.timeline:
            assert training_set.items, training_set.label


class TestFigure5:
    def test_rows_cover_timeline(self, context):
        result = figure5.run(context)
        assert len(result.rows) == len(context.timeline)

    def test_counts_nonnegative(self, context):
        result = figure5.run(context)
        for row in result.rows:
            assert row.good >= 0 and row.promising >= 0 and row.poor >= 0
            assert row.usable == row.good + row.promising

    def test_render(self, context):
        text = figure5.render(figure5.run(context))
        assert "Figure 5" in text
        assert "usable suffixes across all sets" in text


class TestFigure6:
    def test_ppv_bounds(self, context):
        result = figure6.run(context)
        for row in result.rows:
            assert 0.0 <= row.ppv <= 1.0
            assert row.ppv_with_siblings >= row.ppv

    def test_render(self, context):
        assert "PPV" in figure6.render(figure6.run(context))


class TestTable1:
    def test_totals_consistent(self, context):
        result = table1.run(context)
        assert sum(result.usable.values()) == result.n_usable
        assert sum(result.single.values()) == result.n_single
        assert result.n_single <= result.n_usable

    def test_render(self, context):
        assert "taxonomy" in table1.render(table1.run(context))


class TestSection5:
    def test_agreement_never_decreases(self, context):
        result = section5.run(context)
        assert result.agreement_after.rate >= result.agreement_before.rate

    def test_used_at_most_incongruent(self, context):
        result = section5.run(context)
        assert 0 <= result.used <= result.n_incongruent <= result.n_hints

    def test_render(self, context):
        text = section5.render(section5.run(context))
        assert "agreement" in text


class TestTable2:
    def test_decision_counts(self, context):
        result = table2.run(context)
        totals = result.totals()
        assert totals.total == sum(row.total for row in result.rows)
        assert totals.correct_decisions <= totals.total

    def test_render(self, context):
        assert "validation" in table2.render(table2.run(context))


class TestAppendixA:
    def test_three_equivalent_conventions_same_atp(self):
        result = appendix_a.run()
        atps = {score.atp for _, _, score in result.scores}
        assert atps == {8}

    def test_learner_matches_nc7(self):
        result = appendix_a.run()
        assert result.learned_matches_nc7

    def test_render(self):
        assert "NC #7" in appendix_a.render(appendix_a.run())


class TestAblation:
    def test_rows_present(self, context):
        result = ablation.run(context)
        assert len(result.learner_rows) == 5
        assert len(result.bdrmapit_rows) == 6

    def test_full_variants_first(self, context):
        result = ablation.run(context)
        assert result.learner_rows[0].name == "full"
        assert result.bdrmapit_rows[0].name == "full"

    def test_render(self, context):
        text = ablation.render(ablation.run(context))
        assert "Ablation" in text
