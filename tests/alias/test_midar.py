"""Unit tests for alias-resolution simulation."""

import pytest

from repro.alias.midar import resolve_aliases
from repro.topology.world import WorldConfig, generate_world


@pytest.fixture(scope="module")
def world():
    return generate_world(42, WorldConfig.tiny())


def _some_observed(world, n=200):
    return [i.address for i in world.interfaces()[:n]]


class TestResolveAliases:
    def test_every_observed_address_mapped(self, world):
        observed = _some_observed(world)
        resolution = resolve_aliases(world, observed, 3, augment_rate=0.0)
        for address in observed:
            assert resolution.node_for(address) is not None

    def test_no_split_no_merge_is_ground_truth(self, world):
        observed = _some_observed(world)
        resolution = resolve_aliases(world, observed, 3, split_rate=0.0,
                                     augment_rate=0.0)
        for node in resolution.nodes.values():
            routers = {world.topology.interfaces_by_address[a].router.rid
                       for a in node.addresses}
            assert len(routers) == 1

    def test_true_asn_recorded(self, world):
        observed = _some_observed(world)
        resolution = resolve_aliases(world, observed, 3, augment_rate=0.0)
        for node in resolution.nodes.values():
            iface = world.topology.interfaces_by_address.get(
                node.addresses[0])
            if iface is not None:
                assert node.true_asn == iface.router.asn

    def test_split_produces_more_nodes(self, world):
        observed = _some_observed(world)
        whole = resolve_aliases(world, observed, 3, split_rate=0.0,
                                augment_rate=0.0)
        split = resolve_aliases(world, observed, 3, split_rate=1.0,
                                augment_rate=0.0)
        assert len(split.nodes) > len(whole.nodes)

    def test_splits_stay_within_router(self, world):
        observed = _some_observed(world)
        split = resolve_aliases(world, observed, 3, split_rate=1.0,
                                augment_rate=0.0)
        for node in split.nodes.values():
            routers = {world.topology.interfaces_by_address[a].router.rid
                       for a in node.addresses
                       if a in world.topology.interfaces_by_address}
            assert len(routers) <= 1

    def test_merge_noise(self, world):
        observed = _some_observed(world)
        merged = resolve_aliases(world, observed, 3, split_rate=0.0,
                                 merge_rate=1.0, augment_rate=0.0)
        multi = [n for n in merged.nodes.values()
                 if len(n.true_asns) >= 1 and len(n.addresses) > 1]
        assert multi

    def test_augmentation_adds_own_addresses(self, world):
        # Observe only one interface per router so there is something
        # for alias probing to discover.
        observed = [r.interfaces[0].address
                    for r in world.routers()[:60] if r.interfaces]
        plain = resolve_aliases(world, observed, 3, augment_rate=0.0)
        augmented = resolve_aliases(world, observed, 3, augment_rate=1.0)
        plain_total = sum(len(n.addresses) for n in plain.nodes.values())
        aug_total = sum(len(n.addresses) for n in augmented.nodes.values())
        assert aug_total > plain_total

    def test_augmented_addresses_belong_to_same_router(self, world):
        observed = _some_observed(world)
        augmented = resolve_aliases(world, observed, 3, split_rate=0.0,
                                    augment_rate=1.0)
        for node in augmented.nodes.values():
            routers = {world.topology.interfaces_by_address[a].router.rid
                       for a in node.addresses
                       if a in world.topology.interfaces_by_address}
            assert len(routers) <= 1

    def test_orphan_addresses_become_singletons(self, world):
        from repro.util.ipaddr import ip_to_int
        # A destination-host address inside an edge prefix.
        asn = world.graph.asns()[0]
        host = world.plan.edge_prefixes(asn)[0].host(99)
        resolution = resolve_aliases(world, [host], 3, augment_rate=0.0)
        node = resolution.node_for(host)
        assert node is not None
        assert node.true_asn == asn

    def test_deterministic(self, world):
        observed = _some_observed(world)
        a = resolve_aliases(world, observed, 3)
        b = resolve_aliases(world, observed, 3)
        assert {n.node_id: n.addresses for n in a.nodes.values()} == \
            {n.node_id: n.addresses for n in b.nodes.values()}
