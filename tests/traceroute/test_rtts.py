"""Unit tests for the RTT model attached to traceroute output."""

import pytest

from repro.topology.world import WorldConfig, generate_world
from repro.traceroute.campaign import CampaignConfig, run_campaign
from repro.traceroute.routing import RoutingModel


@pytest.fixture(scope="module")
def traces():
    world = generate_world(42, WorldConfig.tiny())
    routing = RoutingModel(world.graph)
    return world, run_campaign(world, routing, 9,
                               CampaignConfig(n_vps=5))


class TestRtts:
    def test_rtts_parallel_to_hops(self, traces):
        _, trace_list = traces
        for trace in trace_list:
            assert len(trace.rtts) == len(trace.hops)
            for hop, rtt in zip(trace.hops, trace.rtts):
                assert (hop is None) == (rtt is None)

    def test_rtts_positive(self, traces):
        _, trace_list = traces
        for trace in trace_list:
            for rtt in trace.rtts:
                if rtt is not None:
                    assert rtt > 0

    def test_vp_loc_recorded(self, traces):
        world, trace_list = traces
        from repro.topology import geo
        for trace in trace_list[:50]:
            assert trace.vp_loc in geo.COORDS

    def test_rtt_physics_floor(self, traces):
        """No hop answers faster than light between VP and its metro."""
        world, trace_list = traces
        from repro.topology import geo
        for trace in trace_list[:200]:
            for address, rtt in trace.hop_rtts():
                iface = world.topology.interfaces_by_address.get(address)
                if iface is None:
                    continue
                floor = geo.min_rtt_ms(trace.vp_loc, iface.router.loc)
                assert rtt + 1e-6 >= floor, (trace.vp_loc,
                                             iface.router.loc, rtt)

    def test_propagation_grows_along_path(self, traces):
        """Cumulative delay (minus per-router jitter, bounded by 1.5 ms)
        never decreases along a trace."""
        _, trace_list = traces
        for trace in trace_list[:100]:
            previous = None
            for _, rtt in trace.hop_rtts():
                if previous is not None:
                    assert rtt >= previous - 1.6
                previous = rtt

    def test_hop_rtts_accessor(self, traces):
        _, trace_list = traces
        for trace in trace_list[:20]:
            pairs = trace.hop_rtts()
            assert len(pairs) <= len(trace.hops)
            for address, rtt in pairs:
                assert isinstance(address, int)
                assert isinstance(rtt, float)
