"""Unit tests for router-level traceroute expansion."""

import pytest

from repro.topology.routers import InterfaceKind
from repro.topology.world import WorldConfig, generate_world
from repro.traceroute.probe import Prober
from repro.traceroute.routing import RoutingModel


@pytest.fixture(scope="module")
def setup():
    world = generate_world(42, WorldConfig.tiny())
    routing = RoutingModel(world.graph)
    prober = Prober(world, routing, 5, anonymous_rate=0.0,
                    dest_responds_rate=1.0)
    return world, routing, prober


def _a_destination(world, asn):
    prefix = world.plan.edge_prefixes(asn)[0]
    return prefix.host(9)


class TestTrace:
    def test_trace_reaches_destination(self, setup):
        world, routing, prober = setup
        src = world.graph.asns()[0]
        dst_asn = world.graph.asns()[-1]
        if routing.as_path(src, dst_asn) is None:
            pytest.skip("no route in tiny world")
        vp_router = world.topology.routers_by_asn[src][0]
        trace = prober.trace(src, vp_router, _a_destination(world, dst_asn))
        assert trace is not None
        assert trace.reached
        assert trace.hops[-1] == _a_destination(world, dst_asn)

    def test_hops_are_ingress_interfaces(self, setup):
        """Every recorded hop except the destination is an interface of
        the router that received the probe."""
        world, routing, prober = setup
        src = world.graph.asns()[0]
        vp_router = world.topology.routers_by_asn[src][0]
        for dst_asn in world.graph.asns()[1:6]:
            trace = prober.trace(src, vp_router,
                                 _a_destination(world, dst_asn))
            if trace is None:
                continue
            for hop in trace.hops[:-1] if trace.reached else trace.hops:
                assert hop in world.topology.interfaces_by_address

    def test_interdomain_hop_uses_supplier_address(self, setup):
        """When a trace crosses into another AS, the first hop inside
        carries the address of the shared subnet (figure-1 semantics)."""
        world, routing, prober = setup
        found = False
        src = world.graph.asns()[0]
        vp_router = world.topology.routers_by_asn[src][0]
        for dst_asn in world.graph.asns()[1:]:
            trace = prober.trace(src, vp_router,
                                 _a_destination(world, dst_asn))
            if trace is None:
                continue
            for hop in trace.responsive_hops():
                iface = world.topology.interfaces_by_address.get(hop)
                if iface is None:
                    continue
                if iface.kind is InterfaceKind.P2P \
                        and iface.router.asn != iface.supplier_asn:
                    found = True
        assert found, "no supplier-addressed border hop observed"

    def test_anonymous_routers_yield_none_hops(self):
        world = generate_world(42, WorldConfig.tiny())
        routing = RoutingModel(world.graph)
        prober = Prober(world, routing, 5, anonymous_rate=0.5,
                        dest_responds_rate=1.0)
        src = world.graph.asns()[0]
        vp_router = world.topology.routers_by_asn[src][0]
        traces = [prober.trace(src, vp_router, _a_destination(world, d))
                  for d in world.graph.asns()[1:10]]
        hops = [h for t in traces if t for h in t.hops]
        assert None in hops

    def test_unresponsive_destination(self):
        world = generate_world(42, WorldConfig.tiny())
        routing = RoutingModel(world.graph)
        prober = Prober(world, routing, 5, anonymous_rate=0.0,
                        dest_responds_rate=0.0)
        src = world.graph.asns()[0]
        vp_router = world.topology.routers_by_asn[src][0]
        trace = prober.trace(src, vp_router,
                             _a_destination(world, world.graph.asns()[3]))
        assert trace is not None
        assert not trace.reached

    def test_unrouted_destination(self, setup):
        world, routing, prober = setup
        src = world.graph.asns()[0]
        vp_router = world.topology.routers_by_asn[src][0]
        from repro.util.ipaddr import ip_to_int
        assert prober.trace(src, vp_router,
                            ip_to_int("203.0.113.1")) is None

    def test_deterministic(self, setup):
        world, routing, _ = setup
        src = world.graph.asns()[0]
        vp_router = world.topology.routers_by_asn[src][0]
        dst = _a_destination(world, world.graph.asns()[5])
        a = Prober(world, routing, 5).trace(src, vp_router, dst)
        b = Prober(world, routing, 5).trace(src, vp_router, dst)
        assert a.hops == b.hops
