"""Unit tests for the Gao-Rexford routing model."""

import pytest

from repro.asn.org import ASOrgMap
from repro.asn.relationships import ASRelationships
from repro.topology.asgraph import ASGraph
from repro.traceroute.routing import RoutingModel


def _graph(rels):
    """Wrap relationships in a minimal ASGraph for routing."""
    from repro.topology.asgraph import ASNode, Tier
    nodes = {}
    for asn in rels.asns():
        nodes[asn] = ASNode(asn=asn, tier=Tier.STUB, slug="as%d" % asn,
                            org_id="o%d" % asn, country="us",
                            domain="as%d.net" % asn, loc_codes=["nyc"])
    return ASGraph(nodes=nodes, relationships=rels, orgs=ASOrgMap(),
                   ixps=[])


@pytest.fixture
def diamond():
    r"""A small hierarchy::

            1 ---- 2     (peers)
           / \      \
          3   4      5   (customers of 1/1/2)
          |
          6              (customer of 3)
    """
    rels = ASRelationships()
    rels.add_p2p(1, 2)
    rels.add_p2c(1, 3)
    rels.add_p2c(1, 4)
    rels.add_p2c(2, 5)
    rels.add_p2c(3, 6)
    return RoutingModel(_graph(rels)), rels


class TestPaths:
    def test_customer_path(self, diamond):
        routing, _ = diamond
        assert routing.as_path(6, 3) == [6, 3]
        assert routing.as_path(1, 6) == [1, 3, 6]

    def test_uphill_then_downhill(self, diamond):
        routing, _ = diamond
        assert routing.as_path(3, 4) == [3, 1, 4]

    def test_peer_crossing(self, diamond):
        routing, _ = diamond
        assert routing.as_path(3, 5) == [3, 1, 2, 5]
        assert routing.as_path(6, 5) == [6, 3, 1, 2, 5]

    def test_self_path(self, diamond):
        routing, _ = diamond
        assert routing.as_path(4, 4) == [4]

    def test_all_paths_valley_free(self, diamond):
        routing, rels = diamond
        for src in rels.asns():
            for dst in rels.asns():
                path = routing.as_path(src, dst)
                assert path is not None, (src, dst)
                assert rels.valley_free(tuple(path)), path

    def test_customer_preferred_over_peer(self):
        # 1 peers with 2 and sells to 3; 2 also sells to 3.
        # From 1, the route to 3 must use the customer link.
        rels = ASRelationships()
        rels.add_p2p(1, 2)
        rels.add_p2c(1, 3)
        rels.add_p2c(2, 3)
        routing = RoutingModel(_graph(rels))
        assert routing.as_path(1, 3) == [1, 3]

    def test_peer_preferred_over_provider(self):
        # 3 buys from 1; 3 peers with 2; 2 originates d=2.
        # 1 also reaches 2 (peer).  From 3, route to 2 via its peer.
        rels = ASRelationships()
        rels.add_p2c(1, 3)
        rels.add_p2p(3, 2)
        rels.add_p2p(1, 2)
        routing = RoutingModel(_graph(rels))
        assert routing.as_path(3, 2) == [3, 2]

    def test_no_route_between_isolated_islands(self):
        rels = ASRelationships()
        rels.add_p2c(1, 2)
        rels.add_p2c(3, 4)
        routing = RoutingModel(_graph(rels))
        assert routing.as_path(1, 4) is None
        assert not routing.reachable(2, 3)

    def test_peer_routes_not_exported_to_peers(self):
        # 1-2 peers, 2-3 peers: 1 must NOT reach 3 through 2.
        rels = ASRelationships()
        rels.add_p2p(1, 2)
        rels.add_p2p(2, 3)
        routing = RoutingModel(_graph(rels))
        assert routing.as_path(1, 3) is None

    def test_provider_routes_propagate_down(self):
        # Chain of customers under one provider sees everything.
        rels = ASRelationships()
        rels.add_p2c(1, 2)
        rels.add_p2c(2, 3)
        rels.add_p2c(1, 9)
        routing = RoutingModel(_graph(rels))
        assert routing.as_path(3, 9) == [3, 2, 1, 9]

    def test_next_hop_terminal(self, diamond):
        routing, _ = diamond
        assert routing.next_hop(3, 3) == 3
