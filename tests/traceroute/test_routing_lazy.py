"""Lazy vs eager routing-model equivalence.

The lazy model must answer every (src, dst) query exactly as the eager
model does -- same next hops, same paths, same reachability -- while
computing only the destinations actually queried.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.world import WorldConfig, generate_world
from repro.traceroute.routing import RoutingModel


@pytest.fixture(scope="module")
def world():
    return generate_world(7, WorldConfig.tiny())


@pytest.fixture(scope="module")
def eager(world):
    return RoutingModel(world.graph, eager=True)


class TestLazyEquivalence:
    def test_all_pairs_next_hop(self, world, eager):
        lazy = RoutingModel(world.graph)
        asns = world.graph.asns()
        for src in asns:
            for dst in asns:
                assert lazy.next_hop(src, dst) == eager.next_hop(src, dst)

    def test_all_pairs_paths(self, world, eager):
        lazy = RoutingModel(world.graph)
        asns = world.graph.asns()
        for src in asns[::3]:
            for dst in asns:
                assert lazy.as_path(src, dst) == eager.as_path(src, dst)

    def test_unknown_destination(self, world, eager):
        lazy = RoutingModel(world.graph)
        src = world.graph.asns()[0]
        assert lazy.next_hop(src, 999999) is None
        assert lazy.next_hop(src, 999999) == eager.next_hop(src, 999999)

    def test_lazy_computes_only_queried(self, world):
        lazy = RoutingModel(world.graph)
        assert lazy.computed_destinations == 0
        asns = world.graph.asns()
        lazy.next_hop(asns[0], asns[1])
        assert lazy.computed_destinations == 1
        lazy.next_hop(asns[2], asns[1])  # same dst: memoised
        assert lazy.computed_destinations == 1

    def test_eager_computes_everything(self, world, eager):
        assert eager.computed_destinations == len(world.graph.asns())

    def test_precompute_subset_and_chaining(self, world):
        asns = world.graph.asns()
        lazy = RoutingModel(world.graph).precompute(asns[:4])
        assert lazy.computed_destinations == 4
        assert lazy.precompute() is lazy
        assert lazy.computed_destinations == len(asns)

    def test_precompute_ignores_unknown(self, world):
        lazy = RoutingModel(world.graph).precompute([999999])
        assert lazy.computed_destinations == 0

    def test_lazy_pickle_smaller_than_eager(self, world, eager):
        lazy = RoutingModel(world.graph)
        asns = world.graph.asns()
        lazy.next_hop(asns[0], asns[1])
        assert len(pickle.dumps(lazy)) < len(pickle.dumps(eager))

    def test_pickled_lazy_model_answers_identically(self, world, eager):
        lazy = RoutingModel(world.graph)
        asns = world.graph.asns()
        lazy.next_hop(asns[0], asns[-1])
        clone = pickle.loads(pickle.dumps(lazy))
        for src in asns[:6]:
            for dst in asns:
                assert clone.next_hop(src, dst) == eager.next_hop(src, dst)


class TestLazyEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_queries_match_eager(self, data, world, eager):
        asns = world.graph.asns()
        lazy = RoutingModel(world.graph)
        picks = data.draw(st.lists(
            st.tuples(st.sampled_from(asns), st.sampled_from(asns)),
            min_size=1, max_size=12))
        for src, dst in picks:
            assert lazy.next_hop(src, dst) == eager.next_hop(src, dst)
            assert lazy.as_path(src, dst) == eager.as_path(src, dst)
            assert lazy.reachable(src, dst) == eager.reachable(src, dst)
