"""Unit tests for measurement campaigns."""

import pytest

from repro.topology.world import WorldConfig, generate_world
from repro.traceroute.campaign import CampaignConfig, run_campaign, select_vps
from repro.traceroute.routing import RoutingModel


@pytest.fixture(scope="module")
def world():
    return generate_world(42, WorldConfig.tiny())


@pytest.fixture(scope="module")
def routing(world):
    return RoutingModel(world.graph)


class TestSelectVps:
    def test_count(self, world):
        assert len(select_vps(world, 5, 1)) == 5

    def test_capped_by_pool(self, world):
        vps = select_vps(world, 10000, 1)
        assert len(vps) <= len(world.graph.nodes)

    def test_deterministic(self, world):
        assert select_vps(world, 5, 1) == select_vps(world, 5, 1)

    def test_seed_sensitivity(self, world):
        assert select_vps(world, 5, 1) != select_vps(world, 5, 2)

    def test_vps_are_real_ases(self, world):
        for asn in select_vps(world, 8, 3):
            assert asn in world.graph.nodes


class TestRunCampaign:
    def test_produces_traces(self, world, routing):
        traces = run_campaign(world, routing, 9,
                              CampaignConfig(n_vps=4))
        assert traces
        vp_asns = {t.vp_asn for t in traces}
        assert len(vp_asns) == 4

    def test_scales_with_vps(self, world, routing):
        few = run_campaign(world, routing, 9, CampaignConfig(n_vps=2))
        many = run_campaign(world, routing, 9, CampaignConfig(n_vps=6))
        assert len(many) > len(few)

    def test_dest_fraction(self, world, routing):
        full = run_campaign(world, routing, 9,
                            CampaignConfig(n_vps=2, dest_fraction=1.0))
        half = run_campaign(world, routing, 9,
                            CampaignConfig(n_vps=2, dest_fraction=0.4))
        assert len(half) < len(full)

    def test_dests_inside_edge_prefixes(self, world, routing):
        traces = run_campaign(world, routing, 9, CampaignConfig(n_vps=2))
        for trace in traces[:50]:
            assert world.origin(trace.dst_address) == trace.dst_asn

    def test_deterministic(self, world, routing):
        a = run_campaign(world, routing, 9, CampaignConfig(n_vps=3))
        b = run_campaign(world, routing, 9, CampaignConfig(n_vps=3))
        assert [(t.dst_address, t.hops) for t in a] == \
            [(t.dst_address, t.hops) for t in b]

    def test_destinations_unique_per_vp(self, world, routing):
        # Regression: when dest_per_prefix exceeds a prefix's size the
        # clamped offset used to collapse several indexes onto the same
        # host, probing one destination many times from each VP.
        traces = run_campaign(world, routing, 9,
                              CampaignConfig(n_vps=1, dest_per_prefix=5000))
        destinations = [t.dst_address for t in traces]
        assert destinations
        assert len(destinations) == len(set(destinations))

    def test_dedupe_keeps_all_distinct_targets(self, world, routing):
        # Deduplication must not drop genuinely distinct destinations:
        # with per-prefix targets far below any prefix size, the trace
        # count is unchanged by the dedupe pass.
        config = CampaignConfig(n_vps=2, dest_per_prefix=2)
        traces = run_campaign(world, routing, 9, config)
        per_vp = {}
        for trace in traces:
            per_vp.setdefault(trace.vp_asn, []).append(trace.dst_address)
        for dsts in per_vp.values():
            assert len(dsts) == len(set(dsts))
