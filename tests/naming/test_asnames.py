"""Unit tests for AS-name token generation."""

import pytest

from repro.naming.asnames import as_name_tokens


class TestAsNameTokens:
    def test_full_slug_first(self):
        assert as_name_tokens("seabone")[0] == "seabone"

    def test_short_slug(self):
        tokens = as_name_tokens("gtt")
        assert tokens == ["gtt"]

    def test_truncation_variant(self):
        assert "seabon" in as_name_tokens("seabone")

    def test_vowel_squeeze(self):
        tokens = as_name_tokens("telia")
        assert any(len(t) < len("telia") for t in tokens)

    def test_three_letter_variant(self):
        assert "sea" in as_name_tokens("seabone")

    def test_no_duplicates(self):
        for slug in ("seabone", "telia", "init", "gtt", "lumen",
                     "novaglo", "interquant"):
            tokens = as_name_tokens(slug)
            assert len(tokens) == len(set(tokens)), slug

    def test_all_tokens_nonempty(self):
        for slug in ("ab", "abc", "abcd", "abcdefgh"):
            for token in as_name_tokens(slug):
                assert token
