"""Unit tests for naming-convention profiles and label templates."""

import pytest

from repro.naming.conventions import (
    ConventionProfile,
    EmbedKind,
    IXPNamingMode,
    Style,
    ixp_mode_for,
    member_ixp_label,
    neighbor_label,
    operator_ixp_label,
    own_decor_label,
    plain_label,
    profile_for_as,
)
from repro.topology.asgraph import ASGraphConfig, generate_asgraph
from repro.util.rand import substream


@pytest.fixture(scope="module")
def graph():
    return generate_asgraph(42, ASGraphConfig(
        n_clique=2, n_transit=10, n_access=20, n_stub=30, n_content=4,
        n_ixps=4))


def _profile(style, prefix="as", sep="-", bw=None, mixed=False):
    return ConventionProfile(
        asn=64500, domain="x.com", embed=EmbedKind.NEIGHBOR_ASN,
        style=style, asn_prefix=prefix, sep=sep, bw_token=bw,
        adoption_year=2005.0, mixed_formats=mixed, names_near_side=False)


class TestProfiles:
    def test_deterministic(self, graph):
        node = graph.by_tier(list(graph.nodes.values())[0].tier)[0]
        assert profile_for_as(42, node) == profile_for_as(42, node)

    def test_world_seed_dependence(self, graph):
        node = list(graph.nodes.values())[0]
        profiles = {profile_for_as(seed, node).embed for seed in range(30)}
        assert len(profiles) > 1

    def test_bare_style_has_no_prefix(self, graph):
        for node in graph.nodes.values():
            profile = profile_for_as(42, node)
            if profile.style is Style.BARE:
                assert profile.asn_prefix == ""

    def test_adoption_gating(self):
        profile = _profile(Style.START)
        profile = ConventionProfile(**{**profile.__dict__,
                                       "adoption_year": 2015.0})
        assert not profile.embeds_asn_in(2010.0)
        assert profile.embeds_asn_in(2016.0)

    def test_non_asn_profile_never_embeds(self):
        profile = ConventionProfile(
            asn=1, domain="x.com", embed=EmbedKind.GEO, style=Style.START,
            asn_prefix="as", sep="-", bw_token=None, adoption_year=2000.0,
            mixed_formats=False, names_near_side=False)
        assert not profile.embeds_asn_in(2020.0)

    def test_ixp_mode_deterministic(self, graph):
        for ixp in graph.ixps:
            assert ixp_mode_for(42, ixp) == ixp_mode_for(42, ixp)


class TestLabels:
    def test_simple(self):
        rng = substream(1, "t")
        label = neighbor_label(_profile(Style.SIMPLE), "3356", "fra",
                               "te0-1-0", 0, rng)
        assert label == "as3356"

    def test_start_contains_asn_first(self):
        rng = substream(1, "t")
        label = neighbor_label(_profile(Style.START, bw="10ge"), "3356",
                               "fra", "te0-1-0", 0, rng)
        assert label.startswith("as3356-")
        assert "10ge" in label

    def test_end_places_asn_last(self):
        rng = substream(1, "t")
        label = neighbor_label(_profile(Style.END), "3356", "fra",
                               "te0-1-0", 0, rng)
        assert label.endswith("as3356")

    def test_bare_has_no_alpha_preface(self):
        rng = substream(1, "t")
        label = neighbor_label(_profile(Style.BARE, prefix=""), "3356",
                               "fra", "te0-1-0", 0, rng)
        assert label.split(".")[0] == "3356"

    def test_complex_mixed_formats_alternate(self):
        rng = substream(1, "t")
        profile = _profile(Style.COMPLEX, mixed=True)
        even = neighbor_label(profile, "3356", "fra", "te0", 0, rng)
        odd = neighbor_label(profile, "3356", "fra", "te0", 1, rng)
        assert even != odd

    def test_labels_are_hostname_safe(self):
        rng = substream(1, "t")
        for style in Style:
            label = neighbor_label(_profile(style), "3356", "fra",
                                   "te0-1-0", 2, rng)
            assert all(c.isalnum() or c in ".-_" for c in label), label

    def test_own_decor_matches_figure2_shape(self):
        profile = _profile(Style.START)
        label = own_decor_label(profile, 15576, "cba", "cr1", "ge0-2",
                                "bl", 0)
        assert label.endswith(".as15576")
        assert ".cust." in label

    def test_plain_label_no_asn(self):
        label = plain_label("fra", "cr1", "te0-1-0", 0.2)
        assert "as" not in label.split(".")[0] or True
        assert label

    def test_member_ixp_variants(self):
        labels = {member_ixp_label("init7", "64500", v) for v in range(3)}
        assert len(labels) == 3
        assert any("gw-as64500" == l for l in labels)

    def test_operator_ixp_bare(self):
        label = operator_ixp_label(IXPNamingMode.OPERATOR_BARE, "24115",
                                   "mel", 0)
        assert label.startswith("24115.")

    def test_operator_ixp_as(self):
        label = operator_ixp_label(IXPNamingMode.OPERATOR_AS, "24940",
                                   "akl", 0)
        assert label == "as24940"
