"""Unit tests for hostname assignment and hazard injection."""

import pytest

from repro.naming.assigner import (
    NamingConfig,
    _HazardInjector,
    assign_hostnames,
    host_hostname,
)
from repro.naming.conventions import EmbedKind, IXPNamingMode
from repro.topology.routers import InterfaceKind
from repro.topology.world import WorldConfig, generate_world
from repro.util.strings import damerau_levenshtein


@pytest.fixture(scope="module")
def world():
    return generate_world(42, WorldConfig.tiny())


@pytest.fixture(scope="module")
def outcome(world):
    return assign_hostnames(world, 7, NamingConfig(year=2020.0))


class TestAssignment:
    def test_hostnames_end_with_namer_domain(self, world, outcome):
        for record in outcome.records.values():
            assert record.hostname.endswith(record.domain)

    def test_hostname_charset(self, outcome):
        for record in outcome.records.values():
            assert all(c.isalnum() or c in ".-_"
                       for c in record.hostname), record.hostname

    def test_far_side_embeds_router_owner(self, world, outcome):
        """Neighbor-ASN conventions describe the router's operator."""
        for record in outcome.records.values():
            if record.embed is not EmbedKind.NEIGHBOR_ASN:
                continue
            if record.subject_asn is None:
                continue
            iface = world.topology.interfaces_by_address[record.address]
            if iface.kind is InterfaceKind.P2P \
                    and iface.router.asn != iface.supplier_asn:
                assert record.subject_asn == iface.router.asn

    def test_supplier_is_namer_for_p2p(self, world, outcome):
        for record in outcome.records.values():
            iface = world.topology.interfaces_by_address.get(record.address)
            if iface is None or iface.kind is InterfaceKind.IXP_LAN:
                continue
            assert record.namer_asn == iface.supplier_asn

    def test_ixp_lan_named_under_ixp_domain(self, world, outcome):
        ixp_domains = {ixp.domain for ixp in world.graph.ixps}
        for record in outcome.records.values():
            iface = world.topology.interfaces_by_address.get(record.address)
            if iface is not None and iface.kind is InterfaceKind.IXP_LAN:
                assert record.domain in ixp_domains

    def test_embedded_text_appears_in_hostname(self, outcome):
        for record in outcome.records.values():
            if record.embedded_text:
                assert record.embedded_text in record.hostname

    def test_correct_flag(self, outcome):
        for record in outcome.records.values():
            if record.embedded_text is None:
                assert record.correct is None
            elif record.correct:
                assert str(record.subject_asn) == record.embedded_text

    def test_determinism(self, world):
        a = assign_hostnames(world, 7, NamingConfig(year=2020.0))
        b = assign_hostnames(world, 7, NamingConfig(year=2020.0))
        assert {k: v.hostname for k, v in a.records.items()} == \
            {k: v.hostname for k, v in b.records.items()}

    def test_year_gates_adoption(self, world):
        early = assign_hostnames(world, 7, NamingConfig(year=2004.0))
        late = assign_hostnames(world, 7, NamingConfig(year=2020.0))
        def count_asn(outcome):
            return sum(1 for r in outcome.records.values()
                       if r.embedded_text is not None
                       and r.embed is EmbedKind.NEIGHBOR_ASN)
        assert count_asn(early) < count_asn(late)


class TestHazards:
    def test_rates_roughly_respected(self, world):
        config = NamingConfig(year=2020.0, stale_rate=0.3, typo_rate=0.0,
                              sibling_embed_rate=0.0,
                              sloppy_operator_rate=0.0)
        outcome = assign_hostnames(world, 7, config)
        embedded = [r for r in outcome.records.values()
                    if r.embedded_text is not None
                    and r.namer_asn >= 0
                    and r.embed is EmbedKind.NEIGHBOR_ASN]
        stale = sum(1 for r in embedded if r.stale)
        assert embedded
        share = stale / len(embedded)
        assert 0.15 < share < 0.45

    def test_typo_is_single_edit(self, world):
        injector = _HazardInjector(world, NamingConfig(), 3)
        for asn in (64500, 3356, 213000):
            text = injector._typo(str(asn), injector._rng)
            assert damerau_levenshtein(text, str(asn)) <= 2

    def test_stale_differs_from_subject(self, world):
        injector = _HazardInjector(world, NamingConfig(), 3)
        namer = world.graph.asns()[0]
        for subject in world.graph.asns()[:10]:
            stale = injector._stale_asn(namer, subject, injector._rng)
            assert stale != subject

    def test_ixp_stale_rate_lower(self, world):
        config = NamingConfig()
        injector = _HazardInjector(world, config, 3)
        assert injector.stale_rate_for(-1) == config.ixp_stale_rate
        assert injector.stale_rate_for(world.graph.asns()[0]) in (
            config.stale_rate, config.sloppy_stale_rate)


class TestHostHostname:
    def test_ip_derived_host_names(self, world, outcome):
        # Find an AS with an IP-derived profile; a host address inside
        # its space should get a PTR.
        target = None
        for asn, profile in outcome.profiles.items():
            if profile.embed is EmbedKind.IP_DERIVED:
                target = asn
                break
        if target is None:
            pytest.skip("no IP-derived operator in this tiny world")
        prefix = world.plan.edge_prefixes(target)[0]
        record = host_hostname(world, prefix.host(9), outcome, 7)
        assert record is not None
        assert record.hostname.endswith(outcome.profiles[target].domain)

    def test_non_ip_operator_host_has_no_ptr(self, world, outcome):
        for asn, profile in outcome.profiles.items():
            if profile.embed is not EmbedKind.IP_DERIVED:
                prefix = world.plan.edge_prefixes(asn)[0]
                address = prefix.host(9)
                if address in outcome.records:
                    continue
                assert host_hostname(world, address, outcome, 7) is None
                break

    def test_unrouted_host(self, world, outcome):
        from repro.util.ipaddr import ip_to_int
        assert host_hostname(world, ip_to_int("203.0.113.9"),
                             outcome, 7) is None
