"""Property-based tests (hypothesis) for the annotation hot path.

The serving hot path stacks three optimisations on top of the proven
sequential dispatch loop: fused alternation regexes, the bounded LRU
memo, and the batch fast path that inlines the memo's internals.  Each
must be *result-identical* to the unoptimised reference
(``AnnotationService(result, fuse=False, memo_size=0)``); these
properties drive random hostname streams -- well-formed, malformed,
trailing-dot, uppercase, unknown-suffix -- through both and require
byte-equal answers, plus the memo-invalidation-on-reload contract.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hoiho import Hoiho
from repro.core.types import TrainingItem
from repro.serve.index import DispatchIndex
from repro.serve.service import AnnotationService

# One learned convention set shared by every example (building it is
# the expensive part; the services under test are cheap).
RESULT = Hoiho().run(
    [TrainingItem("as%d.pop%d.example.com" % (asn, i % 3), asn)
     for i, asn in enumerate([3356, 1299, 174, 2914, 6453])]
    + [TrainingItem("%d.cr%d.example.org" % (asn, i % 2), asn)
       for i, asn in enumerate([7018, 3257, 6939, 1239])])

SUFFIXES = ["example.com", "example.org", "example.net", "unknown.ck"]

label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1, max_size=8)
asn_text = st.integers(min_value=0, max_value=4294967295).map(str)

# Hostnames that plausibly hit a convention: as<NNN>.pop<K>.<suffix>
# and <NNN>.cr<K>.<suffix> shapes over known and unknown suffixes.
convention_like = st.builds(
    lambda asn, pop, suffix, shape: (
        "as%s.pop%s.%s" % (asn, pop, suffix) if shape
        else "%s.cr%s.%s" % (asn, pop, suffix)),
    asn_text, st.integers(min_value=0, max_value=99),
    st.sampled_from(SUFFIXES), st.booleans())

# Arbitrary dotted names, mostly misses.
dotted = st.lists(label, min_size=1, max_size=5).map(".".join)

# Denormalised variants: uppercase, trailing dot, surrounding space.
decorated = st.builds(
    lambda host, upper, trail, pad: (
        (" %s " % host if pad else host).upper() if upper
        else (" %s " % host if pad else host)) + ("." if trail else ""),
    st.one_of(convention_like, dotted),
    st.booleans(), st.booleans(), st.booleans())

# Malformed inputs the service must swallow (annotate as None).
malformed = st.sampled_from([None, "", ".", "...", "   ", 42, 3.5, b"x"])

hostname_stream = st.lists(
    st.one_of(decorated, convention_like, dotted, malformed),
    min_size=0, max_size=40)


def reference_service():
    """The unoptimised oracle: sequential matchers, no memo."""
    return AnnotationService(RESULT, fuse=False, memo_size=0)


def hot_service(memo_size=256):
    """The full hot path: fused matchers + LRU memo."""
    return AnnotationService(RESULT, fuse=True, memo_size=memo_size)


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(hostname_stream)
def test_hot_path_is_result_identical_one_by_one(hostnames):
    oracle = reference_service()
    hot = hot_service()
    for hostname in hostnames:
        assert hot.annotate_one(hostname) == oracle.annotate_one(hostname)


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(hostname_stream)
def test_hot_path_is_result_identical_in_batch(hostnames):
    oracle = reference_service()
    hot = hot_service()
    assert hot.annotate_batch(hostnames) == \
        oracle.annotate_batch(hostnames)


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(hostname_stream)
def test_tiny_memo_thrashing_never_changes_answers(hostnames):
    # Constant evictions exercise the LRU edge cases; results must
    # still match the uncached oracle.
    oracle = reference_service()
    hot = hot_service(memo_size=2)
    stream = hostnames * 2  # repeats force hit + eviction interleaving
    assert hot.annotate_batch(stream) == oracle.annotate_batch(stream)


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(hostname_stream)
def test_metrics_totals_agree_with_oracle(hostnames):
    oracle = reference_service()
    hot = hot_service()
    oracle.annotate_batch(hostnames)
    hot.annotate_batch(hostnames)
    ours, theirs = hot.stats(), oracle.stats()
    for key in ("requests", "annotated", "misses", "malformed"):
        assert ours["counters"][key] == theirs["counters"][key]
    assert ours["labelled"].get("extracted") == \
        theirs["labelled"].get("extracted")


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(hostname_stream)
def test_reload_invalidated_memo_matches_fresh_service(hostnames):
    # After a reload, a service that served arbitrary traffic must be
    # indistinguishable from a brand-new service: no stale entries.
    warmed = hot_service()
    warmed.annotate_batch(hostnames)
    warmed.reload_result(RESULT)
    fresh = hot_service()
    assert warmed.annotate_batch(hostnames) == \
        fresh.annotate_batch(hostnames)
    assert len(warmed.memo) == len(fresh.memo)


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(st.lists(st.one_of(convention_like, dotted),
                min_size=0, max_size=30))
def test_fused_plan_extract_matches_sequential(hostnames):
    # Plan-level check, below the service: same patterns compiled both
    # ways agree on every already-normalised hostname.
    for suffix in ("example.com", "example.org"):
        fused_index = DispatchIndex.from_result(RESULT, fuse=True)
        seq_index = DispatchIndex.from_result(RESULT, fuse=False)
        fused = fused_index.plan_for(suffix)
        sequential = seq_index.plan_for(suffix)
        if fused is None:
            assert sequential is None
            continue
        for hostname in hostnames:
            assert fused.extract(hostname.lower()) == \
                sequential.extract(hostname.lower())
