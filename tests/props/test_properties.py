"""Property-based tests (hypothesis) for core data structures and
invariants."""

import re

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asn.relationships import ASRelationships
from repro.core.congruence import congruent
from repro.core.regex_model import (
    Alt,
    Any_,
    Cap,
    CLASS_ALPHA,
    CLASS_DIGIT,
    ClassSeq,
    Exclude,
    Lit,
    Regex,
    escape_literal,
)
from repro.core.types import SuffixDataset, TrainingItem
from repro.core.evaluate import evaluate_regex
from repro.psl import default_psl
from repro.util.ipaddr import IPv4Prefix, int_to_ip, ip_to_int
from repro.util.radix import RadixTrie
from repro.util.strings import damerau_levenshtein, digit_runs, split_segments

# ---------------------------------------------------------------------------
# Damerau-Levenshtein: metric axioms against a reference implementation.
# ---------------------------------------------------------------------------

digits = st.text(alphabet="0123456789", min_size=0, max_size=8)


def _reference_dl(a, b):
    """Straightforward re-implementation used as an oracle."""
    la, lb = len(a), len(b)
    d = [[0] * (lb + 1) for _ in range(la + 1)]
    for i in range(la + 1):
        d[i][0] = i
    for j in range(lb + 1):
        d[0][j] = j
    for i in range(1, la + 1):
        for j in range(1, lb + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            d[i][j] = min(d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost)
            if i > 1 and j > 1 and a[i - 1] == b[j - 2] \
                    and a[i - 2] == b[j - 1]:
                d[i][j] = min(d[i][j], d[i - 2][j - 2] + 1)
    return d[la][lb]


@given(digits, digits)
def test_dl_matches_reference(a, b):
    assert damerau_levenshtein(a, b) == _reference_dl(a, b)


@given(digits, digits)
def test_dl_symmetry(a, b):
    assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)


@given(digits)
def test_dl_identity(a):
    assert damerau_levenshtein(a, a) == 0


@given(digits, digits, digits)
def test_dl_triangle_inequality(a, b, c):
    assert damerau_levenshtein(a, c) <= \
        damerau_levenshtein(a, b) + damerau_levenshtein(b, c)


# ---------------------------------------------------------------------------
# Congruence invariants.
# ---------------------------------------------------------------------------

asns = st.integers(min_value=1, max_value=4200000000)


@given(asns)
def test_congruent_reflexive(asn):
    assert congruent(str(asn), asn)


@given(asns, asns)
def test_congruent_requires_close_numbers(a, b):
    if congruent(str(a), b) and a != b:
        assert damerau_levenshtein(str(a), str(b)) == 1
        assert str(a)[0] == str(b)[0]
        assert str(a)[-1] == str(b)[-1]
        assert len(str(a)) >= 3 and len(str(b)) >= 3


# ---------------------------------------------------------------------------
# IPv4 and radix trie.
# ---------------------------------------------------------------------------

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)


@given(addresses)
def test_ip_round_trip(value):
    assert ip_to_int(int_to_ip(value)) == value


@given(st.lists(st.tuples(addresses,
                          st.integers(min_value=0, max_value=32)),
                max_size=40),
       addresses)
def test_radix_matches_linear_scan(entries, probe):
    trie = RadixTrie()
    prefixes = []
    for address, length in entries:
        mask = 0 if length == 0 \
            else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        prefix = IPv4Prefix(address & mask, length)
        trie.insert(prefix, str(prefix))
        prefixes.append(prefix)
    expected = None
    best_len = -1
    for prefix in prefixes:
        if prefix.contains(probe) and prefix.length > best_len:
            best_len = prefix.length
            expected = str(prefix)
    assert trie.lookup(probe) == expected


# ---------------------------------------------------------------------------
# String segmentation.
# ---------------------------------------------------------------------------

hostname_chars = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-_", min_size=0,
    max_size=30)


@given(hostname_chars)
def test_split_segments_round_trip(text):
    tokens = split_segments(text)
    assert "".join(tokens) == text
    # Odd positions are single punctuation characters.
    for index, token in enumerate(tokens):
        if index % 2 == 1:
            assert len(token) == 1 and token in ".-_"
        else:
            assert all(c not in ".-_" for c in token)


@given(hostname_chars)
def test_digit_runs_are_maximal_and_ordered(text):
    runs = digit_runs(text)
    previous_end = -1
    for run in runs:
        assert run.start > previous_end
        assert text[run.start:run.end] == run.text
        assert run.text.isdigit()
        if run.start > 0:
            assert not text[run.start - 1].isdigit()
        if run.end < len(text):
            assert not text[run.end].isdigit()
        previous_end = run.end


# ---------------------------------------------------------------------------
# Regex AST: rendered patterns always compile; literals match themselves.
# ---------------------------------------------------------------------------

literals = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
                   min_size=1, max_size=6)


@st.composite
def elements(draw):
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return Lit(draw(literals))
    if kind == 1:
        return Lit(draw(st.sampled_from([".", "-", "_"])))
    if kind == 2:
        return Exclude(frozenset(draw(st.sampled_from([".", "-", "_"]))))
    if kind == 3:
        atoms = draw(st.sets(st.sampled_from(
            [CLASS_ALPHA, CLASS_DIGIT, "-", "_"]), min_size=1))
        return ClassSeq(frozenset(atoms))
    options = tuple(sorted(draw(st.sets(literals, min_size=1,
                                        max_size=3))))
    return Alt(options, optional=draw(st.booleans()))


@given(st.lists(elements(), min_size=0, max_size=5))
def test_rendered_patterns_compile(elems):
    regex = Regex(list(elems) + [Cap()], suffix="example.com")
    compiled = regex.compiled       # must not raise
    assert compiled.groups >= 1


@given(literals)
def test_escaped_literal_matches_itself(text):
    assert re.fullmatch(escape_literal(text), text)


@given(st.text(max_size=10))
def test_escape_literal_never_changes_semantics(text):
    pattern = escape_literal(text)
    assert re.fullmatch(pattern, text)


# ---------------------------------------------------------------------------
# Match cache: cached scoring is equivalent to the uncached reference.
# ---------------------------------------------------------------------------

@st.composite
def cache_scenarios(draw):
    """Random regex sets over random datasets under one suffix."""
    suffix = "example.com"
    regexes = tuple(
        Regex(draw(st.lists(elements(), max_size=4)) + [Cap()],
              suffix=suffix)
        for _ in range(draw(st.integers(min_value=0, max_value=4))))
    items = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        asn = draw(st.integers(min_value=100, max_value=99999))
        label = draw(st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789-.",
            min_size=0, max_size=12))
        if draw(st.booleans()):    # sometimes embed the training ASN
            label = "%s%d%s" % (label, asn, draw(st.sampled_from(
                ["", "-pop", ".ge0"])))
        hostname = (label + "." + suffix) if label else suffix
        items.append(TrainingItem(hostname, asn))
    return regexes, SuffixDataset(suffix, items)


@given(cache_scenarios())
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cached_evaluate_nc_matches_reference(scenario):
    from repro.core.evaluate import evaluate_nc
    from repro.core.matchcache import ComposedNC, MatchCache
    regexes, dataset = scenario
    cache = MatchCache(dataset)
    reference = evaluate_nc(regexes, dataset, keep_outcomes=True)
    cached = cache.score_nc(regexes, keep_outcomes=True)
    assert (cached.tp, cached.fp, cached.fn, cached.matches,
            cached.distinct_asns, cached.outcomes) == \
        (reference.tp, reference.fp, reference.fn, reference.matches,
         reference.distinct_asns, reference.outcomes)
    # Incremental composition agrees with the full evaluation at every
    # prefix of the set.
    composed = ComposedNC.empty(cache)
    for end, regex in enumerate(regexes, start=1):
        composed = composed.extend(regex)
        prefix = evaluate_nc(regexes[:end], dataset)
        assert (composed.score.tp, composed.score.fp, composed.score.fn,
                composed.score.matches, composed.score.distinct_asns) == \
            (prefix.tp, prefix.fp, prefix.fn, prefix.matches,
             prefix.distinct_asns)


# ---------------------------------------------------------------------------
# Learner invariants on synthetic suffix data.
# ---------------------------------------------------------------------------

@st.composite
def simple_suffix_items(draw):
    asn_list = draw(st.lists(st.integers(min_value=100, max_value=99999),
                             min_size=4, max_size=10, unique=True))
    return [TrainingItem("as%d.pop%d.example.com" % (asn, i % 3), asn)
            for i, asn in enumerate(asn_list)]


@given(simple_suffix_items())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_learner_perfect_on_clean_simple_data(items):
    from repro.core.hoiho import learn_suffix
    dataset = SuffixDataset("example.com", items)
    convention = learn_suffix(dataset)
    assert convention is not None
    score = convention.score
    assert score.fn == 0
    assert score.fp == 0
    assert score.tp == len(items)
    for item in items:
        assert convention.extract(item.hostname) == item.train_asn


@given(simple_suffix_items())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_nc_score_never_below_best_phase1(items):
    """Phases 2-4 must never select something worse than phase 1's best."""
    from repro.core.evaluate import evaluate_regex
    from repro.core.hoiho import learn_suffix
    from repro.core.phase1 import generate_base_regexes
    dataset = SuffixDataset("example.com", items)
    base = generate_base_regexes(dataset)
    best_base = max((evaluate_regex(r, dataset).atp for r in base),
                    default=0)
    convention = learn_suffix(dataset)
    assert convention is not None
    assert convention.score.atp >= best_base


# ---------------------------------------------------------------------------
# PSL: registered domain always ends with its public suffix.
# ---------------------------------------------------------------------------

labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
                 min_size=1, max_size=6)


@given(st.lists(labels, min_size=1, max_size=5))
def test_psl_invariants(parts):
    hostname = ".".join(parts)
    psl = default_psl()
    suffix = psl.public_suffix(hostname)
    assert suffix is not None
    assert hostname.endswith(suffix)
    registered = psl.registered_domain(hostname)
    if registered is not None:
        assert registered.endswith(suffix)
        assert registered.count(".") == suffix.count(".") + 1
        assert hostname.endswith(registered)


# ---------------------------------------------------------------------------
# Serialization round-trips on randomly generated data.
# ---------------------------------------------------------------------------

@st.composite
def itdk_like(draw):
    from repro.alias.midar import AliasResolution, InferredNode
    from repro.itdk.snapshot import ITDKSnapshot
    n_nodes = draw(st.integers(min_value=1, max_value=6))
    resolution = AliasResolution()
    used = set()
    for index in range(n_nodes):
        addresses = draw(st.lists(addresses_unique, min_size=1,
                                  max_size=4, unique=True))
        addresses = [a for a in addresses if a not in used]
        if not addresses:
            continue
        used.update(addresses)
        node = InferredNode(node_id="N%d" % index, addresses=addresses)
        resolution.nodes[node.node_id] = node
        for address in addresses:
            resolution.node_of_address[address] = node.node_id
    snapshot = ITDKSnapshot(label="prop", resolution=resolution)
    for node_id in sorted(resolution.nodes):
        if draw(st.booleans()):
            snapshot.annotations[node_id] = draw(
                st.integers(min_value=1, max_value=400000))
    snapshot.method = "bdrmapit"
    for address in sorted(used):
        if draw(st.booleans()):
            label = draw(st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1, max_size=12)).strip("-")
            if label:
                snapshot.hostnames[address] = label + ".example.net"
    return snapshot


addresses_unique = st.integers(min_value=1, max_value=0xFFFFFFFE)


@given(itdk_like())
@settings(max_examples=30, deadline=None)
def test_itdk_serialization_round_trip(snapshot):
    from repro.itdk.snapshot import ITDKSnapshot
    parsed = ITDKSnapshot.from_lines(
        snapshot.label, snapshot.nodes_lines(),
        snapshot.node_as_lines(), snapshot.dns_lines())
    assert parsed.annotations == snapshot.annotations
    assert parsed.hostnames == snapshot.hostnames
    assert {n.node_id: sorted(n.addresses)
            for n in parsed.nodes()} == \
        {n.node_id: sorted(n.addresses) for n in snapshot.nodes()}


@given(st.lists(st.tuples(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-.",
            min_size=1, max_size=20),
    st.integers(min_value=1, max_value=4200000000)), max_size=20))
@settings(max_examples=30, deadline=None)
def test_training_jsonl_round_trip(pairs):
    from repro.core.io import training_from_jsonl, training_to_jsonl
    from repro.core.types import TrainingItem
    items = [TrainingItem(hostname=h, train_asn=a) for h, a in pairs]
    assert training_from_jsonl(training_to_jsonl(items)) == items


@st.composite
def hoiho_results(draw):
    """Random learning results: arbitrary suffixes, regex sets built
    from the element strategy, arbitrary scores and classes."""
    from repro.core.evaluate import NCScore
    from repro.core.hoiho import HoihoResult
    from repro.core.select import LearnedConvention, NCClass
    result = HoihoResult(
        suffixes_examined=draw(st.integers(min_value=0, max_value=500)))
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        suffix = ".".join(draw(st.lists(labels, min_size=2, max_size=3)))
        if suffix in result.conventions:
            continue
        regexes = tuple(
            Regex(draw(st.lists(elements(), max_size=4)) + [Cap()],
                  suffix=suffix)
            for _ in range(draw(st.integers(min_value=1, max_value=3))))
        score = NCScore(tp=draw(st.integers(0, 50)),
                        fp=draw(st.integers(0, 50)),
                        fn=draw(st.integers(0, 50)),
                        matches=draw(st.integers(0, 100)))
        score.distinct_asns = set(draw(st.lists(
            st.integers(min_value=1, max_value=400000), max_size=6)))
        result.conventions[suffix] = LearnedConvention(
            suffix=suffix, regexes=regexes, score=score,
            nc_class=draw(st.sampled_from(list(NCClass))))
    return result


@given(hoiho_results())
@settings(max_examples=40, deadline=None)
def test_conventions_json_round_trip(result):
    """The serving layer loads conventions from JSON; the round trip
    must be faithful: same suffixes, patterns (in evaluation order),
    scores, classes -- and a second round trip is a fixed point."""
    from repro.core.io import conventions_from_json, conventions_to_json
    serialized = conventions_to_json(result)
    restored = conventions_from_json(serialized)
    assert restored.suffixes_examined == result.suffixes_examined
    assert set(restored.conventions) == set(result.conventions)
    for suffix, convention in result.conventions.items():
        twin = restored.conventions[suffix]
        assert twin.patterns() == convention.patterns()
        assert twin.nc_class is convention.nc_class
        assert (twin.score.tp, twin.score.fp, twin.score.fn,
                twin.score.matches, twin.score.distinct_asns) == \
            (convention.score.tp, convention.score.fp, convention.score.fn,
             convention.score.matches, convention.score.distinct_asns)
    assert conventions_to_json(restored) == serialized


@given(hoiho_results(),
       st.lists(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-.",
                        min_size=1, max_size=24), max_size=10))
@settings(max_examples=25, deadline=None)
def test_round_tripped_conventions_annotate_identically(result, hostnames):
    """A service built from serialized conventions annotates exactly
    like one built from the in-memory result."""
    from repro.core.io import conventions_to_json
    from repro.serve.service import AnnotationService
    original = AnnotationService(result)
    restored = AnnotationService.from_json(conventions_to_json(result))
    for hostname in hostnames:
        assert original.annotate_one(hostname) == \
            restored.annotate_one(hostname)


# ---------------------------------------------------------------------------
# Naming-layer invariants across seeds.
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=30),
       st.integers(min_value=0, max_value=30))
@settings(max_examples=6, deadline=None)
def test_naming_invariants(world_seed, naming_seed):
    from repro.naming.assigner import NamingConfig, assign_hostnames
    from repro.naming.conventions import EmbedKind
    from repro.topology.world import WorldConfig, generate_world
    world = generate_world(world_seed, WorldConfig.tiny())
    outcome = assign_hostnames(world, naming_seed,
                               NamingConfig(year=2020.0))
    for record in outcome.records.values():
        # Hostnames are DNS-safe and live under the namer's domain.
        assert record.hostname.endswith("." + record.domain) \
            or record.hostname == record.domain
        assert all(c.isalnum() or c in ".-_" for c in record.hostname)
        # Whatever digits were embedded literally appear in the name.
        if record.embedded_text is not None:
            assert record.embedded_text in record.hostname
            assert record.subject_asn is not None
        # Hazard flags only make sense alongside an embedded ASN.
        if record.stale or record.typo or record.sibling:
            assert record.embedded_text is not None
        # Non-hazarded neighbor annotations describe the subject.
        # (A NEIGHBOR_ASN operator still writes plain labels before its
        # adoption year and on its own link ends: no embedded text.)
        if record.embed is EmbedKind.NEIGHBOR_ASN \
                and record.embedded_text is not None \
                and not (record.stale or record.typo or record.sibling):
            assert record.embedded_text == str(record.subject_asn)


# ---------------------------------------------------------------------------
# Valley-free property of generated routing.
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_generated_routes_valley_free(seed):
    from repro.topology.asgraph import ASGraphConfig, generate_asgraph
    from repro.traceroute.routing import RoutingModel
    graph = generate_asgraph(seed, ASGraphConfig(
        n_clique=2, n_transit=3, n_access=5, n_stub=6, n_content=1,
        n_ixps=1))
    routing = RoutingModel(graph)
    asns = graph.asns()
    rels = graph.relationships
    for src in asns[:6]:
        for dst in asns[-6:]:
            path = routing.as_path(src, dst)
            if path is not None:
                assert rels.valley_free(tuple(path)), (seed, path)
