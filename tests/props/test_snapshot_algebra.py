"""Property tests for the snapshot algebra behind windowed telemetry.

``diff_snapshot`` claims to be the exact additive inverse of
``merge_snapshot``, and ``RollingWindows`` claims that folding the
per-interval deltas loses nothing.  Both claims are algebraic, so they
get generative tests: random operation batches drive a real registry,
and the laws must hold on the resulting snapshots.

Histogram sample values are dyadic rationals (multiples of 1/1024), so
every partial sum is exactly representable in binary floating point
and the float-sum round trips are *equalities*, not approximations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import RollingWindows, diff_snapshot

BOUNDS = (0.25, 1.0, 4.0)
COUNTERS = ("requests", "reloads")
LABELS = ("200", "500")
HISTOGRAMS = ("latency",)

#: Dyadic sample values in [0, 8]: n / 1024 sums exactly.
dyadic = st.integers(min_value=0, max_value=8192).map(
    lambda n: n / 1024.0)

operation = st.one_of(
    st.tuples(st.just("counter"), st.sampled_from(COUNTERS),
              st.integers(min_value=1, max_value=9)),
    st.tuples(st.just("label"), st.sampled_from(COUNTERS),
              st.sampled_from(LABELS),
              st.integers(min_value=1, max_value=9)),
    st.tuples(st.just("hist"), st.sampled_from(HISTOGRAMS), dyadic),
)
operations = st.lists(operation, max_size=25)


def apply_operations(registry, ops):
    for op in ops:
        if op[0] == "counter":
            registry.counter(op[1]).inc(op[2])
        elif op[0] == "label":
            registry.labelled(op[1]).inc(op[2], op[3])
        else:
            registry.histogram(op[1], BOUNDS).observe(op[2])


def canonical(snapshot):
    """The additive content of a snapshot: zero entries dropped,
    derived fields (mean, percentiles, extremes) ignored."""
    counters = {name: value for name, value
                in (snapshot.get("counters") or {}).items() if value}
    labelled = {}
    for name, family in (snapshot.get("labelled") or {}).items():
        kept = {label: count for label, count in family.items()
                if count}
        if kept:
            labelled[name] = kept
    histograms = {}
    for name, payload in (snapshot.get("histograms") or {}).items():
        if not payload.get("count"):
            continue
        histograms[name] = {
            "bounds": list(payload.get("bounds") or []),
            "buckets": list(payload.get("buckets") or []),
            "overflow": payload.get("overflow", 0),
            "count": payload.get("count", 0),
            "sum": payload.get("sum", 0.0),
        }
    return {"counters": counters, "labelled": labelled,
            "histograms": histograms}


@settings(deadline=None)
@given(first=operations, second=operations)
def test_merge_of_diff_reproduces_cur_exactly(first, second):
    """merge_snapshot(prev, diff_snapshot(prev, cur)) == cur, exactly
    -- including means, extremes, and percentiles."""
    registry = MetricsRegistry()
    apply_operations(registry, first)
    prev = registry.snapshot()
    apply_operations(registry, second)
    cur = registry.snapshot()

    replay = MetricsRegistry()
    replay.merge_snapshot(prev)
    replay.merge_snapshot(diff_snapshot(prev, cur))
    assert replay.snapshot() == cur


@settings(deadline=None)
@given(first=operations, second=operations)
def test_diff_recovers_the_second_batch(first, second):
    """diff_snapshot(a, a (+) b) == b on the additive content."""
    registry = MetricsRegistry()
    apply_operations(registry, first)
    snap_a = registry.snapshot()
    apply_operations(registry, second)
    snap_ab = registry.snapshot()

    alone = MetricsRegistry()
    apply_operations(alone, second)

    delta = diff_snapshot(snap_a, snap_ab)
    assert canonical(delta) == canonical(alone.snapshot())


@settings(deadline=None)
@given(first=operations)
def test_self_diff_is_empty(first):
    registry = MetricsRegistry()
    apply_operations(registry, first)
    snapshot = registry.snapshot()
    assert canonical(diff_snapshot(snapshot, snapshot)) == \
        canonical({})


@settings(deadline=None)
@given(batches=st.lists(operations, max_size=6))
def test_window_fold_reproduces_cumulative_exactly(batches):
    """Folding every interval delta through the rolling windows (no
    eviction) rebuilds the cumulative snapshot byte for byte."""
    registry = MetricsRegistry()
    windows = RollingWindows(width_seconds=60.0, count=100)
    windows.record({}, ts=1000.0)  # the server's boot baseline
    for index, batch in enumerate(batches):
        apply_operations(registry, batch)
        windows.record(registry.snapshot(), ts=1000.0 + index)
    now = 1000.0 + len(batches)
    assert windows.window_snapshot(now=now) == registry.snapshot()


@settings(deadline=None)
@given(batches=st.lists(operations, min_size=1, max_size=4),
       stray=operations)
def test_rebaseline_then_fold_stays_exact(batches, stray):
    """A restart mid-stream re-baselines; post-restart deltas still
    fold exactly to the new lifetime's cumulative state."""
    windows = RollingWindows(width_seconds=60.0, count=100)
    old = MetricsRegistry()
    apply_operations(old, stray)
    old.counter("requests").inc(1000)  # guarantee a non-successor
    windows.record(old.snapshot(), ts=1000.0)

    fresh = MetricsRegistry()
    windows.record(fresh.snapshot(), ts=1001.0)  # restart: baseline
    for index, batch in enumerate(batches):
        apply_operations(fresh, batch)
        windows.record(fresh.snapshot(), ts=1002.0 + index)
    now = 1002.0 + len(batches)
    assert windows.window_snapshot(now=now) == fresh.snapshot()
