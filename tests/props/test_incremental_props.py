"""Property: incremental learning == from-scratch learning.

The delta planner's whole contract is invisibility: whatever sequence
of snapshots arrives -- suffixes added, removed, mutated, repeated
byte-for-byte -- learning through a warm per-suffix cache must produce
the same :class:`HoihoResult` (and byte-identical conventions JSON) as
learning each snapshot from scratch with no store at all.  These
properties drive randomly perturbed snapshot sequences through both
paths and require exact equality, including after a config change that
moves every fingerprint.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hoiho import Hoiho, HoihoConfig
from repro.core.io import conventions_to_json
from repro.core.types import TrainingItem
from repro.store import ArtifactStore

FAST = HoihoConfig(max_candidates=60, generation_sample=20, eval_pool=20,
                   set_pool=6, n_seeds=2)

SUFFIXES = ["alpha-inc.org", "beta-inc.org", "gamma-inc.org",
            "delta-inc.org"]

# One snapshot = per-suffix knobs: present? which ASN base? how many
# items?  Drawing these per suffix yields adds/removes/mutations/
# repeats between consecutive snapshots for free.
suffix_state = st.fixed_dictionaries({
    "present": st.booleans(),
    "base": st.integers(min_value=0, max_value=3),
    "n": st.integers(min_value=8, max_value=14),
})
snapshot = st.tuples(*[suffix_state for _ in SUFFIXES])
timeline = st.lists(snapshot, min_size=1, max_size=3)


def _items(snap):
    items = []
    for suffix, state in zip(SUFFIXES, snap):
        if not state["present"]:
            continue
        base = 700 + 50 * state["base"]
        for i in range(state["n"]):
            items.append(TrainingItem(
                "as%d.r%d.%s" % (base + i % 3, i, suffix), base + i % 3))
    return items


def _assert_equivalent(snaps, config):
    with tempfile.TemporaryDirectory(prefix="repro-inc-prop-") as tmp:
        store = ArtifactStore(tmp)
        for snap in snaps:
            items = _items(snap)
            incremental = Hoiho(config, store=store).run(items)
            scratch = Hoiho(config).run(items)
            assert incremental == scratch
            assert conventions_to_json(incremental) \
                == conventions_to_json(scratch)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(snaps=timeline)
def test_incremental_equals_from_scratch(snaps):
    _assert_equivalent(snaps, FAST)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(snap=snapshot)
def test_config_change_forces_full_relearn_and_stays_equivalent(snap):
    # The same snapshot under two configs: each config's results must
    # match its own from-scratch learning (no cross-config aliasing --
    # every HoihoConfig field is part of the suffix fingerprint).
    changed = HoihoConfig(max_candidates=61, generation_sample=20,
                          eval_pool=20, set_pool=6, n_seeds=2,
                          enable_cache=False)
    with tempfile.TemporaryDirectory(prefix="repro-inc-prop-") as tmp:
        store = ArtifactStore(tmp)
        items = _items(snap)
        for config in (FAST, changed):
            incremental = Hoiho(config, store=store).run(items)
            scratch = Hoiho(config).run(items)
            assert incremental == scratch
            assert conventions_to_json(incremental) \
                == conventions_to_json(scratch)
