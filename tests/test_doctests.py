"""Run the doctests embedded in the library's docstrings.

The public API docstrings carry runnable examples; this keeps them
honest without requiring a separate doctest pytest configuration.
"""

import doctest

import pytest

import repro.asn.bgp
import repro.asn.org
import repro.asn.relationships
import repro.core.congruence
import repro.core.regex_model
import repro.core.types
import repro.eval.common
import repro.naming.asnames
import repro.psl.psl
import repro.serve.index
import repro.serve.service
import repro.util.ipaddr
import repro.util.radix
import repro.util.rand
import repro.util.strings

_MODULES = [
    repro.util.strings,
    repro.util.ipaddr,
    repro.util.radix,
    repro.util.rand,
    repro.psl.psl,
    repro.asn.relationships,
    repro.asn.org,
    repro.asn.bgp,
    repro.core.congruence,
    repro.core.regex_model,
    repro.core.types,
    repro.naming.asnames,
    repro.eval.common,
    repro.serve.index,
    repro.serve.service,
]


@pytest.mark.parametrize("module", _MODULES,
                         ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0, "module has no doctests to run"
