"""Unit tests for the structured regex AST."""

import pytest

from repro.core.regex_model import (
    Alt,
    Any_,
    Cap,
    CLASS_ALPHA,
    CLASS_DIGIT,
    ClassSeq,
    Exclude,
    Lit,
    Regex,
    escape_literal,
    instrumented_pattern,
)


class TestElements:
    def test_literal_escaping(self):
        assert Lit("a.b").render() == "a\\.b"
        assert Lit("a-b").render() == "a-b"      # '-' stays bare
        assert Lit("a+b").render() == "a\\+b"

    def test_lit_flags(self):
        assert Lit("as").is_simple
        assert not Lit(".").is_simple
        assert Lit(".").is_punct
        assert not Lit("as").is_punct
        assert not Lit("").is_punct

    def test_cap(self):
        assert Cap().render() == "(\\d+)"

    def test_exclude(self):
        assert Exclude(frozenset(".")).render() == "[^\\.]+"
        assert Exclude(frozenset("-")).render() == "[^\\-]+"

    def test_class_seq(self):
        assert ClassSeq(frozenset([CLASS_ALPHA])).render() == "[a-z]+"
        assert ClassSeq(frozenset([CLASS_DIGIT])).render() == "\\d+"
        assert ClassSeq(
            frozenset([CLASS_ALPHA, CLASS_DIGIT])).render() == "[a-z\\d]+"

    def test_class_seq_hyphen_last(self):
        rendered = ClassSeq(
            frozenset([CLASS_ALPHA, "-"])).render()
        assert rendered == "[a-z-]+"

    def test_alt(self):
        assert Alt(("p", "s")).render() == "(?:p|s)"
        assert Alt(("p", "s"), optional=True).render() == "(?:p|s)?"

    def test_any(self):
        assert Any_().render() == ".+"

    def test_element_equality(self):
        assert Lit("as") == Lit("as")
        assert Lit("as") != Lit("asn")
        assert Exclude(frozenset(".")) == Exclude(frozenset("."))
        assert Cap() == Cap()
        assert hash(Lit("x")) == hash(Lit("x"))


class TestRegex:
    def test_paper_pattern(self):
        regex = Regex([Alt(("p", "s"), optional=True), Cap(), Lit("."),
                       ClassSeq(frozenset([CLASS_ALPHA, CLASS_DIGIT]))],
                      suffix="equinix.com")
        assert regex.pattern == \
            "^(?:p|s)?(\\d+)\\.[a-z\\d]+\\.equinix\\.com$"

    def test_extract(self):
        regex = Regex([Lit("as"), Cap()], suffix="example.com")
        assert regex.extract("as64500.example.com") == ("64500", (2, 7))
        assert regex.extract("foo.example.com") is None

    def test_extract_is_anchored(self):
        regex = Regex([Lit("as"), Cap()], suffix="example.com")
        assert regex.extract("xas64500.example.com") is None
        assert regex.extract("as64500.example.com.other") is None

    def test_equality_by_pattern(self):
        a = Regex([Lit("as"), Cap()], suffix="example.com")
        b = Regex([Lit("a"), Lit("s"), Cap()], suffix="example.com")
        assert a == b
        assert hash(a) == hash(b)

    def test_specificity_cost(self):
        tight = Regex([Lit("as"), Cap()], suffix="x.com")
        classy = Regex([Cap(), Lit("."),
                        ClassSeq(frozenset([CLASS_ALPHA]))], suffix="x.com")
        loose = Regex([Cap(), Lit("."), Any_()], suffix="x.com")
        excl = Regex([Cap(), Lit("."), Exclude(frozenset("."))],
                     suffix="x.com")
        assert tight.specificity_cost() == 0
        assert classy.specificity_cost() == 1
        assert excl.specificity_cost() == 2
        assert loose.specificity_cost() == 3

    def test_cap_index(self):
        regex = Regex([Lit("as"), Cap(), Lit("-"), Any_()], suffix="x.com")
        assert regex.cap_index() == 1

    def test_with_elements(self):
        regex = Regex([Lit("as"), Cap()], suffix="x.com")
        other = regex.with_elements([Lit("asn"), Cap()])
        assert other.pattern == "^asn(\\d+)\\.x\\.com$"
        assert other.suffix == "x.com"

    def test_raw(self):
        regex = Regex.raw(r"^as(\d+)\.example\.com$")
        assert regex.extract("as99.example.com") == ("99", (2, 4))
        assert regex.elements == ()


class TestInstrumentedPattern:
    def test_group_mapping(self):
        regex = Regex([Exclude(frozenset(".")), Lit("."), Lit("as"), Cap(),
                       Lit("-"), Any_()], suffix="x.com")
        compiled, groups = instrumented_pattern(regex)
        match = compiled.match("fra.as64500-blah.x.com")
        assert match is not None
        # Two variable (non-capture) elements: Exclude then Any_.
        assert len(groups) == 2
        assert match.group(groups[0]) == "fra"
        assert match.group(groups[1]) == "blah"
        # The ASN capture itself keeps its own group.
        assert "64500" in match.groups()

    def test_alt_does_not_shift_groups(self):
        regex = Regex([Alt(("p", "s"), optional=True), Cap(), Lit("."),
                       Exclude(frozenset("."))], suffix="x.com")
        compiled, groups = instrumented_pattern(regex)
        match = compiled.match("p714.sgw.x.com")
        assert match.group(groups[0]) == "sgw"
