"""Tests for the router-name (alias resolution) learning mode."""

import pytest

from repro.core.regex_model import Regex
from repro.core.routername import (
    RouterDataset,
    RouterItem,
    RouterNameConfig,
    candidate_patterns,
    evaluate_router_regex,
    group_router_items,
    learn_router_names,
    learn_router_suffix,
)


def _rocketfuel_style():
    """port.router.loc hostnames: the router name spans two segments."""
    items = []
    for router, loc, rid in (("cr1", "fra", "R1"), ("cr2", "fra", "R2"),
                             ("cr1", "lon", "R3"), ("br1", "ams", "R4")):
        for port in ("ae2", "xe0", "ge3"):
            items.append(RouterItem("%s.%s.%s.example.net"
                                    % (port, router, loc), rid))
    return RouterDataset("example.net", items)


class TestCandidates:
    def test_capture_over_segment_ranges(self):
        dataset = _rocketfuel_style()
        patterns = candidate_patterns(dataset, dataset.items[0])
        # Captures over 1, 2 and 3 segments all appear.
        assert any(p.count("[a-z\\d]+") == 3 for p in patterns)
        assert r"^[^\.]+\.([a-z\d]+\.[a-z\d]+)\.example\.net$" in patterns

    def test_no_candidates_for_bare_suffix(self):
        dataset = RouterDataset("example.net",
                                [RouterItem("example.net", "R1")])
        assert candidate_patterns(dataset, dataset.items[0]) == []


class TestEvaluate:
    def test_perfect_regex(self):
        dataset = _rocketfuel_style()
        regex = Regex.raw(
            r"^[^\.]+\.([a-z\d]+\.[a-z\d]+)\.example\.net$")
        score = evaluate_router_regex(regex, dataset)
        assert score.tp == 12
        assert score.fp == 0
        assert score.fn == 0

    def test_loc_only_capture_merges_routers(self):
        """Capturing just the loc merges cr1.fra with cr2.fra: FPs."""
        dataset = _rocketfuel_style()
        regex = Regex.raw(r"^[^\.]+\.[^\.]+\.([a-z\d]+)\.example\.net$")
        score = evaluate_router_regex(regex, dataset)
        assert score.fp >= 6          # both fra routers merged
        assert score.atp < 12

    def test_port_capture_splits_routers(self):
        """Capturing the port gives each interface its own name."""
        dataset = _rocketfuel_style()
        regex = Regex.raw(r"^([a-z\d]+)\.[^\.]+\.[^\.]+\.example\.net$")
        score = evaluate_router_regex(regex, dataset)
        assert score.tp == 0

    def test_unmatched_multi_router_is_fn(self):
        dataset = _rocketfuel_style()
        regex = Regex.raw(r"^nomatch\.([a-z\d]+)\.example\.net$")
        score = evaluate_router_regex(regex, dataset)
        assert score.fn == 12


class TestLearn:
    def test_learns_router_name_position(self):
        convention = learn_router_suffix(_rocketfuel_style())
        assert convention is not None
        assert convention.name_of("hu9.cr1.fra.example.net") == "cr1.fra"
        assert convention.score.tp == 12
        assert convention.score.fp == 0

    def test_alias_grouping(self):
        convention = learn_router_suffix(_rocketfuel_style())
        groups = convention.aliases([
            "ae2.cr1.fra.example.net", "xe0.cr1.fra.example.net",
            "ae2.cr2.fra.example.net", "lone.cr9.tyo.example.net"])
        assert {"ae2.cr1.fra.example.net",
                "xe0.cr1.fra.example.net"} in groups
        assert all(len(group) >= 2 for group in groups)

    def test_rejects_no_structure(self):
        # Hostnames whose routers share no common extractable portion.
        items = [RouterItem("host%d.example.net" % i, "R%d" % i)
                 for i in range(8)]
        assert learn_router_suffix(RouterDataset("example.net", items)) \
            is None

    def test_min_multi_routers_gate(self):
        items = [RouterItem("ae%d.cr1.fra.example.net" % i, "R1")
                 for i in range(4)]
        config = RouterNameConfig(min_multi_routers=2)
        assert learn_router_suffix(RouterDataset("example.net", items),
                                   config) is None

    def test_group_and_learn_many_suffixes(self):
        items = []
        for suffix in ("alpha.net", "beta.com"):
            for router, rid in (("cr1", "A"), ("cr2", "B"), ("er1", "C")):
                for port in ("ae0", "xe1"):
                    items.append(RouterItem(
                        "%s.%s.fra.%s" % (port, router, suffix),
                        "%s-%s" % (suffix, rid)))
        conventions = learn_router_names(items)
        assert set(conventions) == {"alpha.net", "beta.com"}

    def test_on_synthetic_world(self):
        """Router names learned from a synthetic ITDK recover true
        aliases with high precision."""
        from repro import METHOD_BDRMAPIT, SnapshotSpec, WorldConfig, \
            generate_world, run_snapshot
        world = generate_world(77, WorldConfig.tiny())
        result = run_snapshot(world, SnapshotSpec(
            label="t", year=2020.0, method=METHOD_BDRMAPIT, n_vps=8,
            seed=5))
        items = []
        for address, hostname in result.snapshot.named_addresses():
            node_id = result.snapshot.resolution.node_of_address.get(
                address)
            if node_id is not None:
                items.append(RouterItem(hostname, node_id))
        conventions = learn_router_names(items)
        # Any learned convention must be cohesion-positive by the gate.
        for convention in conventions.values():
            assert convention.score.atp > 0
