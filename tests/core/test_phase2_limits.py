"""Edge-case tests for phase-2 merging limits."""

import pytest

from repro.core.phase2 import _MAX_OPTIONS, merge_regexes
from repro.core.regex_model import Cap, Exclude, Lit, Regex


def _family(prefixes, suffix="x.com"):
    return [Regex(([Lit(p)] if p else []) + [Cap(), Lit("."),
                                             Exclude(frozenset("."))],
                  suffix)
            for p in prefixes]


class TestMergeLimits:
    def test_option_count_cap(self):
        # More than _MAX_OPTIONS distinct literals: no merge produced
        # for the oversized group.
        prefixes = ["p%d" % i for i in range(_MAX_OPTIONS + 2)]
        merged = merge_regexes(_family(prefixes))
        for regex in merged:
            assert regex.pattern.count("|") <= _MAX_OPTIONS - 1

    def test_long_literals_not_merged(self):
        long_a = "a" * 20
        long_b = "b" * 20
        merged = merge_regexes(_family([long_a, long_b]))
        assert all(long_a not in r.pattern for r in merged)

    def test_merged_not_duplicating_pool(self):
        pool = _family(["p", "s", ""])
        merged = merge_regexes(pool)
        pool_patterns = {r.pattern for r in pool}
        assert all(r.pattern not in pool_patterns for r in merged)

    def test_three_way_merge(self):
        merged = merge_regexes(_family(["p", "s", "gw"]))
        assert any("(?:gw|p|s)" in r.pattern for r in merged)

    def test_optional_only_with_empty_variant(self):
        with_empty = merge_regexes(_family(["p", "s", ""]))
        without_empty = merge_regexes(_family(["p", "s"]))
        assert any("(?:p|s)?" in r.pattern for r in with_empty)
        assert all("(?:p|s)?" not in r.pattern for r in without_empty)
