"""Unit tests for training data types."""

import pytest

from repro.core.types import SuffixDataset, TrainingItem, group_by_suffix


class TestSuffixDataset:
    def test_deduplication(self):
        items = [TrainingItem("as1.x.com", 1), TrainingItem("as1.x.com", 1),
                 TrainingItem("as1.x.com", 2)]
        dataset = SuffixDataset("x.com", items)
        assert len(dataset) == 2

    def test_sorted_deterministic(self):
        items = [TrainingItem("b.x.com", 2), TrainingItem("a.x.com", 1)]
        dataset = SuffixDataset("x.com", items)
        assert [i.hostname for i in dataset.items] == ["a.x.com", "b.x.com"]

    def test_lowercasing(self):
        dataset = SuffixDataset("x.com", [TrainingItem("AS1.X.com", 1)])
        assert dataset.items[0].hostname == "as1.x.com"

    def test_local_part(self):
        dataset = SuffixDataset("x.com", [TrainingItem("as1.pop.x.com", 1)])
        assert dataset.local_part(dataset.items[0]) == "as1.pop"

    def test_local_part_empty_for_bare_suffix(self):
        dataset = SuffixDataset("x.com", [TrainingItem("x.com", 1)])
        assert dataset.local_part(dataset.items[0]) == ""

    def test_local_part_requires_suffix(self):
        dataset = SuffixDataset("x.com", [TrainingItem("as1.x.com", 1)])
        with pytest.raises(ValueError):
            dataset.local_part(TrainingItem("as1.other.com", 1))

    def test_ip_spans_memoised(self):
        item = TrainingItem("1-2-3-4.x.com", 5, address="1.2.3.4")
        dataset = SuffixDataset("x.com", [item])
        assert dataset.ip_spans(0) == [(0, 7)]
        assert dataset.ip_spans(0) is dataset.ip_spans(0)

    def test_distinct_train_asns(self):
        items = [TrainingItem("a.x.com", 1), TrainingItem("b.x.com", 1),
                 TrainingItem("c.x.com", 2)]
        assert SuffixDataset("x.com", items).distinct_train_asns == 2

    def test_tokens(self):
        dataset = SuffixDataset("x.com",
                                [TrainingItem("as1-b.pop.x.com", 1)])
        assert dataset.tokens(dataset.items[0]) == \
            ["as1", "-", "b", ".", "pop"]


class TestGroupBySuffix:
    def test_groups(self):
        items = [TrainingItem("a.alpha.com", 1),
                 TrainingItem("b.alpha.com", 2),
                 TrainingItem("c.beta.co.uk", 3)]
        groups = group_by_suffix(items)
        assert set(groups) == {"alpha.com", "beta.co.uk"}
        assert len(groups["alpha.com"]) == 2

    def test_bare_tld_dropped(self):
        groups = group_by_suffix([TrainingItem("com", 1),
                                  TrainingItem("a.alpha.com", 1)])
        assert set(groups) == {"alpha.com"}

    def test_multi_label_suffix_grouping(self):
        items = [TrainingItem("r1.antel.net.uy", 6057),
                 TrainingItem("r2.antel.net.uy", 6057)]
        groups = group_by_suffix(items)
        assert set(groups) == {"antel.net.uy"}
