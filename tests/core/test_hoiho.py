"""Tests for the end-to-end learner driver and its gates."""

import pytest

from repro.core.hoiho import Hoiho, HoihoConfig, _has_enough_apparent, \
    learn_suffix
from repro.core.select import NCClass
from repro.core.types import SuffixDataset, TrainingItem, group_by_suffix


def _items(template, asns, **kw):
    return [TrainingItem(template.format(asn=asn, i=i), asn)
            for i, asn in enumerate(asns)]


class TestHasEnoughApparent:
    """Boundary behaviour of the cheap apparent-ASN pre-check."""

    def test_exactly_min_apparent_and_two_distinct_passes(self):
        # Exactly min_apparent annotated hostnames, exactly 2 ASNs.
        config = HoihoConfig(min_apparent=2)
        dataset = SuffixDataset("x.com", [
            TrainingItem("as3356.pop.x.com", 3356),
            TrainingItem("as1299.pop.x.com", 1299),
            TrainingItem("lo0.cr1.x.com", 174),
        ])
        assert _has_enough_apparent(dataset, config)

    def test_one_below_min_apparent_fails(self):
        config = HoihoConfig(min_apparent=3)
        dataset = SuffixDataset("x.com", [
            TrainingItem("as3356.pop.x.com", 3356),
            TrainingItem("as1299.pop.x.com", 1299),
            TrainingItem("lo0.cr1.x.com", 174),
        ])
        assert not _has_enough_apparent(dataset, config)

    def test_single_distinct_asn_fails_even_with_enough_apparent(self):
        config = HoihoConfig(min_apparent=2)
        dataset = SuffixDataset("x.com", [
            TrainingItem("as3356.pop1.x.com", 3356),
            TrainingItem("as3356.pop2.x.com", 3356),
            TrainingItem("as3356.pop3.x.com", 3356),
        ])
        assert not _has_enough_apparent(dataset, config)

    def test_no_apparent_asns_fails_regardless_of_threshold(self):
        # min_apparent=0 must not pass vacuously: two distinct apparent
        # ASNs are still required.
        config = HoihoConfig(min_apparent=0)
        dataset = SuffixDataset("x.com", [
            TrainingItem("lo0.cr1.x.com", 3356),
            TrainingItem("lo0.cr2.x.com", 1299),
        ])
        assert not _has_enough_apparent(dataset, config)


class TestGates:
    def test_too_few_hostnames(self):
        dataset = SuffixDataset("x.com", _items("as{asn}.x.com", [1, 2]))
        assert learn_suffix(dataset) is None

    def test_single_training_asn_rejected(self):
        # Figure-2 rule precursor: one ASN cannot establish a convention.
        items = _items("as{asn}.pop{i}.x.com", [64500] * 8)
        dataset = SuffixDataset("x.com", items)
        assert learn_suffix(dataset) is None

    def test_figure2_own_asn_convention_rejected(self):
        # nts.ch style: every hostname embeds the supplier's own ASN.
        items = [
            TrainingItem("ge0-2.01.p.ost.ch.as15576.nts.ch", 15576),
            TrainingItem("lo1000.01.lns.czh.ch.as15576.nts.ch", 15576),
            TrainingItem("te0-0-24.01.p.bre.ch.as15576.nts.ch", 15576),
            TrainingItem("01.r.cba.ch.bl.cust.as15576.nts.ch", 44879),
            TrainingItem("02.r.czh.ch.sda.cust.as15576.nts.ch", 51768),
            TrainingItem("01.r.cbs.ch.wwc.cust.as15576.nts.ch", 206616),
        ]
        dataset = SuffixDataset("nts.ch", items)
        assert learn_suffix(dataset) is None

    def test_ip_derived_suffix_rejected(self):
        # Figure-3b style: hostnames derive from addresses; octets that
        # coincide with training ASNs must not produce a convention.
        items = [
            TrainingItem("50-236-216-122-static.hfc.x.net", 122,
                         address="50.236.216.122"),
            TrainingItem("209-201-58-109.dia.stat.x.net", 209,
                         address="209.201.58.109"),
            TrainingItem("12-17-5-77-static.hfc.x.net", 12,
                         address="12.17.5.77"),
            TrainingItem("99-3-4-5-static.hfc.x.net", 99,
                         address="99.3.4.5"),
            TrainingItem("73-9-8-7-static.hfc.x.net", 73,
                         address="73.9.8.7"),
        ]
        dataset = SuffixDataset("x.net", items)
        assert learn_suffix(dataset) is None

    def test_geo_suffix_rejected(self):
        items = _items("xe0-1.cr{i}.fra.x.com", [3356, 1299, 174, 2914, 13])
        dataset = SuffixDataset("x.com", items)
        assert learn_suffix(dataset) is None


class TestLearning:
    def test_simple_convention(self):
        items = _items("as{asn}.x.com", [3356, 1299, 174, 2914, 6453])
        dataset = SuffixDataset("x.com", items)
        convention = learn_suffix(dataset)
        assert convention is not None
        assert convention.patterns() == [r"^as(\d+)\.x\.com$"]
        assert convention.nc_class is NCClass.GOOD

    def test_start_convention_with_decoration(self):
        asns = [3356, 1299, 174, 2914, 6453, 64500]
        items = [TrainingItem("as%d-10ge-fra%d.x.com" % (a, i % 3), a)
                 for i, a in enumerate(asns)]
        convention = learn_suffix(SuffixDataset("x.com", items))
        assert convention is not None
        assert convention.score.tp == len(asns)
        assert all(convention.extract(i.hostname) == i.train_asn
                   for i in items)

    def test_mixed_formats_learn_regex_set(self):
        a_format = [TrainingItem("as%d-lon%d.x.com" % (a, i % 3), a)
                    for i, a in enumerate((3356, 1299, 174, 2914))]
        b_format = [TrainingItem("fra%d.cust.as%d.x.com" % (i % 3, a), a)
                    for i, a in enumerate((6453, 6461, 64500, 4637))]
        # Plain infrastructure names that match neither format.
        noise = [TrainingItem("lo0.cr%d.par.x.com" % i, 3356)
                 for i in range(3)]
        convention = learn_suffix(
            SuffixDataset("x.com", a_format + b_format + noise))
        assert convention is not None
        assert convention.score.tp == 8
        assert convention.score.fn == 0
        for item in a_format + b_format:
            assert convention.extract(item.hostname) == item.train_asn

    def test_stale_heavy_suffix_is_poor_or_rejected(self):
        # Mostly-wrong training: PPV < 50% forces poor (or rejection).
        good = [TrainingItem("as%d.c%d.x.com" % (a, i), a)
                for i, a in enumerate((3356, 1299))]
        stale = [TrainingItem("as%d.c%d.x.com" % (a + 7, i + 10), a)
                 for i, a in enumerate((174, 2914, 6453, 6461, 7018))]
        convention = learn_suffix(SuffixDataset("x.com", good + stale))
        if convention is not None:
            assert convention.nc_class is NCClass.POOR

    def test_disable_sets_yields_single_regex(self):
        a_format = [TrainingItem("as%d-lon.x.com" % a, a)
                    for a in (3356, 1299, 174)]
        b_format = [TrainingItem("fra.cust.as%d.x.com" % a, a)
                    for a in (6453, 6461, 64500)]
        config = HoihoConfig(enable_sets=False)
        convention = learn_suffix(
            SuffixDataset("x.com", a_format + b_format), config)
        assert convention is not None
        assert convention.single


class TestDriver:
    def test_run_groups_by_suffix(self):
        items = (_items("as{asn}.alpha.com", [1239, 3356, 701, 7018, 209])
                 + _items("as{asn}.beta.net", [6453, 6461, 2914, 3491, 1299])
                 + _items("lo0.cr{i}.gamma.org", [174] * 5))
        result = Hoiho().run(items)
        assert set(result.conventions) == {"alpha.com", "beta.net"}
        assert result.suffixes_examined == 3

    def test_extract_through_result(self):
        items = _items("as{asn}.alpha.com", [1239, 3356, 701, 7018, 209])
        result = Hoiho().run(items)
        assert result.extract("as8075.alpha.com") == 8075
        assert result.extract("as8075.unknown.com") is None
        assert result.extract("bare") is None

    def test_class_counts(self):
        items = _items("as{asn}.alpha.com", [1239, 3356, 701, 7018, 209])
        result = Hoiho().run(items)
        counts = result.class_counts()
        assert counts["good"] == 1
        assert counts["promising"] == 0
        assert counts["poor"] == 0

    def test_determinism(self):
        items = (_items("as{asn}-fra{i}.alpha.com",
                        [1239, 3356, 701, 7018, 209])
                 + _items("p{asn}.lon.beta.net",
                          [6453, 6461, 2914, 3491, 1299]))
        first = Hoiho().run(items)
        second = Hoiho().run(items)
        assert {s: c.patterns() for s, c in first.conventions.items()} == \
            {s: c.patterns() for s, c in second.conventions.items()}

    def test_uppercase_hostnames_normalised(self):
        items = [TrainingItem("AS%d.ALPHA.COM" % a, a)
                 for a in (1239, 3356, 701, 7018, 209)]
        result = Hoiho().run(items)
        assert "alpha.com" in result.conventions
