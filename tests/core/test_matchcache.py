"""Unit tests for the match-vector evaluation cache."""

import pytest

from repro.core.evaluate import evaluate_nc, evaluate_regex, \
    matched_indices
from repro.core.hoiho import HoihoConfig, learn_suffix, \
    learn_suffix_traced
from repro.core.matchcache import ComposedNC, MatchCache
from repro.core.phase1 import generate_base_regexes
from repro.core.phase3 import specialise_regex
from repro.core.phase4 import build_regex_sets
from repro.core.regex_model import Regex
from repro.core.select import select_best
from repro.core.types import SuffixDataset, TrainingItem


@pytest.fixture
def dataset():
    return SuffixDataset("x.com", [
        TrainingItem("as100.pop.x.com", 100),
        TrainingItem("as200.pop.x.com", 200),
        TrainingItem("as300.pop.x.com", 999),        # wrong training -> FP
        TrainingItem("lo0.cr1.x.com", 100),          # no apparent ASN
        TrainingItem("unmatched-as400.x.com", 400),  # FN for the regex
    ])


SPECIFIC = Regex.raw(r"^as(\d+)\.pop\.x\.com$")
RESCUE = Regex.raw(r"^.+-as(\d+)\.x\.com$")
NEVER = Regex.raw(r"^zz(\d+)\.x\.com$")


def _score_tuple(score, with_outcomes=False):
    fields = (score.tp, score.fp, score.fn, score.matches,
              score.distinct_asns)
    return fields + (tuple(score.outcomes),) if with_outcomes else fields


class TestEquivalence:
    @pytest.mark.parametrize("regexes", [
        (), (SPECIFIC,), (RESCUE,), (NEVER,),
        (SPECIFIC, RESCUE), (RESCUE, SPECIFIC),
        (NEVER, SPECIFIC, RESCUE),
    ])
    def test_score_nc_matches_reference(self, dataset, regexes):
        cache = MatchCache(dataset)
        reference = evaluate_nc(regexes, dataset, keep_outcomes=True)
        cached = cache.score_nc(regexes, keep_outcomes=True)
        assert _score_tuple(cached, True) == _score_tuple(reference, True)

    def test_evaluate_helpers_accept_cache(self, dataset):
        cache = MatchCache(dataset)
        assert _score_tuple(evaluate_regex(SPECIFIC, dataset, cache=cache)) \
            == _score_tuple(evaluate_regex(SPECIFIC, dataset))
        assert _score_tuple(
            evaluate_nc((SPECIFIC, RESCUE), dataset, cache=cache)) \
            == _score_tuple(evaluate_nc((SPECIFIC, RESCUE), dataset))
        assert matched_indices(SPECIFIC, dataset, cache=cache) \
            == matched_indices(SPECIFIC, dataset)

    def test_composed_extend_matches_full_evaluation(self, dataset):
        cache = MatchCache(dataset)
        composed = ComposedNC.empty(cache)
        grown = ()
        for regex in (NEVER, SPECIFIC, RESCUE):
            composed = composed.extend(regex)
            grown = grown + (regex,)
            reference = evaluate_nc(grown, dataset)
            assert _score_tuple(composed.score) == _score_tuple(reference)

    def test_empty_composition_counts_fns(self, dataset):
        cache = MatchCache(dataset)
        empty = ComposedNC.empty(cache)
        reference = evaluate_nc((), dataset)
        assert empty.score.fn == reference.fn == 3
        assert empty.score.matches == 0


class TestCaching:
    def test_repeat_scoring_is_served_from_cache(self, dataset):
        cache = MatchCache(dataset)
        first = cache.score_regex(SPECIFIC)
        again = cache.score_regex(SPECIFIC)
        assert again is first
        assert cache.stats.vectors_built == 1
        assert cache.stats.vector_hits == 1
        assert cache.stats.match_calls == len(dataset)

    def test_hit_rate(self, dataset):
        cache = MatchCache(dataset)
        for _ in range(4):
            cache.score_nc((SPECIFIC, RESCUE))
        assert cache.stats.vectors_built == 2
        assert cache.stats.vector_hits == 6
        assert cache.stats.hit_rate == pytest.approx(6 / 8)

    def test_keep_outcomes_not_cached_as_plain_score(self, dataset):
        cache = MatchCache(dataset)
        detailed = cache.score_regex(SPECIFIC, keep_outcomes=True)
        assert len(detailed.outcomes) == len(dataset)
        plain = cache.score_regex(SPECIFIC)
        assert plain.outcomes == []

    def test_select_best_attaches_outcomes_via_cache(self, dataset):
        cache = MatchCache(dataset)
        conventions = [((SPECIFIC, RESCUE), cache.score_nc((SPECIFIC,
                                                            RESCUE)))]
        _, score = select_best(conventions, cache=cache)
        assert len(score.outcomes) == len(dataset)

    def test_phase3_skips_never_matching_regex(self, dataset):
        from repro.core.regex_model import Cap, Exclude, Lit
        regex = Regex([Lit("zz"), Cap(), Lit("."),
                       Exclude(frozenset("."))], suffix="x.com")
        cache = MatchCache(dataset)
        assert specialise_regex(regex, dataset, cache=cache) is None
        # The decision came from the cached vector, not an instrumented
        # re-match.
        assert cache.stats.vectors_built == 1


class TestNoRedundantMatching:
    def test_phase4_performs_zero_matches_on_scored_regexes(
            self, monkeypatch):
        """Phase 4 must build sets purely from cached vectors."""
        asns = [1000 + 7 * i for i in range(12)]
        items = [TrainingItem("as%d-lon%d.x.com" % (asn, i % 3), asn)
                 for i, asn in enumerate(asns)]
        items += [TrainingItem("pop%d.cust.as%d.x.com" % (i % 3, asn + 1),
                               asn + 1) for i, asn in enumerate(asns)]
        dataset = SuffixDataset("x.com", items)
        cache = MatchCache(dataset)
        scored = {}
        for regex in generate_base_regexes(dataset):
            score = cache.score_regex(regex)
            if score.tp > 0:
                scored[regex] = score
        assert len(scored) > 1

        calls = {"extract": 0, "match": 0}
        original_extract = Regex.extract
        def counting_extract(self, hostname):
            calls["extract"] += 1
            return original_extract(self, hostname)
        monkeypatch.setattr(Regex, "extract", counting_extract)
        before_match_calls = cache.stats.match_calls

        conventions = build_regex_sets(scored, dataset, cache=cache)

        assert calls["extract"] == 0
        assert cache.stats.match_calls == before_match_calls
        assert conventions
        # And the composed scores agree with ground-truth evaluation.
        monkeypatch.setattr(Regex, "extract", original_extract)
        for regexes, score in conventions[:5]:
            assert _score_tuple(score) \
                == _score_tuple(evaluate_nc(regexes, dataset))


class TestLearnerIntegration:
    def test_cached_and_uncached_learn_identical(self):
        asns = [64500 + 11 * i for i in range(15)]
        items = [TrainingItem("as%d-10ge-fra%d.y.net" % (asn, i % 4), asn)
                 for i, asn in enumerate(asns)]
        items += [TrainingItem("lo0.cr%d.y.net" % i, 64500)
                  for i in range(5)]
        dataset = SuffixDataset("y.net", items)
        cached = learn_suffix(dataset, HoihoConfig())
        uncached = learn_suffix(dataset, HoihoConfig(enable_cache=False))
        assert cached is not None and uncached is not None
        assert cached.patterns() == uncached.patterns()
        assert repr(cached.score) == repr(uncached.score)
        assert cached.nc_class is uncached.nc_class

    def test_trace_records_cache_stats(self):
        items = [TrainingItem("as%d.z.org" % asn, asn)
                 for asn in (3356, 1299, 174, 2914, 6453)]
        _, trace = learn_suffix_traced(SuffixDataset("z.org", items))
        assert trace.cache_stats is not None
        assert trace.cache_stats.vectors_built > 0
        assert trace.cache_stats.match_calls \
            == trace.cache_stats.vectors_built * len(items)

    def test_trace_without_cache_has_no_stats(self):
        items = [TrainingItem("as%d.z.org" % asn, asn)
                 for asn in (3356, 1299, 174, 2914, 6453)]
        _, trace = learn_suffix_traced(
            SuffixDataset("z.org", items),
            HoihoConfig(enable_cache=False))
        assert trace.cache_stats is None
