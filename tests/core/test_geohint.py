"""Tests for the DRoP-style geolocation hint learner."""

import pytest

from repro.core.geohint import (
    GeoItem,
    GeoLearnerConfig,
    evaluate_geo_regex,
    geo_items_from_traces,
    learn_geo_conventions,
    learn_geo_suffix,
    rtt_table_from_traces,
)
from repro.core.regex_model import Regex
from repro.topology import geo
from repro.traceroute.probe import Trace


def _item(hostname, samples):
    return GeoItem(hostname=hostname, rtt_samples=tuple(samples))


def _truthful_items():
    """Hostnames whose embedded codes agree with physics."""
    items = []
    for code in ("fra", "lon", "nyc", "syd"):
        rtt_from_ams = geo.min_rtt_ms("ams", code) + 1.0
        items.append(_item("xe0.cr1.%s1.example.net" % code,
                           [("ams", rtt_from_ams)]))
    return items


class TestGeoSubstrate:
    def test_distance_symmetry(self):
        assert geo.distance_km("fra", "nyc") == geo.distance_km("nyc",
                                                                "fra")

    def test_known_distance_scale(self):
        # Frankfurt to New York is roughly 6200 km.
        distance = geo.distance_km("fra", "nyc")
        assert 5800 < distance < 6600

    def test_unknown_code(self):
        assert geo.distance_km("fra", "zzz") is None
        assert geo.propagation_ms("fra", "zzz") == 0.0

    def test_same_city(self):
        assert geo.distance_km("fra", "fra") == 0.0
        assert geo.min_rtt_ms("fra", "fra") == 0.0

    def test_feasibility(self):
        floor = geo.min_rtt_ms("fra", "nyc")
        assert not geo.feasible("fra", "nyc", floor / 2.0)
        assert geo.feasible("fra", "nyc", floor + 1.0)
        assert geo.feasible("fra", "fra", 0.5)


class TestRttTable:
    def test_min_per_vp_location(self):
        traces = [
            Trace(vp_asn=1, dst_address=9, dst_asn=2, vp_loc="ams",
                  hops=[100], rtts=[12.0]),
            Trace(vp_asn=1, dst_address=9, dst_asn=2, vp_loc="ams",
                  hops=[100], rtts=[8.0]),
            Trace(vp_asn=3, dst_address=9, dst_asn=2, vp_loc="nyc",
                  hops=[100], rtts=[90.0]),
        ]
        table = rtt_table_from_traces(traces)
        assert table[100] == {"ams": 8.0, "nyc": 90.0}

    def test_anonymous_hops_skipped(self):
        traces = [Trace(vp_asn=1, dst_address=9, dst_asn=2, vp_loc="ams",
                        hops=[None, 100], rtts=[None, 5.0])]
        table = rtt_table_from_traces(traces)
        assert set(table) == {100}

    def test_geo_items(self):
        traces = [Trace(vp_asn=1, dst_address=9, dst_asn=2, vp_loc="ams",
                        hops=[100], rtts=[5.0])]
        items = geo_items_from_traces({100: "xe0.cr1.fra1.example.net",
                                       200: "never.observed.example.net"},
                                      traces)
        assert len(items) == 1
        assert items[0].rtt_samples == (("ams", 5.0),)


class TestEvaluate:
    def test_truthful_codes_consistent(self):
        regex = Regex.raw(
            r"^[^\.]+\.[^\.]+\.([a-z]+)\d+\.example\.net$")
        score, codes = evaluate_geo_regex(regex, _truthful_items())
        assert score.consistent == 4
        assert score.violated == 0
        assert codes == {"fra", "lon", "nyc", "syd"}

    def test_impossible_codes_violate(self):
        # A hostname claiming Sydney answering Amsterdam in 3 ms.
        items = [_item("xe0.cr1.syd1.example.net", [("ams", 3.0)])]
        regex = Regex.raw(
            r"^[^\.]+\.[^\.]+\.([a-z]+)\d+\.example\.net$")
        score, codes = evaluate_geo_regex(regex, items)
        assert score.violated == 1
        assert codes == set()

    def test_unknown_tokens_tracked(self):
        items = [_item("xe0.cr1.zzzz1.example.net", [("ams", 3.0)])]
        regex = Regex.raw(
            r"^[^\.]+\.[^\.]+\.([a-z]+)\d+\.example\.net$")
        score, _ = evaluate_geo_regex(regex, items)
        assert score.unknown == 1


class TestLearn:
    def test_learns_location_position(self):
        convention = learn_geo_suffix("example.net", _truthful_items())
        assert convention is not None
        assert convention.locate("hu9.cr7.lon3.example.net") == "lon"
        assert convention.score.consistency == 1.0

    def test_rejects_lying_suffix(self):
        """Codes systematically violating delay constraints are refused."""
        items = []
        for code in ("syd", "tyo", "scl", "akl"):
            # All claim far-away cities while answering Amsterdam fast.
            items.append(_item("xe0.cr1.%s1.example.net" % code,
                               [("ams", 2.0)]))
        assert learn_geo_suffix("example.net", items,
                                GeoLearnerConfig()) is None

    def test_min_codes_gate(self):
        items = _truthful_items()[:2]
        config = GeoLearnerConfig(min_hostnames=2, min_codes=3)
        assert learn_geo_suffix("example.net", items, config) is None

    def test_end_to_end_on_world(self):
        """Learned geo conventions recover true router locations."""
        from repro import METHOD_BDRMAPIT, SnapshotSpec, WorldConfig, \
            generate_world, run_snapshot
        world = generate_world(77, WorldConfig.tiny())
        result = run_snapshot(world, SnapshotSpec(
            label="t", year=2020.0, method=METHOD_BDRMAPIT, n_vps=8,
            seed=5))
        conventions = learn_geo_conventions(result.snapshot.hostnames,
                                            result.traces)
        checked = correct = 0
        for address, hostname in result.snapshot.named_addresses():
            iface = world.topology.interfaces_by_address.get(address)
            if iface is None:
                continue
            for suffix, convention in conventions.items():
                if hostname.endswith("." + suffix):
                    located = convention.locate(hostname)
                    if located is not None:
                        checked += 1
                        correct += located == iface.router.loc
                    break
        if checked < 10:
            pytest.skip("tiny world gave too few located hostnames")
        assert correct / checked > 0.9
