"""Tests for convention serialization and reporting."""

import pytest

from repro.core.hoiho import Hoiho
from repro.core.io import (
    conventions_from_json,
    conventions_to_json,
    training_from_jsonl,
    training_to_jsonl,
)
from repro.core.report import render_convention, render_result
from repro.core.types import SuffixDataset, TrainingItem, group_by_suffix


@pytest.fixture(scope="module")
def learned():
    items = [TrainingItem("as%d.lon%d.example.com" % (a, i % 3), a,
                          address="4.0.0.%d" % (i + 1))
             for i, a in enumerate([3356, 1299, 174, 2914, 6453])]
    items += [TrainingItem("p%d-fra.other.net" % a, a)
              for a in (64500, 64501, 64502, 64503)]
    return items, Hoiho().run(items)


class TestTrainingJsonl:
    def test_round_trip(self, learned):
        items, _ = learned
        parsed = training_from_jsonl(training_to_jsonl(items))
        assert parsed == items

    def test_empty(self):
        assert training_to_jsonl([]) == ""
        assert training_from_jsonl("") == []

    def test_comments_skipped(self):
        parsed = training_from_jsonl(
            '# header\n{"hostname": "a.x.com", "asn": 5}\n')
        assert parsed == [TrainingItem("a.x.com", 5)]

    def test_address_optional(self):
        items = training_from_jsonl('{"hostname": "a.x.com", "asn": 5}')
        assert items[0].address is None


class TestConventionsJson:
    def test_round_trip_extraction_equivalent(self, learned):
        items, result = learned
        parsed = conventions_from_json(conventions_to_json(result))
        assert set(parsed.conventions) == set(result.conventions)
        for suffix, convention in result.conventions.items():
            clone = parsed.conventions[suffix]
            assert clone.patterns() == convention.patterns()
            assert clone.nc_class is convention.nc_class
            assert clone.score.atp == convention.score.atp
            for item in items:
                assert clone.extract(item.hostname) == \
                    convention.extract(item.hostname)

    def test_extract_through_parsed_result(self, learned):
        _, result = learned
        parsed = conventions_from_json(conventions_to_json(result))
        assert parsed.extract("as8075.lon1.example.com") == 8075


class TestReport:
    def test_render_convention_with_dataset(self, learned):
        items, result = learned
        datasets = group_by_suffix(items)
        convention = result.conventions["example.com"]
        text = render_convention(convention, datasets["example.com"])
        assert "suffix: example.com" in text
        assert "[TP]" in text
        assert "regex 1:" in text

    def test_render_convention_row_cap(self, learned):
        items, result = learned
        datasets = group_by_suffix(items)
        text = render_convention(result.conventions["example.com"],
                                 datasets["example.com"], max_rows=2)
        assert text.count("[TP]") <= 2

    def test_render_result(self, learned):
        items, result = learned
        text = render_result(result, group_by_suffix(items))
        assert "example.com" in text
        assert "other.net" in text
        assert text.startswith("#")

    def test_render_result_usable_only(self, learned):
        _, result = learned
        text = render_result(result, usable_only=True)
        for suffix, convention in result.conventions.items():
            if convention.usable:
                assert suffix in text
