"""Unit tests for best-convention selection and classification."""

import pytest

from repro.core.evaluate import NCScore
from repro.core.regex_model import Regex
from repro.core.select import (
    LearnedConvention,
    NCClass,
    classify_nc,
    select_best,
)


def _score(tp=0, fp=0, fn=0, matches=0, distinct=0):
    score = NCScore(tp=tp, fp=fp, fn=fn, matches=matches)
    score.distinct_asns = set(range(distinct))
    return score


def _regexes(n):
    return tuple(Regex.raw(r"^r%d(\d+)\.x\.com$" % i) for i in range(n))


class TestClassify:
    def test_good(self):
        assert classify_nc(_score(tp=10, fp=1, distinct=3)) is NCClass.GOOD

    def test_good_needs_three_distinct(self):
        assert classify_nc(_score(tp=10, fp=1, distinct=2)) \
            is NCClass.PROMISING

    def test_good_needs_ppv_80(self):
        score = _score(tp=7, fp=3, distinct=5)    # PPV 0.70
        assert classify_nc(score) is NCClass.PROMISING

    def test_promising_needs_ppv_50(self):
        assert classify_nc(_score(tp=5, fp=5, distinct=2)) \
            is NCClass.PROMISING
        assert classify_nc(_score(tp=4, fp=6, distinct=2)) is NCClass.POOR

    def test_poor_single_distinct(self):
        assert classify_nc(_score(tp=10, fp=0, distinct=1)) is NCClass.POOR

    def test_boundary_exact_80(self):
        assert classify_nc(_score(tp=8, fp=2, distinct=3)) is NCClass.GOOD

    def test_usable_property(self):
        assert NCClass.GOOD.usable
        assert NCClass.PROMISING.usable
        assert not NCClass.POOR.usable


class TestSelectBest:
    def test_empty(self):
        assert select_best([]) is None

    def test_top_atp_wins_by_default(self):
        top = (_regexes(2), _score(tp=10, matches=10, distinct=4))
        other = (_regexes(3), _score(tp=8, matches=8, distinct=4))
        regexes, score = select_best([top, other])
        assert score.tp == 10

    def test_prefers_fewer_regexes_when_close(self):
        # Same matches and TPs, one more FP, fewer regexes: selected.
        big = (_regexes(3), _score(tp=10, fp=0, matches=12, distinct=4))
        small = (_regexes(1), _score(tp=10, fp=1, fn=1, matches=12,
                                     distinct=4))
        regexes, _ = select_best([big, small])
        assert len(regexes) == 1

    def test_rejects_fewer_regexes_with_fewer_matches(self):
        big = (_regexes(3), _score(tp=10, fp=0, matches=12, distinct=4))
        small = (_regexes(1), _score(tp=10, fp=1, matches=10, distinct=4))
        regexes, _ = select_best([big, small])
        assert len(regexes) == 3

    def test_rejects_two_more_fps(self):
        big = (_regexes(2), _score(tp=10, fp=0, matches=12, distinct=4))
        small = (_regexes(1), _score(tp=10, fp=2, fn=2, matches=12,
                                     distinct=4))
        regexes, _ = select_best([big, small])
        assert len(regexes) == 2

    def test_rejects_fewer_tps(self):
        big = (_regexes(2), _score(tp=10, fp=0, matches=12, distinct=4))
        small = (_regexes(1), _score(tp=9, fp=0, matches=12, distinct=4))
        regexes, _ = select_best([big, small])
        assert len(regexes) == 2


class TestLearnedConvention:
    def test_extract_first_match_wins(self):
        convention = LearnedConvention(
            suffix="x.com",
            regexes=(Regex.raw(r"^as(\d+)\.x\.com$"),
                     Regex.raw(r"^.*-as(\d+)\.x\.com$")),
            score=_score(tp=5, distinct=3),
            nc_class=NCClass.GOOD)
        assert convention.extract("as64500.x.com") == 64500
        assert convention.extract("gw-as99.x.com") == 99
        assert convention.extract("nothing.x.com") is None

    def test_extract_lowercases(self):
        convention = LearnedConvention(
            suffix="x.com",
            regexes=(Regex.raw(r"^as(\d+)\.x\.com$"),),
            score=_score(tp=5, distinct=3),
            nc_class=NCClass.GOOD)
        assert convention.extract("AS64500.X.COM") == 64500

    def test_single_flag(self):
        convention = LearnedConvention(
            suffix="x.com", regexes=_regexes(1),
            score=_score(), nc_class=NCClass.POOR)
        assert convention.single
        assert not convention.usable
