"""Tests for the parallel execution policy and deterministic fan-out."""

import pytest

from repro.core.hoiho import Hoiho, HoihoConfig
from repro.core.io import conventions_to_json
from repro.core.parallel import (
    ADAPTIVE_CHUNK_MAX,
    ADAPTIVE_CHUNK_MIN,
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    ParallelConfig,
    adaptive_chunks,
    default_workers,
    fork_inheritance_available,
    parallel_map,
)
from repro.core.types import SuffixDataset, TrainingItem, group_by_suffix


def _small_world_items():
    """A small multi-suffix world: mixed formats, noise, and hazards."""
    items = []
    for index, suffix in enumerate(("alpha.com", "beta.net", "gamma.org",
                                    "delta.io", "epsilon.de")):
        base = 3000 + 613 * index
        for i in range(8):
            items.append(TrainingItem(
                "as%d-10ge-pop%d.%s" % (base + 17 * i, i % 3, suffix),
                base + 17 * i))
        for i in range(4):
            items.append(TrainingItem(
                "fra%d.cust.as%d.%s" % (i % 2, base + 500 + 7 * i, suffix),
                base + 500 + 7 * i))
        for i in range(3):
            items.append(TrainingItem("lo0.cr%d.%s" % (i, suffix), base))
    # A suffix that must be rejected (single training ASN).
    items += [TrainingItem("as64500.pop%d.zeta.fr" % i, 64500)
              for i in range(6)]
    return items


class TestParallelConfig:
    def test_defaults_are_serial(self):
        config = ParallelConfig()
        assert not config.is_parallel
        assert config.backend == BACKEND_SERIAL

    def test_from_jobs_serial(self):
        assert not ParallelConfig.from_jobs(1).is_parallel

    def test_from_jobs_negative_rejected(self):
        # Regression: -1 used to silently mean serial, hiding typos.
        with pytest.raises(ValueError, match="--jobs"):
            ParallelConfig.from_jobs(-1)
        with pytest.raises(ValueError):
            ParallelConfig.from_jobs(-3)

    def test_from_jobs_parallel(self):
        config = ParallelConfig.from_jobs(4)
        assert config.is_parallel
        assert config.workers == 4
        assert config.backend == BACKEND_PROCESS

    def test_from_jobs_zero_means_all_cpus(self):
        config = ParallelConfig.from_jobs(0)
        assert config.workers == default_workers()

    def test_single_worker_process_backend_stays_inline(self):
        assert not ParallelConfig(workers=1,
                                  backend=BACKEND_PROCESS).is_parallel

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(backend="threads")
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(chunk_size=0)


def _square(value):
    return value * value


class TestParallelMap:
    def test_serial_order(self):
        config = ParallelConfig.serial()
        assert parallel_map(_square, [3, 1, 2], config) == [9, 1, 4]

    def test_process_order(self):
        config = ParallelConfig(workers=2, backend=BACKEND_PROCESS,
                                chunk_size=1)
        assert parallel_map(_square, list(range(7)), config) == \
            [v * v for v in range(7)]

    def test_single_item_stays_inline(self):
        config = ParallelConfig(workers=2, backend=BACKEND_PROCESS)
        assert parallel_map(_square, [5], config) == [25]


class TestDeterminism:
    def test_parallel_run_datasets_identical_to_serial(self):
        """Acceptance: parallel conventions byte-identical to serial."""
        items = _small_world_items()
        serial = Hoiho().run(items)
        parallel = Hoiho(parallel=ParallelConfig(
            workers=2, backend=BACKEND_PROCESS, chunk_size=1)).run(items)
        assert conventions_to_json(parallel) == conventions_to_json(serial)
        assert parallel.suffixes_examined == serial.suffixes_examined
        assert {s: c.patterns() for s, c in parallel.conventions.items()} \
            == {s: c.patterns() for s, c in serial.conventions.items()}

    def test_parallel_run_datasets_with_config(self):
        items = _small_world_items()
        config = HoihoConfig(enable_classes=False)
        serial = Hoiho(config).run(items)
        parallel = Hoiho(config, parallel=ParallelConfig(
            workers=3, backend=BACKEND_PROCESS)).run(items)
        assert conventions_to_json(parallel) == conventions_to_json(serial)

    def test_run_datasets_accepts_unsorted_input(self):
        items = _small_world_items()
        datasets = list(group_by_suffix(items).values())
        forward = Hoiho().run_datasets(datasets)
        backward = Hoiho(parallel=ParallelConfig(
            workers=2, backend=BACKEND_PROCESS)).run_datasets(
                list(reversed(datasets)))
        assert conventions_to_json(forward) == conventions_to_json(backward)


class TestAdaptiveChunks:
    def test_doubling_ramp_schedule(self):
        sizes = [len(c) for c in adaptive_chunks(range(70), start=4,
                                                 limit=16)]
        # 4, 8, 16, 16, ... then the remainder.
        assert sizes == [4, 8, 16, 16, 16, 10]

    def test_ramp_caps_at_limit(self):
        sizes = [len(c) for c in adaptive_chunks(range(2000), start=512,
                                                 limit=512)]
        assert sizes == [512, 512, 512, 464]

    def test_defaults_ramp_from_min_to_max(self):
        n = ADAPTIVE_CHUNK_MIN + ADAPTIVE_CHUNK_MAX + 7
        sizes = [len(c) for c in adaptive_chunks(range(n))]
        assert sizes[0] == ADAPTIVE_CHUNK_MIN
        assert max(sizes) <= ADAPTIVE_CHUNK_MAX
        assert sum(sizes) == n

    def test_preserves_order_and_items(self):
        items = list(range(100))
        chained = [x for chunk in adaptive_chunks(items, start=3, limit=7)
                   for x in chunk]
        assert chained == items

    def test_empty_input_yields_nothing(self):
        assert list(adaptive_chunks([])) == []

    def test_deterministic(self):
        first = list(adaptive_chunks(range(500), start=8, limit=64))
        second = list(adaptive_chunks(range(500), start=8, limit=64))
        assert first == second

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            list(adaptive_chunks([1], start=0, limit=4))
        with pytest.raises(ValueError):
            list(adaptive_chunks([1], start=8, limit=4))


class TestForkInheritance:
    def test_matches_start_method(self):
        import multiprocessing
        expected = multiprocessing.get_start_method() == "fork"
        assert fork_inheritance_available() is expected
