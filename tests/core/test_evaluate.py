"""Unit tests for NC scoring."""

import pytest

from repro.core.evaluate import evaluate_nc, evaluate_regex, matched_indices
from repro.core.regex_model import Regex
from repro.core.types import SuffixDataset, TrainingItem


@pytest.fixture
def dataset():
    return SuffixDataset("x.com", [
        TrainingItem("as100.pop.x.com", 100),
        TrainingItem("as200.pop.x.com", 200),
        TrainingItem("as300.pop.x.com", 999),       # wrong training -> FP
        TrainingItem("lo0.cr1.x.com", 100),         # no apparent ASN
        TrainingItem("unmatched-as400.x.com", 400),  # FN for the regex
    ])


class TestScoring:
    def test_counts(self, dataset):
        regex = Regex.raw(r"^as(\d+)\.pop\.x\.com$")
        score = evaluate_regex(regex, dataset)
        assert score.tp == 2
        assert score.fp == 1
        assert score.fn == 1
        assert score.matches == 3
        assert score.atp == 0
        assert score.ppv == pytest.approx(2 / 3)

    def test_distinct(self, dataset):
        regex = Regex.raw(r"^as(\d+)\.pop\.x\.com$")
        score = evaluate_regex(regex, dataset)
        assert score.distinct == 2
        assert score.distinct_asns == {100, 200}

    def test_keep_outcomes(self, dataset):
        regex = Regex.raw(r"^as(\d+)\.pop\.x\.com$")
        score = evaluate_regex(regex, dataset, keep_outcomes=True)
        assert len(score.outcomes) == len(dataset)

    def test_empty_nc(self, dataset):
        score = evaluate_nc((), dataset)
        assert score.tp == 0
        assert score.matches == 0
        assert score.fn == 3   # every apparent-ASN hostname unmatched

    def test_ppv_zero_when_no_extractions(self, dataset):
        score = evaluate_nc((), dataset)
        assert score.ppv == 0.0

    def test_set_ordering_first_match(self, dataset):
        specific = Regex.raw(r"^as(\d+)\.pop\.x\.com$")
        rescue = Regex.raw(r"^.+-as(\d+)\.x\.com$")
        score = evaluate_nc((specific, rescue), dataset)
        assert score.tp == 3
        assert score.fn == 0

    def test_rank_key_orders_by_atp(self):
        from repro.core.evaluate import NCScore
        high = NCScore(tp=5)
        low = NCScore(tp=5, fp=3)
        assert high.rank_key() < low.rank_key()

    def test_matched_indices(self, dataset):
        regex = Regex.raw(r"^as(\d+)\.pop\.x\.com$")
        assert matched_indices(regex, dataset) == [0, 1, 2]
