"""Unit tests for the delta planner and the per-suffix cache layer."""

import dataclasses

import pytest

from repro.core.delta import (
    dedupe_plans,
    diff_fingerprints,
    plan_datasets,
    plan_timeline,
    resolve_plans,
)
from repro.core.hoiho import (
    Hoiho,
    HoihoConfig,
    SuffixArtifact,
    suffix_fingerprint,
)
from repro.core.types import SuffixDataset, TrainingItem
from repro.obs.metrics import MetricsRegistry
from repro.store import KIND_SUFFIX, ArtifactStore

# Small enough to learn in milliseconds, big enough to pass the gates.
FAST = HoihoConfig(max_candidates=60, generation_sample=20, eval_pool=20,
                   set_pool=6, n_seeds=2)


def _dataset(suffix="alpha-inc.org", base=100, n=12):
    items = [TrainingItem("as%d.r%d.%s" % (base + i % 3, i, suffix),
                          base + i % 3) for i in range(n)]
    return SuffixDataset(suffix, items)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


class TestSuffixFingerprint:
    def test_deterministic(self):
        assert suffix_fingerprint(_dataset(), FAST) \
            == suffix_fingerprint(_dataset(), FAST)

    def test_item_change_moves_fingerprint(self):
        base = suffix_fingerprint(_dataset(), FAST)
        assert suffix_fingerprint(_dataset(n=13), FAST) != base
        assert suffix_fingerprint(_dataset(base=101), FAST) != base

    def test_every_config_field_moves_fingerprint(self):
        # enable_cache included: a MatchCache-backed run attaches
        # per-item outcomes to the winning score, so cached and
        # uncached results are NOT interchangeable artifacts.
        base = suffix_fingerprint(_dataset(), FAST)
        for field in dataclasses.fields(FAST):
            value = getattr(FAST, field.name)
            if isinstance(value, bool):
                changed = dataclasses.replace(FAST,
                                              **{field.name: not value})
            elif isinstance(value, int):
                changed = dataclasses.replace(FAST,
                                              **{field.name: value + 1})
            elif isinstance(value, float):
                changed = dataclasses.replace(
                    FAST, **{field.name: value + 0.125})
            else:
                continue
            assert suffix_fingerprint(_dataset(), changed) != base, \
                field.name

    def test_address_participates(self):
        with_addr = SuffixDataset("x.com", [
            TrainingItem("as1.x.com", 1, address="10.0.0.1")])
        without = SuffixDataset("x.com", [TrainingItem("as1.x.com", 1)])
        assert suffix_fingerprint(with_addr, FAST) \
            != suffix_fingerprint(without, FAST)


class TestPlanning:
    def test_plans_sorted_by_suffix(self):
        datasets = [_dataset("zz-inc.org"), _dataset("aa-inc.org")]
        plans = plan_datasets(datasets, FAST)
        assert [p.suffix for p in plans] == ["aa-inc.org", "zz-inc.org"]
        assert all(p.fingerprint == suffix_fingerprint(p.dataset, FAST)
                   for p in plans)

    def test_diff_fingerprints(self):
        previous = {"a.org": "f1", "b.org": "f2", "c.org": "f3"}
        current = {"a.org": "f1", "b.org": "CHANGED", "d.org": "f4"}
        summary = diff_fingerprints(previous, current)
        assert summary.unchanged == ["a.org"]
        assert summary.changed == ["b.org"]
        assert summary.removed == ["c.org"]
        assert summary.added == ["d.org"]
        assert summary.relearn_fraction == pytest.approx(2 / 3)

    def test_dedupe_groups_by_fingerprint(self):
        plans = plan_datasets([_dataset()], FAST, label="s0") \
            + plan_datasets([_dataset()], FAST, label="s1") \
            + plan_datasets([_dataset(base=999)], FAST, label="s1")
        groups = dedupe_plans(plans)
        assert [len(g) for g in groups] == [2, 1]
        assert {p.label for p in groups[0]} == {"s0", "s1"}

    def test_plan_timeline_deltas(self):
        class Snap:
            def __init__(self, label, items):
                self.label, self.items = label, items

        shared = _dataset("keep-inc.org").items
        s0 = Snap("s0", shared + _dataset("old-inc.org", base=200).items)
        s1 = Snap("s1", shared + _dataset("old-inc.org", base=300).items)
        plan = plan_timeline([s0, s1], FAST)
        assert len(plan.deltas) == 1
        delta = plan.deltas[0]
        assert delta.unchanged == ["keep-inc.org"]
        assert delta.changed == ["old-inc.org"]
        attrs = plan.attrs()
        assert attrs["suffix_plans"] == 4
        assert attrs["suffix_unique"] == 3
        assert attrs["delta_unchanged"] == 1


class TestResolve:
    def test_miss_then_hit_with_counters(self, store):
        plans = plan_datasets([_dataset()], FAST)
        metrics = MetricsRegistry()
        hits, misses = resolve_plans(store, plans, metrics=metrics)
        assert hits == [] and len(misses) == 1
        store.put(KIND_SUFFIX, plans[0].payload,
                  SuffixArtifact(suffix=plans[0].suffix, convention=None))
        hits, misses = resolve_plans(store, plans, metrics=metrics)
        assert len(hits) == 1 and misses == []
        counters = metrics.snapshot()["counters"]
        assert counters["suffix_cache_hits"] == 1
        assert counters["suffix_cache_misses"] == 1

    def test_mistyped_entry_reads_as_miss(self, store):
        plans = plan_datasets([_dataset()], FAST)
        store.put(KIND_SUFFIX, plans[0].payload, {"not": "an artifact"})
        hits, misses = resolve_plans(store, plans)
        assert hits == [] and len(misses) == 1


class TestHoihoSuffixCache:
    def test_warm_run_dispatches_nothing(self, store, monkeypatch):
        items = _dataset(n=16).items
        cold = Hoiho(FAST, store=store).run(items)
        assert store.stats.writes == 1

        import repro.core.hoiho as hoiho_module
        monkeypatch.setattr(
            hoiho_module, "_learn_artifact_worker",
            lambda *a, **k: pytest.fail("re-learned on warm cache"))
        warm = Hoiho(FAST, store=store).run(items)
        assert warm == cold
        assert store.stats.writes == 1  # nothing new persisted

    def test_matches_uncached_result(self, store):
        items = _dataset(n=16).items
        assert Hoiho(FAST, store=store).run(items) \
            == Hoiho(FAST).run(items)

    def test_negative_result_is_cached(self, store):
        # Two hostnames fail the gates; the rejection must be cached
        # too, or unlearnable suffixes would re-run every phase on
        # every snapshot.
        items = [TrainingItem("as1.x.com", 1), TrainingItem("as2.x.com", 2)]
        result = Hoiho(FAST, store=store).run(items)
        assert result.conventions == {}
        [path] = store.entries(KIND_SUFFIX)
        import pickle
        artifact = pickle.loads(path.read_bytes())
        assert isinstance(artifact, SuffixArtifact)
        assert artifact.convention is None
        assert artifact.rejected_reason

    def test_suffix_cache_flag_bypasses_store(self, store):
        items = _dataset(n=16).items
        Hoiho(FAST, store=store, suffix_cache=False).run(items)
        assert store.stats.writes == 0

    def test_metrics_counters(self, store):
        items = _dataset(n=16).items
        metrics = MetricsRegistry()
        Hoiho(FAST, store=store, metrics=metrics).run(items)
        Hoiho(FAST, store=store, metrics=metrics).run(items)
        counters = metrics.snapshot()["counters"]
        assert counters["suffix_cache_misses"] == 1
        assert counters["suffix_cache_hits"] == 1
