"""Unit tests for the section-3.1 congruence and classification rules."""

import pytest

from repro.core.congruence import (
    Outcome,
    apparent_asn_runs,
    classify_extraction,
    congruent,
)
from repro.util.ipaddr import embedded_ip_spans


class TestCongruent:
    def test_exact(self):
        assert congruent("24115", 24115)

    def test_leading_zeros(self):
        assert congruent("064500", 64500)

    def test_transposition_guarded(self):
        # 22822 vs 22282: distance one, first/last chars match, len >= 3.
        assert congruent("22822", 22282)

    def test_deletion_guarded(self):
        # Figure 3a: 605 vs 6057 - first char 6, last char differs...
        # 605 ends in 5, 6057 ends in 7: guard fails, so NOT congruent.
        assert not congruent("605", 6057)

    def test_first_char_guard(self):
        # 201 vs 701 are distance one but first chars differ.
        assert not congruent("201", 701)

    def test_length_guard(self):
        # Short numbers never use the edit-distance rule.
        assert not congruent("85", 855)
        assert not congruent("12", 21)

    def test_substitution_guarded_accept(self):
        # 202073 vs 205073: middle substitution, first/last same.
        assert congruent("202073", 205073)

    def test_incongruent(self):
        assert not congruent("109", 122)

    def test_distance_two_rejected(self):
        assert not congruent("15576", 15677)

    def test_non_digits(self):
        assert not congruent("", 123)
        assert not congruent("abc", 123)


class TestApparentRuns:
    def test_finds_congruent_run(self):
        runs = apparent_asn_runs("as24115.mel.example.com", 24115, [])
        assert [r.text for r in runs] == ["24115"]

    def test_ip_span_excluded(self):
        hostname = "209-201-58-109.dia.example.net"
        spans = embedded_ip_spans(hostname)
        runs = apparent_asn_runs(hostname, 209, spans)
        assert runs == []

    def test_without_span_ip_octet_matches(self):
        # Demonstrates why the IP rule matters: without spans the 209
        # octet would look like an apparent ASN.
        hostname = "209-201-58-109.dia.example.net"
        runs = apparent_asn_runs(hostname, 209, [])
        assert [r.text for r in runs] == ["209"]

    def test_multiple_runs(self):
        runs = apparent_asn_runs("64500-2.pop64500.example.com", 64500, [])
        assert len(runs) == 2

    def test_no_apparent(self):
        assert apparent_asn_runs("lo0.cr1.fra.example.com", 3356, []) == []


class TestClassification:
    def test_tp(self):
        outcome = classify_extraction("24115", (2, 7),
                                      "as24115.example.com", 24115, [])
        assert outcome is Outcome.TP

    def test_fp_wrong_number(self):
        outcome = classify_extraction("8069", (0, 4),
                                      "8069.tyo.example.com", 8075, [])
        assert outcome is Outcome.FP

    def test_fp_inside_ip(self):
        hostname = "122-216-236-50.example.net"
        spans = embedded_ip_spans(hostname)
        # Even a numerically congruent extraction is an FP inside an IP.
        outcome = classify_extraction("122", (0, 3), hostname, 122, spans)
        assert outcome is Outcome.FP

    def test_fn_when_apparent_exists(self):
        outcome = classify_extraction(None, None,
                                      "as24115.example.com", 24115, [])
        assert outcome is Outcome.FN

    def test_none_when_no_apparent(self):
        outcome = classify_extraction(None, None,
                                      "lo0.cr1.example.com", 24115, [])
        assert outcome is Outcome.NONE

    def test_guarded_typo_is_tp(self):
        # Figure 4 hostname h: extraction 22822, training 22282.
        outcome = classify_extraction("22822", (0, 5),
                                      "22822-2.tyo.equinix.com", 22282, [])
        assert outcome is Outcome.TP
