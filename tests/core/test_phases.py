"""Unit tests for the four learning phases (sections 3.2-3.5)."""

import pytest

from repro.core.evaluate import evaluate_nc, evaluate_regex
from repro.core.phase1 import candidates_for_item, generate_base_regexes
from repro.core.phase2 import merge_regexes
from repro.core.phase3 import specialise_regex
from repro.core.phase4 import build_regex_sets, rank_regexes
from repro.core.regex_model import Alt, Cap, Exclude, Lit, Regex
from repro.core.types import SuffixDataset, TrainingItem


@pytest.fixture
def equinix():
    """The figure-4 dataset."""
    items = [
        TrainingItem("109.sgw.equinix.com", 109),
        TrainingItem("714.os.equinix.com", 714),
        TrainingItem("714.me1.equinix.com", 714),
        TrainingItem("p714.sgw.equinix.com", 714),
        TrainingItem("s714.sgw.equinix.com", 714),
        TrainingItem("p24115.mel.equinix.com", 24115),
        TrainingItem("s24115.tyo.equinix.com", 24115),
        TrainingItem("22822-2.tyo.equinix.com", 22282),
        TrainingItem("24482-fr5-ix.equinix.com", 24482),
        TrainingItem("54827-dc5-ix2.equinix.com", 54827),
        TrainingItem("55247-ch3-ix.equinix.com", 55247),
        TrainingItem("netflix.zh2.corp.eu.equinix.com", 2906),
        TrainingItem("ipv4.dosarrest.eqix.equinix.com", 19324),
        TrainingItem("8069.tyo.equinix.com", 8075),
        TrainingItem("8074.hkg.equinix.com", 8075),
        TrainingItem("45437-sy1-ix.equinix.com", 55923),
    ]
    return SuffixDataset("equinix.com", items)


class TestPhase1:
    def test_candidates_embed_literal_context(self, equinix):
        # Hostname d: p714.sgw.equinix.com must yield a regex with the
        # "p" literal before the capture (paper's regex #2).
        index = [i.hostname for i in equinix.items].index(
            "p714.sgw.equinix.com")
        patterns = {r.pattern for r in candidates_for_item(equinix, index)}
        assert "^p(\\d+)\\.[^\\.]+\\.equinix\\.com$" in patterns

    def test_candidates_include_bare(self, equinix):
        index = [i.hostname for i in equinix.items].index(
            "109.sgw.equinix.com")
        patterns = {r.pattern for r in candidates_for_item(equinix, index)}
        assert "^(\\d+)\\.[^\\.]+\\.equinix\\.com$" in patterns

    def test_candidates_include_any_variant(self, equinix):
        # Paper's regex #4 for the dash-format hostnames.
        index = [i.hostname for i in equinix.items].index(
            "24482-fr5-ix.equinix.com")
        patterns = {r.pattern for r in candidates_for_item(equinix, index)}
        assert "^(\\d+)-.+\\.equinix\\.com$" in patterns

    def test_no_candidates_without_apparent_asn(self, equinix):
        index = [i.hostname for i in equinix.items].index(
            "netflix.zh2.corp.eu.equinix.com")
        assert candidates_for_item(equinix, index) == []

    def test_generation_deduplicates(self, equinix):
        pool = generate_base_regexes(equinix)
        assert len({r.pattern for r in pool}) == len(pool)

    def test_max_candidates_cap(self, equinix):
        pool = generate_base_regexes(equinix, max_candidates=5)
        assert len(pool) == 5

    def test_sample_cap(self, equinix):
        all_pool = generate_base_regexes(equinix)
        sampled = generate_base_regexes(equinix, sample=2)
        assert len(sampled) <= len(all_pool)

    def test_at_most_one_any_per_regex(self, equinix):
        for regex in generate_base_regexes(equinix):
            assert regex.pattern.count(".+") <= 1


class TestPhase2:
    def test_merges_p_s_and_empty(self, equinix):
        pool = [
            Regex([Cap(), Lit("."), Exclude(frozenset("."))],
                  "equinix.com"),
            Regex([Lit("p"), Cap(), Lit("."), Exclude(frozenset("."))],
                  "equinix.com"),
            Regex([Lit("s"), Cap(), Lit("."), Exclude(frozenset("."))],
                  "equinix.com"),
        ]
        merged = merge_regexes(pool)
        patterns = {r.pattern for r in merged}
        assert "^(?:p|s)?(\\d+)\\.[^\\.]+\\.equinix\\.com$" in patterns

    def test_merge_without_empty_not_optional(self):
        pool = [
            Regex([Lit("p"), Cap()], "x.com"),
            Regex([Lit("s"), Cap()], "x.com"),
        ]
        # The bare skeleton participates as an empty option at position
        # 0 for *each* regex itself, so (?:p|s) groups form; optionality
        # requires a third regex with nothing in the slot.
        merged = merge_regexes(pool)
        patterns = {r.pattern for r in merged}
        assert "^(?:p|s)(\\d+)\\.x\\.com$" not in patterns \
            or "^(?:p|s)?(\\d+)\\.x\\.com$" not in patterns

    def test_punctuation_not_merged(self):
        pool = [
            Regex([Cap(), Lit("."), Exclude(frozenset("."))], "x.com"),
            Regex([Cap(), Lit("-"), Exclude(frozenset("-"))], "x.com"),
        ]
        assert merge_regexes(pool) == []

    def test_empty_pool(self):
        assert merge_regexes([]) == []

    def test_merged_regex_matches_both_formats(self):
        pool = [
            Regex([Lit("p"), Cap()], "x.com"),
            Regex([Lit("s"), Cap()], "x.com"),
        ]
        merged = merge_regexes(pool)
        assert merged, "expected a merge"
        combined = merged[0]
        assert combined.extract("p1.x.com") is not None
        assert combined.extract("s1.x.com") is not None


class TestPhase3:
    def test_specialises_to_alnum_class(self, equinix):
        regex = Regex([Alt(("p", "s"), optional=True), Cap(), Lit("."),
                       Exclude(frozenset("."))], "equinix.com")
        specialised = specialise_regex(regex, equinix)
        assert specialised is not None
        # Hostname c (714.me1) contains a digit in the second portion.
        assert specialised.pattern == \
            "^(?:p|s)?(\\d+)\\.[a-z\\d]+\\.equinix\\.com$"

    def test_pure_alpha_class(self):
        items = [TrainingItem("as%d.lon.x.com" % a, a)
                 for a in (111, 222, 333)]
        dataset = SuffixDataset("x.com", items)
        regex = Regex([Lit("as"), Cap(), Lit("."),
                       Exclude(frozenset("."))], "x.com")
        specialised = specialise_regex(regex, dataset)
        assert specialised.pattern == "^as(\\d+)\\.[a-z]+\\.x\\.com$"

    def test_digit_class(self):
        items = [TrainingItem("as%d.%d.x.com" % (a, i), a)
                 for i, a in enumerate((111, 222, 333))]
        dataset = SuffixDataset("x.com", items)
        regex = Regex([Lit("as"), Cap(), Lit("."),
                       Exclude(frozenset("."))], "x.com")
        specialised = specialise_regex(regex, dataset)
        assert specialised.pattern == "^as(\\d+)\\.\\d+\\.x\\.com$"

    def test_none_when_no_exclude(self, equinix):
        regex = Regex([Lit("as"), Cap()], "equinix.com")
        assert specialise_regex(regex, equinix) is None

    def test_none_when_never_matches(self, equinix):
        regex = Regex([Lit("zzz"), Cap(), Lit("."),
                       Exclude(frozenset("."))], "equinix.com")
        assert specialise_regex(regex, equinix) is None


class TestPhase4:
    def test_set_improves_atp(self, equinix):
        first = Regex.raw(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$")
        second = Regex.raw(r"^(\d+)-.+\.equinix\.com$")
        solo = evaluate_nc((first,), equinix)
        pair = evaluate_nc((first, second), equinix)
        assert pair.atp > solo.atp
        assert pair.atp == 8        # the paper's NC #7 score

    def test_build_regex_sets_contains_singletons(self, equinix):
        scored = {}
        for regex in (Regex.raw(r"^(\d+)\.[a-z\d]+\.equinix\.com$"),
                      Regex.raw(r"^(\d+)-.+\.equinix\.com$")):
            scored[regex] = evaluate_regex(regex, equinix)
        conventions = build_regex_sets(scored, equinix)
        sizes = {len(regexes) for regexes, _ in conventions}
        assert 1 in sizes
        assert 2 in sizes

    def test_first_match_wins_order(self, equinix):
        # A set is evaluated with the first matching regex supplying the
        # extraction: a greedy catch-all first changes the result.
        catch_all = Regex.raw(r"^.*?(\d+).*\.equinix\.com$")
        tight = Regex.raw(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$")
        loose_first = evaluate_nc((catch_all, tight), equinix)
        tight_first = evaluate_nc((tight, catch_all), equinix)
        assert tight_first.tp >= loose_first.tp

    def test_rank_prefers_specific_on_tie(self, equinix):
        specific = Regex.raw(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$")
        # Force identical scores via the same raw pattern evaluated;
        # build a structured pair differing only in looseness.
        from repro.core.regex_model import (
            Alt, Any_, Cap, ClassSeq, Lit, CLASS_ALPHA, CLASS_DIGIT)
        loose = Regex([Alt(("p", "s"), optional=True), Cap(), Lit("."),
                       Any_()], "equinix.com")
        tight = Regex([Alt(("p", "s"), optional=True), Cap(), Lit("."),
                       ClassSeq(frozenset([CLASS_ALPHA, CLASS_DIGIT]))],
                      "equinix.com")
        scored = {loose: evaluate_regex(loose, equinix),
                  tight: evaluate_regex(tight, equinix)}
        assert scored[loose].atp == scored[tight].atp
        ranked = rank_regexes(scored)
        assert ranked[0] is tight
