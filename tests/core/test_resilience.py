"""Tests for the fault-tolerant parallel core.

Covers the policy vocabulary (:class:`RetryPolicy`, classification,
:class:`FaultInjector`) and the resilient dispatcher in
:mod:`repro.core.parallel`: transient retry, poison fail-fast,
worker-crash recovery, per-item timeout, degrade-to-serial, and prompt
shutdown when a streaming consumer stops early.
"""

import time

import pytest

from repro.core.parallel import ParallelConfig, parallel_map, stream_map
from repro.core.resilience import (
    CRASH_EXIT_STATUS,
    ENV_FAULT_INJECT,
    ENV_HANG_SECONDS,
    FaultInjector,
    FaultRule,
    InjectedFault,
    PoisonItemError,
    ResilienceStats,
    RetryPolicy,
    TransientError,
    call_with_retry,
    ResilientCall,
)

TWO_WORKERS = ParallelConfig(workers=2, backend="process")


def double(x):
    return 2 * x


def slow_double(x):
    time.sleep(0.2)
    return 2 * x


class FlakyOnce:
    """Callable failing transiently on chosen values, once each."""

    def __init__(self, failing):
        self.failing = set(failing)

    def __call__(self, x):
        if x in self.failing:
            self.failing.discard(x)
            raise TransientError("flaky on %r" % x)
        return 2 * x


def raise_value_error(x):
    raise ValueError("poison %r" % x)


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout is None

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base": -1.0},
        {"backoff_factor": 0.5},
        {"backoff_max": -0.1},
        {"timeout": 0},
        {"timeout": -3.0},
        {"pool_rebuilds": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_deterministic_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.5)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)   # capped
        assert policy.backoff(9) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            policy.backoff(0)

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransientError("x"))
        assert policy.is_transient(InjectedFault("x"))
        assert policy.is_transient(OSError("pipe"))
        assert policy.is_transient(TimeoutError("late"))
        assert not policy.is_transient(ValueError("bad data"))
        assert not policy.is_transient(KeyError("missing"))

    def test_custom_transient_types(self):
        policy = RetryPolicy(transient=(KeyError,))
        assert policy.is_transient(KeyError("k"))
        assert not policy.is_transient(OSError("no longer transient"))

    def test_from_flags(self):
        assert RetryPolicy.from_flags(0) is None
        policy = RetryPolicy.from_flags(2, backoff=0.01)
        assert policy.max_attempts == 3
        assert policy.backoff_base == pytest.approx(0.01)
        with pytest.raises(ValueError):
            RetryPolicy.from_flags(-1)


class TestFaultInjector:
    def test_parse_rules(self):
        injector = FaultInjector.parse(
            "learn:2:crash:0, timeline:*:raise ,bulk-annotate:1:hang:3")
        assert injector.rules == (
            FaultRule("learn", 2, "crash", 0),
            FaultRule("timeline", -1, "raise", -1),
            FaultRule("bulk-annotate", 1, "hang", 3),
        )
        assert bool(injector)
        assert not FaultInjector.parse("")

    @pytest.mark.parametrize("spec", ["nope", "a:b", "s:1:explode",
                                      "s:1:raise:2:9"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultInjector.parse(spec)

    def test_fire_matches_site_index_attempt(self):
        injector = FaultInjector.parse("learn:2:raise:1")
        injector.fire("learn", 2, 0)        # wrong attempt: no-op
        injector.fire("learn", 3, 1)        # wrong index: no-op
        injector.fire("other", 2, 1)        # wrong site: no-op
        with pytest.raises(InjectedFault):
            injector.fire("learn", 2, 1)

    def test_wildcards(self):
        injector = FaultInjector.parse("learn:*:raise")
        for index in (0, 7):
            for attempt in (0, 2):
                with pytest.raises(InjectedFault):
                    injector.fire("learn", index, attempt)

    def test_crash_exit_status_reserved(self):
        # The crash path calls os._exit; just pin the contract values.
        assert CRASH_EXIT_STATUS == 86
        assert ENV_FAULT_INJECT == "REPRO_FAULT_INJECT"


class TestCallWithRetry:
    def test_retries_then_succeeds(self):
        sleeps = []
        stats = ResilienceStats()
        call = ResilientCall(FlakyOnce([5]), "t")
        result = call_with_retry(call, 0, 5, RetryPolicy(backoff_base=0.5),
                                 stats=stats, sleep=sleeps.append)
        assert result == 10
        assert stats.retries == 1
        assert sleeps == [pytest.approx(0.5)]

    def test_poison_raises_immediately(self):
        call = ResilientCall(raise_value_error, "t")
        with pytest.raises(PoisonItemError) as info:
            call_with_retry(call, 3, "x", RetryPolicy(), sleep=lambda s: None)
        assert info.value.index == 3
        assert info.value.attempts == 1        # no retry burned
        assert isinstance(info.value.cause, ValueError)

    def test_transient_exhaustion_poisons(self):
        call = ResilientCall(FlakyOnce([1, 1]), "t")

        def always_flaky(x):
            raise TransientError("never recovers")
        call = ResilientCall(always_flaky, "t")
        with pytest.raises(PoisonItemError) as info:
            call_with_retry(call, 0, 1, RetryPolicy(max_attempts=2),
                            sleep=lambda s: None)
        assert info.value.attempts == 2

    def test_seeded_attempts_shrink_budget(self):
        def always_flaky(x):
            raise TransientError("never recovers")
        call = ResilientCall(always_flaky, "t")
        with pytest.raises(PoisonItemError) as info:
            call_with_retry(call, 0, 1, RetryPolicy(max_attempts=3),
                            sleep=lambda s: None, attempts=2)
        assert info.value.attempts == 3        # only one more try ran


class TestResilientDispatch:
    """The retry-armed parallel_map/stream_map paths (serial backend)."""

    def test_serial_transparent(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert parallel_map(double, [1, 2, 3], ParallelConfig.serial(),
                            retry=policy) == [2, 4, 6]

    def test_serial_retries_transient(self):
        stats = ResilienceStats()
        policy = RetryPolicy(backoff_base=0.0)
        out = list(stream_map(FlakyOnce([2, 4]), [1, 2, 3, 4],
                              ParallelConfig.serial(), retry=policy,
                              stats=stats))
        assert out == [2, 4, 6, 8]
        assert stats.retries == 2

    def test_serial_poison_raises(self):
        policy = RetryPolicy(backoff_base=0.0)
        with pytest.raises(PoisonItemError):
            list(stream_map(raise_value_error, ["a"],
                            ParallelConfig.serial(), retry=policy))

    def test_serial_poison_substituted(self):
        policy = RetryPolicy(backoff_base=0.0)
        subs = []

        def on_poison(item, error):
            subs.append((item, error.index))
            return "filled"
        out = list(stream_map(raise_value_error, ["a", "b"],
                              ParallelConfig.serial(), retry=policy,
                              on_poison=on_poison))
        assert out == ["filled", "filled"]
        assert subs == [("a", 0), ("b", 1)]


@pytest.mark.slow
class TestResilientPool:
    """Pool-backed fault paths: crash, hang, degrade, abandonment.

    Marked slow: each test pays process-pool startup, and the injected
    faults add deliberate latency.  CI runs them in the fault-injection
    job; ``pytest -m slow tests/core/test_resilience.py`` runs them
    locally.
    """

    def test_parallel_retry_output_matches_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "map:1:raise:0")
        policy = RetryPolicy(backoff_base=0.0)
        out = parallel_map(double, list(range(8)), TWO_WORKERS,
                           retry=policy, site="map")
        assert out == [2 * i for i in range(8)]

    def test_worker_crash_recovered(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "stream:2:crash:0")
        stats = ResilienceStats()
        policy = RetryPolicy(backoff_base=0.0)
        out = list(stream_map(double, list(range(6)), TWO_WORKERS,
                              retry=policy, site="stream", stats=stats))
        assert out == [0, 2, 4, 6, 8, 10]
        assert stats.pool_losses >= 1
        assert not stats.degraded

    def test_hang_times_out_and_retries(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "stream:1:hang:0")
        monkeypatch.setenv(ENV_HANG_SECONDS, "30")
        stats = ResilienceStats()
        policy = RetryPolicy(backoff_base=0.0, timeout=1.0)
        start = time.monotonic()
        out = list(stream_map(double, list(range(4)), TWO_WORKERS,
                              retry=policy, site="stream", stats=stats))
        elapsed = time.monotonic() - start
        assert out == [0, 2, 4, 6]
        assert stats.timeouts == 1
        assert elapsed < 25, "timed-out item blocked the stream"

    def test_repeated_pool_loss_degrades_to_serial(self, monkeypatch):
        # Every attempt of item 1 crashes until the pool budget is
        # spent; the dispatcher then degrades and finishes inline --
        # where the injection rule no longer fires for the later
        # attempt numbers the pool already charged.
        monkeypatch.setenv(ENV_FAULT_INJECT,
                           "stream:1:crash:0,stream:1:crash:1")
        stats = ResilienceStats()
        policy = RetryPolicy(max_attempts=4, backoff_base=0.0,
                             pool_rebuilds=1)
        out = list(stream_map(double, list(range(5)), TWO_WORKERS,
                              retry=policy, site="stream", stats=stats))
        assert out == [0, 2, 4, 6, 8]
        assert stats.degraded
        assert stats.pool_losses == 2

    def test_abandoned_stream_shuts_down_promptly(self):
        # Satellite regression: an early-stopping consumer must not
        # hang in the generator's cleanup waiting for queued work.
        start = time.monotonic()
        stream = stream_map(slow_double, list(range(50)), TWO_WORKERS,
                            window=4)
        assert next(stream) == 0
        stream.close()
        assert time.monotonic() - start < 8, \
            "abandoning the stream waited for queued items"

    def test_abandoned_resilient_stream_shuts_down_promptly(self):
        start = time.monotonic()
        stream = stream_map(slow_double, list(range(50)), TWO_WORKERS,
                            window=4, retry=RetryPolicy(backoff_base=0.0))
        assert next(stream) == 0
        stream.close()
        assert time.monotonic() - start < 8, \
            "abandoning the resilient stream waited for queued items"
