"""Unit tests for the AS-name learner (section-7 future work)."""

import pytest

from repro.core.asname import (
    NameHoiho,
    NameLearnerConfig,
    evaluate_name_regex,
    learn_name_suffix,
)
from repro.core.regex_model import Regex
from repro.core.types import SuffixDataset, TrainingItem


def _telia_style():
    """seabone/telia-style: neighbor AS name embedded, no number."""
    names = {"seabone": 6762, "verizon": 701, "cogent": 174,
             "lumen": 3356, "arelion": 1299}
    items = []
    for i, (name, asn) in enumerate(sorted(names.items())):
        for j in range(3):
            items.append(TrainingItem(
                "%s-ic-3%d%d.fra%d.example.net" % (name, i, j, j + 1),
                asn))
    # Infrastructure noise without names.
    items += [TrainingItem("lo0.cr%d.fra.example.net" % i, 6762)
              for i in range(3)]
    return SuffixDataset("example.net", items)


class TestLearnNameSuffix:
    def test_learns_telia_style(self):
        convention = learn_name_suffix(_telia_style())
        assert convention is not None
        assert convention.score.purity == 1.0
        assert convention.mapping["seabone"] == 6762
        assert convention.mapping["cogent"] == 174
        assert len(set(convention.mapping.values())) == 5

    def test_extracts_via_mapping(self):
        convention = learn_name_suffix(_telia_style())
        assert convention.extract(
            "seabone-ic-999.mia9.example.net") == 6762
        assert convention.extract_name(
            "newcomer-ic-1.fra1.example.net") == "newcomer"
        assert convention.extract(
            "newcomer-ic-1.fra1.example.net") is None   # unseen token

    def test_rejects_geo_only_suffix(self):
        # Location tokens repeat across many ASNs: purity collapses.
        items = [TrainingItem("xe0-%d.fra.example.net" % i, 1000 + i)
                 for i in range(6)]
        items += [TrainingItem("xe1-%d.lon.example.net" % i, 2000 + i)
                  for i in range(6)]
        assert learn_name_suffix(SuffixDataset("example.net", items)) \
            is None

    def test_rejects_single_asn_suffix(self):
        items = [TrainingItem("customer%d.pop.example.net" % i, 42)
                 for i in range(8)]
        assert learn_name_suffix(SuffixDataset("example.net", items)) \
            is None

    def test_min_tokens_gate(self):
        # Only two distinct name tokens: below the default gate.
        items = []
        for name, asn in (("alpha", 1), ("beta", 2)):
            for j in range(4):
                items.append(TrainingItem(
                    "%s.pop%d.example.net" % (name, j), asn))
        assert learn_name_suffix(SuffixDataset("example.net", items)) \
            is None

    def test_purity_gate(self):
        # Tokens that flip between ASNs half the time.
        items = []
        for j in range(10):
            items.append(TrainingItem("mix.pop%d.example.net" % j,
                                      1 if j % 2 else 2))
            items.append(TrainingItem("other.pop%d.example.net" % j,
                                      3 if j % 2 else 4))
        items.append(TrainingItem("third.pop0.example.net", 5))
        items.append(TrainingItem("third.pop1.example.net", 5))
        assert learn_name_suffix(SuffixDataset("example.net", items)) \
            is None


class TestEvaluateNameRegex:
    def test_counts(self):
        dataset = _telia_style()
        regex = Regex.raw(r"^([a-z]+)-ic-\d+\.[a-z\d]+\.example\.net$")
        score = evaluate_name_regex(regex, dataset)
        assert score.tp == 15
        assert score.fp == 0
        assert score.distinct_asns == 5

    def test_stopwords_ignored(self):
        items = [TrainingItem("cust.pop%d.example.net" % j, j) for j in
                 range(4)]
        regex = Regex.raw(r"^([a-z]+)\.pop\d\.example\.net$")
        score = evaluate_name_regex(regex, SuffixDataset("example.net",
                                                         items))
        assert score.tp == 0 and score.fp == 0

    def test_min_occurrences_filter(self):
        items = [TrainingItem("solo.pop.example.net", 7),
                 TrainingItem("duos.pop.example.net", 8),
                 TrainingItem("duos.pop2.example.net", 8)]
        regex = Regex.raw(r"^([a-z]+)\..*example\.net$")
        strict = evaluate_name_regex(
            regex, SuffixDataset("example.net", items), min_occurrences=2)
        assert "solo" not in strict.tokens
        assert strict.tokens.get("duos") == 8
        # The default allows singleton tokens (operators often have a
        # single interface per neighbor).
        loose = evaluate_name_regex(
            regex, SuffixDataset("example.net", items))
        assert loose.tokens.get("solo") == 7


class TestNameHoiho:
    def test_groups_by_suffix(self):
        items = []
        for name, asn in (("seabone", 6762), ("cogent", 174),
                          ("lumen", 3356)):
            for j in range(3):
                items.append(TrainingItem(
                    "%s.pop%d.alpha.net" % (name, j), asn))
        conventions = NameHoiho().run(items)
        assert set(conventions) == {"alpha.net"}

    def test_on_synthetic_world_names(self):
        """The NAME-convention operators of a synthetic world yield
        learnable name conventions."""
        from repro import METHOD_BDRMAPIT, SnapshotSpec, WorldConfig, \
            generate_world, run_snapshot
        world = generate_world(77, WorldConfig.tiny())
        result = run_snapshot(world, SnapshotSpec(
            label="t", year=2020.0, method=METHOD_BDRMAPIT, n_vps=8,
            seed=5))
        conventions = NameHoiho().run(result.training)
        # At least some suffix should yield a name convention; and any
        # learned mapping should be mostly correct vs ground truth.
        for suffix, convention in conventions.items():
            assert convention.score.purity >= 0.8
