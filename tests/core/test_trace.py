"""Tests for the traced learning variant."""

import pytest

from repro.core.hoiho import HoihoConfig, learn_suffix, learn_suffix_traced
from repro.core.types import SuffixDataset, TrainingItem
from repro.paperdata import FIGURE4_ITEMS


@pytest.fixture(scope="module")
def figure4():
    return SuffixDataset("equinix.com", FIGURE4_ITEMS)


class TestLearnTrace:
    def test_trace_matches_untraced_result(self, figure4):
        convention, trace = learn_suffix_traced(figure4)
        plain = learn_suffix(figure4)
        assert convention is not None and plain is not None
        assert convention.patterns() == plain.patterns()
        assert convention.score.atp == plain.score.atp

    def test_phases_recorded(self, figure4):
        _, trace = learn_suffix_traced(figure4)
        assert trace is not None
        assert trace.phase1_generated > 0
        assert trace.phase1_scored
        assert trace.phase2_added        # the (?:p|s)? merge
        assert trace.phase3_added        # the [a-z\d]+ embedding
        assert trace.conventions
        assert trace.rejected_reason is None

    def test_best_phase1_ranked(self, figure4):
        _, trace = learn_suffix_traced(figure4)
        best = trace.best_phase1(3)
        atps = [score.atp for _, score in best]
        assert atps == sorted(atps, reverse=True)
        # The paper's regex #4 tops the base ranking at ATP -4.
        assert best[0][1].atp == -4

    def test_rejection_reason_recorded(self):
        dataset = SuffixDataset("x.com", [TrainingItem("a.x.com", 1)])
        convention, trace = learn_suffix_traced(dataset)
        assert convention is None
        assert trace is not None
        assert trace.rejected_reason == "too few hostnames"

    def test_no_trace_mode(self, figure4):
        convention, trace = learn_suffix_traced(figure4, trace=False)
        assert convention is not None
        assert trace is None

    def test_gate_rejection_reason(self):
        # Enough hostnames but only one distinct ASN.
        items = [TrainingItem("as9.p%d.x.com" % i, 9) for i in range(6)]
        _, trace = learn_suffix_traced(SuffixDataset("x.com", items))
        assert trace.rejected_reason == "single training ASN"
