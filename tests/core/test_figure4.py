"""End-to-end reproduction of the paper's figure 4 worked example.

The learner, run on the sixteen Equinix hostnames, must reproduce the
paper's staged results: the phase-1 base regexes and their scores, the
phase-2 merge, the phase-3 character-class embedding, and the final
NC #7 with ATP 8.
"""

import pytest

from repro.core.evaluate import evaluate_nc, evaluate_regex
from repro.core.hoiho import learn_suffix
from repro.core.regex_model import Regex
from repro.core.select import NCClass
from repro.eval.appendix_a import FIGURE4_ITEMS, figure4_dataset


@pytest.fixture(scope="module")
def dataset():
    return figure4_dataset()


class TestPaperScores:
    """The per-regex scores printed in figure 4."""

    def test_regex1(self, dataset):
        # ^(\d+)\.[^\.]+\.equinix\.com$: TP a,b,c; FP n,o; 7 FNs -> -7...
        # the paper counts ATP -7 with FN d,e,f,g,h,i,j,k (8 FNs? the
        # figure lists 8 letters) -- TP 3, FP 2, FN 8 -> ATP -7.
        score = evaluate_regex(
            Regex.raw(r"^(\d+)\.[^\.]+\.equinix\.com$"), dataset)
        assert score.tp == 3
        assert score.fp == 2
        assert score.atp == -7

    def test_regex2(self, dataset):
        score = evaluate_regex(
            Regex.raw(r"^p(\d+)\.[^\.]+\.equinix\.com$"), dataset)
        assert score.tp == 2
        assert score.fp == 0
        assert score.atp == -7

    def test_regex3(self, dataset):
        score = evaluate_regex(
            Regex.raw(r"^s(\d+)\.[^\.]+\.equinix\.com$"), dataset)
        assert score.tp == 2
        assert score.atp == -7

    def test_regex4(self, dataset):
        # ^(\d+)-.+\.equinix\.com$: TP h,i,j,k; FP p -> ATP -4.
        score = evaluate_regex(
            Regex.raw(r"^(\d+)-.+\.equinix\.com$"), dataset)
        assert score.tp == 4
        assert score.fp == 1
        assert score.atp == -4

    def test_regex5_merged(self, dataset):
        score = evaluate_regex(
            Regex.raw(r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$"), dataset)
        assert score.tp == 7
        assert score.fp == 2
        assert score.fn == 4
        assert score.atp == 1

    def test_regex6_char_classes(self, dataset):
        score = evaluate_regex(
            Regex.raw(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"), dataset)
        assert score.tp == 7
        assert score.fp == 2
        assert score.atp == 1

    def test_nc7_set(self, dataset):
        score = evaluate_nc(
            (Regex.raw(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
             Regex.raw(r"^(\d+)-.+\.equinix\.com$")), dataset)
        assert score.tp == 11
        assert score.fp == 3
        assert score.fn == 0
        assert score.atp == 8
        assert score.matches == 14


class TestLearnedConvention:
    def test_learner_reproduces_nc7(self, dataset):
        convention = learn_suffix(dataset)
        assert convention is not None
        assert convention.patterns() == [
            r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$",
            r"^(\d+)-.+\.equinix\.com$",
        ]
        assert convention.score.atp == 8

    def test_microsoft_siblings_are_fps(self, dataset):
        # Hostnames n and o (8069/8074 vs training 8075) must be FPs
        # before sibling adjustment.
        convention = learn_suffix(dataset)
        assert convention.score.fp == 3

    def test_distinct_asns(self, dataset):
        convention = learn_suffix(dataset)
        # TPs extract 109, 714, 24115, 22822, 24482, 54827, 55247.
        assert convention.score.distinct == 7

    def test_extract_api(self, dataset):
        convention = learn_suffix(dataset)
        assert convention.extract("p24115.mel.equinix.com") == 24115
        assert convention.extract("24482-fr5-ix.equinix.com") == 24482
        assert convention.extract("netflix.zh2.corp.eu.equinix.com") is None
