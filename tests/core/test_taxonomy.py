"""Unit tests for the Table-1 taxonomy classifier."""

import pytest

from repro.core.regex_model import (
    Alt,
    Any_,
    Cap,
    CLASS_ALPHA,
    CLASS_DIGIT,
    ClassSeq,
    Exclude,
    Lit,
    Regex,
)
from repro.core.taxonomy import Taxonomy, taxonomy_of


def _alnum():
    return ClassSeq(frozenset([CLASS_ALPHA, CLASS_DIGIT]))


class TestTaxonomy:
    def test_simple(self):
        # ^as(\d+)\.example\.com$
        regex = Regex([Lit("as"), Cap()], "example.com")
        assert taxonomy_of([regex]) is Taxonomy.SIMPLE

    def test_start(self):
        # as(\d+)-[a-z]+... with decoration after.
        regex = Regex([Lit("as"), Cap(), Lit("-"), _alnum()], "example.com")
        assert taxonomy_of([regex]) is Taxonomy.START

    def test_end(self):
        regex = Regex([_alnum(), Lit("."), Lit("cust"), Lit("."),
                       Lit("as"), Cap()], "example.com")
        assert taxonomy_of([regex]) is Taxonomy.END

    def test_bare(self):
        regex = Regex([Cap(), Lit("."), _alnum()], "example.com")
        assert taxonomy_of([regex]) is Taxonomy.BARE

    def test_bare_with_digit_decoration(self):
        # The paper's bare example: (\d+)\.[a-z]+\d+\.example\.com
        regex = Regex([Cap(), Lit("."), ClassSeq(frozenset([CLASS_ALPHA])),
                       ClassSeq(frozenset([CLASS_DIGIT]))], "example.com")
        assert taxonomy_of([regex]) is Taxonomy.BARE

    def test_middle_is_complex(self):
        regex = Regex([_alnum(), Lit("-"), Lit("as"), Cap(), Lit("-"),
                       _alnum()], "example.com")
        assert taxonomy_of([regex]) is Taxonomy.COMPLEX

    def test_odd_annotation_is_complex(self):
        regex = Regex([Lit("asn"), Cap()], "example.com")
        assert taxonomy_of([regex]) is Taxonomy.COMPLEX
        regex = Regex([Lit("a"), Cap(), Lit("-"), _alnum()], "example.com")
        assert taxonomy_of([regex]) is Taxonomy.COMPLEX

    def test_multiple_regexes_complex(self):
        regexes = [Regex([Lit("as"), Cap()], "example.com"),
                   Regex([Cap(), Lit("-"), Any_()], "example.com")]
        assert taxonomy_of(regexes) is Taxonomy.COMPLEX

    def test_or_group_preface_is_complex(self):
        regex = Regex([Alt(("p", "s"), optional=True), Cap(), Lit("."),
                       _alnum()], "example.com")
        assert taxonomy_of([regex]) is Taxonomy.COMPLEX

    def test_end_with_suffix_after_capture_in_portion(self):
        # as(\d+)gw at the end portion still counts as END (preface as).
        regex = Regex([_alnum(), Lit("."), Lit("as"), Cap(), Lit("gw")],
                      "example.com")
        assert taxonomy_of([regex]) is Taxonomy.END
