"""Unit tests for the address plan."""

import pytest

from repro.asn.bgp import IXP_ASN
from repro.topology.addressing import InfraAllocator, build_address_plan
from repro.topology.asgraph import ASGraphConfig, generate_asgraph
from repro.util.ipaddr import IPv4Prefix


@pytest.fixture(scope="module")
def graph():
    return generate_asgraph(42, ASGraphConfig(
        n_clique=2, n_transit=5, n_access=8, n_stub=12, n_content=2,
        n_ixps=2))


@pytest.fixture(scope="module")
def plan(graph):
    return build_address_plan(graph)


class TestAllocation:
    def test_every_as_has_prefixes(self, graph, plan):
        for asn in graph.asns():
            assert plan.prefixes(asn)

    def test_prefixes_disjoint(self, graph, plan):
        all_prefixes = [p for asn in graph.asns()
                        for p in plan.prefixes(asn)]
        all_prefixes += list(plan.ixp_lans.values())
        for i, a in enumerate(all_prefixes):
            for b in all_prefixes[i + 1:]:
                assert not a.contains_prefix(b)
                assert not b.contains_prefix(a)

    def test_route_table_matches_allocation(self, graph, plan):
        for asn in graph.asns():
            for prefix in plan.prefixes(asn):
                assert plan.route_table.origin(prefix.network) == asn

    def test_ixp_lans_marked(self, graph, plan):
        for ixp in graph.ixps:
            lan = plan.ixp_lans[ixp.ixp_id]
            assert plan.route_table.origin(lan.host(1)) == IXP_ASN

    def test_edge_prefixes_avoid_infra(self, graph, plan):
        for asn in graph.asns():
            infra_block = plan.infra[asn].block
            for edge in plan.edge_prefixes(asn):
                assert not edge.contains_prefix(infra_block)
                assert not infra_block.contains_prefix(edge)

    def test_deterministic(self, graph):
        a = build_address_plan(graph)
        b = build_address_plan(graph)
        assert list(a.route_table.to_lines()) == \
            list(b.route_table.to_lines())


class TestInfraAllocator:
    def test_loopbacks_unique(self):
        alloc = InfraAllocator(IPv4Prefix.parse("10.0.0.0/24"))
        addresses = [alloc.loopback() for _ in range(10)]
        assert len(set(addresses)) == 10

    def test_p2p_subnets_disjoint(self):
        alloc = InfraAllocator(IPv4Prefix.parse("10.0.0.0/24"))
        subnets = [alloc.p2p_subnet() for _ in range(20)]
        networks = {s.network for s in subnets}
        assert len(networks) == 20
        assert all(s.length == 31 for s in subnets)

    def test_mixing_sizes_stays_aligned(self):
        alloc = InfraAllocator(IPv4Prefix.parse("10.0.0.0/24"))
        alloc.loopback()
        subnet = alloc.p2p_subnet()
        assert subnet.network % 2 == 0   # /31 aligned

    def test_exhaustion(self):
        alloc = InfraAllocator(IPv4Prefix.parse("10.0.0.0/30"))
        alloc.p2p_subnet()
        alloc.p2p_subnet()
        with pytest.raises(RuntimeError):
            alloc.p2p_subnet()

    def test_inside_block(self):
        block = IPv4Prefix.parse("10.0.0.0/26")
        alloc = InfraAllocator(block)
        for _ in range(8):
            assert block.contains_prefix(alloc.p2p_subnet())
