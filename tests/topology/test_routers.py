"""Unit tests for router-level topology construction."""

import pytest

from repro.topology.addressing import build_address_plan
from repro.topology.asgraph import ASGraphConfig, Tier, generate_asgraph
from repro.topology.routers import InterfaceKind, LinkKind, build_router_topology


@pytest.fixture(scope="module")
def world_parts():
    graph = generate_asgraph(42, ASGraphConfig(
        n_clique=2, n_transit=5, n_access=8, n_stub=12, n_content=2,
        n_ixps=2))
    plan = build_address_plan(graph)
    topo = build_router_topology(graph, plan, 42)
    return graph, plan, topo


class TestRouters:
    def test_every_as_has_routers(self, world_parts):
        graph, _, topo = world_parts
        for asn in graph.asns():
            assert topo.routers_by_asn.get(asn), asn

    def test_interfaces_unique_addresses(self, world_parts):
        _, _, topo = world_parts
        addresses = [i.address for i in topo.router_interfaces()]
        assert len(addresses) == len(set(addresses))

    def test_supplier_addressing_on_p2c(self, world_parts):
        """The provider supplies both ends of a customer link."""
        graph, plan, topo = world_parts
        rels = graph.relationships
        checked = 0
        for (a, b), links in topo.interdomain_links.items():
            for link in links:
                if link.kind is not LinkKind.INTERDOMAIN:
                    continue
                supplier = link.supplier_asn
                other = b if supplier == a else a
                if rels.relationship(supplier, other) is None:
                    continue
                # Both interface addresses originate from the supplier.
                for iface in (link.a, link.b):
                    assert plan.route_table.origin(iface.address) \
                        == supplier
                checked += 1
        assert checked > 0

    def test_far_side_router_owned_by_neighbor(self, world_parts):
        """One end of an interdomain link belongs to each AS."""
        _, _, topo = world_parts
        for links in topo.interdomain_links.values():
            for link in links:
                if link.kind is LinkKind.INTERDOMAIN:
                    assert link.a.router.asn != link.b.router.asn

    def test_provider_supplies_customer_links(self, world_parts):
        graph, _, topo = world_parts
        rels = graph.relationships
        for (a, b), links in topo.interdomain_links.items():
            for link in links:
                if link.kind is not LinkKind.INTERDOMAIN:
                    continue
                supplier = link.supplier_asn
                other = b if supplier == a else a
                rel = rels.relationship(supplier, other)
                if rel is not None and rel.name == "CUSTOMER":
                    pass   # provider supplied: expected
                # A customer never supplies its provider's link.
                assert not (rel is not None and rel.name == "PROVIDER")

    def test_ixp_ports_on_member_routers(self, world_parts):
        graph, plan, topo = world_parts
        for (ixp_id, member), iface in topo.ixp_ports.items():
            assert iface.router.asn == member
            assert iface.kind is InterfaceKind.IXP_LAN
            lan = plan.ixp_lans[ixp_id]
            assert lan.contains(iface.address)

    def test_internal_links_within_as(self, world_parts):
        _, _, topo = world_parts
        for link in topo.links:
            if link.kind is LinkKind.INTERNAL:
                assert link.a.router.asn == link.b.router.asn
                assert link.supplier_asn == link.a.router.asn

    def test_p2p_slash31(self, world_parts):
        _, _, topo = world_parts
        for link in topo.links:
            if link.kind in (LinkKind.INTERNAL, LinkKind.INTERDOMAIN):
                assert link.a.prefix.length == 31
                assert link.a.prefix == link.b.prefix

    def test_adjacency_is_symmetric(self, world_parts):
        _, _, topo = world_parts
        for router in topo.routers:
            for link, far_iface in topo.neighbors(router):
                far = far_iface.router
                back = [l for l, i in topo.neighbors(far)
                        if i.router.rid == router.rid]
                assert back

    def test_edge_prefix_hosting(self, world_parts):
        graph, plan, topo = world_parts
        for prefix, router in topo.edge_router_of_prefix.items():
            assert plan.route_table.origin(prefix.network) == router.asn

    def test_border_reuse_capped(self, world_parts):
        _, _, topo = world_parts
        for router in topo.routers:
            if router.role != "border":
                continue
            attachments = sum(
                1 for i in router.interfaces
                if i.kind in (InterfaceKind.P2P, InterfaceKind.IXP_LAN))
            assert attachments <= 4

    def test_router_names(self, world_parts):
        _, _, topo = world_parts
        names = {r.role: r.name for r in topo.routers}
        assert names.get("core", "cr1").startswith("cr")
