"""Unit tests for the World container and geography substrate."""

import pytest

from repro.topology import WorldConfig, generate_world
from repro.topology import geo
from repro.topology.asgraph import _LOC_CODES


@pytest.fixture(scope="module")
def world():
    return generate_world(42, WorldConfig.tiny())


class TestWorld:
    def test_stats_keys(self, world):
        stats = world.stats()
        for key in ("ases", "ixps", "routers", "interfaces", "links",
                    "interdomain_links", "prefixes"):
            assert stats[key] > 0

    def test_true_owner(self, world):
        iface = world.interfaces()[0]
        assert world.true_owner(iface.address) == iface.router.asn

    def test_true_owner_unknown_address(self, world):
        from repro.util.ipaddr import ip_to_int
        assert world.true_owner(ip_to_int("203.0.113.1")) is None

    def test_origin_matches_plan(self, world):
        asn = world.graph.asns()[0]
        prefix = world.plan.prefixes(asn)[0]
        assert world.origin(prefix.network) == asn

    def test_determinism(self):
        a = generate_world(9, WorldConfig.tiny())
        b = generate_world(9, WorldConfig.tiny())
        assert a.stats() == b.stats()
        assert [r.rid for r in a.routers()] == [r.rid for r in b.routers()]

    def test_router_locs_have_coordinates(self, world):
        """Every location code used by routers is geolocatable."""
        for router in world.routers():
            assert router.loc in geo.COORDS


class TestGeoTable:
    def test_all_loc_codes_covered(self):
        for code in _LOC_CODES:
            assert code in geo.COORDS, code

    def test_coordinates_in_range(self):
        for code, (lat, lon) in geo.COORDS.items():
            assert -90 <= lat <= 90, code
            assert -180 <= lon <= 180, code

    def test_triangle_inequality_sample(self):
        a, b, c = "fra", "nyc", "syd"
        assert geo.distance_km(a, c) <= \
            geo.distance_km(a, b) + geo.distance_km(b, c) + 1e-6

    def test_min_rtt_below_propagation_rtt(self):
        # The feasibility floor must be optimistic (no path stretch).
        assert geo.min_rtt_ms("fra", "nyc") <= \
            2.0 * geo.propagation_ms("fra", "nyc")
