"""Unit tests for synthetic AS-graph generation."""

import pytest

from repro.topology.asgraph import (
    ASGraphConfig,
    Tier,
    generate_asgraph,
)


@pytest.fixture(scope="module")
def graph():
    return generate_asgraph(42, ASGraphConfig(
        n_clique=3, n_transit=8, n_access=15, n_stub=25, n_content=4,
        n_ixps=3))


class TestStructure:
    def test_counts(self, graph):
        assert len(graph.by_tier(Tier.CLIQUE)) == 3
        assert len(graph.by_tier(Tier.TRANSIT)) == 8
        assert len(graph.by_tier(Tier.ACCESS)) == 15
        assert len(graph.by_tier(Tier.STUB)) == 25
        assert len(graph.by_tier(Tier.CONTENT)) == 4
        assert len(graph.ixps) == 3

    def test_clique_fully_meshed(self, graph):
        clique = [n.asn for n in graph.by_tier(Tier.CLIQUE)]
        for i, a in enumerate(clique):
            for b in clique[i + 1:]:
                assert b in graph.relationships.peers(a)

    def test_clique_transit_free(self, graph):
        for node in graph.by_tier(Tier.CLIQUE):
            assert graph.relationships.providers(node.asn) == set()

    def test_every_non_clique_has_provider(self, graph):
        for node in graph.nodes.values():
            if node.tier is not Tier.CLIQUE:
                assert graph.relationships.providers(node.asn), node

    def test_stubs_have_no_customers(self, graph):
        for node in graph.by_tier(Tier.STUB):
            assert graph.relationships.customers(node.asn) == set()

    def test_unique_domains(self, graph):
        domains = [n.domain for n in graph.nodes.values()]
        assert len(domains) == len(set(domains))

    def test_loc_codes_assigned(self, graph):
        for node in graph.nodes.values():
            assert node.loc_codes

    def test_org_assigned(self, graph):
        for node in graph.nodes.values():
            assert graph.orgs.org_of(node.asn) is not None

    def test_some_sibling_orgs_exist(self, graph):
        assert any(len(members) > 1
                   for _, members in graph.orgs.organizations())


class TestIXPs:
    def test_members_exist(self, graph):
        for ixp in graph.ixps:
            assert len(ixp.members) >= 3

    def test_lan_peerings_are_relationships(self, graph):
        for ixp in graph.ixps:
            for a, b in ixp.lan_peerings:
                assert graph.relationships.relationship(a, b) is not None

    def test_ixp_of_peering(self, graph):
        for ixp in graph.ixps:
            if ixp.lan_peerings:
                a, b = ixp.lan_peerings[0]
                assert graph.ixp_of_peering(a, b) is ixp
                assert graph.ixp_of_peering(b, a) is ixp

    def test_ixp_domains_unique(self, graph):
        domains = [ixp.domain for ixp in graph.ixps]
        assert len(domains) == len(set(domains))


class TestDeterminism:
    def test_same_seed_same_graph(self):
        config = ASGraphConfig(n_clique=2, n_transit=4, n_access=6,
                               n_stub=8, n_content=2, n_ixps=2)
        a = generate_asgraph(7, config)
        b = generate_asgraph(7, config)
        assert a.asns() == b.asns()
        assert list(a.relationships.to_lines()) == \
            list(b.relationships.to_lines())

    def test_different_seed_differs(self):
        config = ASGraphConfig(n_clique=2, n_transit=4, n_access=6,
                               n_stub=8, n_content=2, n_ixps=2)
        a = generate_asgraph(7, config)
        b = generate_asgraph(8, config)
        assert a.asns() != b.asns()
