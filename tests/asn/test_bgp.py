"""Unit tests for the route table / IP-to-AS substrate."""

import pytest

from repro.asn.bgp import IXP_ASN, UNKNOWN_ASN, RouteTable
from repro.util.ipaddr import IPv4Prefix, ip_to_int


@pytest.fixture
def table():
    t = RouteTable()
    t.announce(IPv4Prefix.parse("10.0.0.0/8"), 3356)
    t.announce(IPv4Prefix.parse("10.1.0.0/16"), 64500)
    t.add_ixp_prefix(IPv4Prefix.parse("206.0.0.0/24"))
    return t


class TestOrigin:
    def test_longest_match(self, table):
        assert table.origin(ip_to_int("10.1.2.3")) == 64500
        assert table.origin(ip_to_int("10.2.2.3")) == 3356

    def test_unrouted(self, table):
        assert table.origin(ip_to_int("192.0.2.1")) == UNKNOWN_ASN

    def test_ixp(self, table):
        assert table.origin(ip_to_int("206.0.0.5")) == IXP_ASN
        assert table.is_ixp(ip_to_int("206.0.0.5"))
        assert not table.is_ixp(ip_to_int("10.0.0.1"))

    def test_origin_prefix(self, table):
        prefix, origin = table.origin_prefix(ip_to_int("10.1.2.3"))
        assert str(prefix) == "10.1.0.0/16"
        assert origin == 64500

    def test_prefixes_of(self, table):
        assert [str(p) for p in table.prefixes_of(3356)] == ["10.0.0.0/8"]
        assert table.prefixes_of(999) == []

    def test_ixp_prefixes(self, table):
        assert [str(p) for p in table.ixp_prefixes()] == ["206.0.0.0/24"]

    def test_len(self, table):
        assert len(table) == 3


class TestSerialization:
    def test_round_trip(self, table):
        parsed = RouteTable.from_lines(table.to_lines())
        assert parsed.origin(ip_to_int("10.1.2.3")) == 64500
        assert parsed.origin(ip_to_int("206.0.0.9")) == IXP_ASN
        assert len(parsed) == len(table)

    def test_describe(self, table):
        text = table.describe(ip_to_int("10.1.2.3"))
        assert "10.1.0.0/16" in text and "AS64500" in text
        assert "unrouted" in table.describe(ip_to_int("192.0.2.1"))
        assert "IXP" in table.describe(ip_to_int("206.0.0.1"))
