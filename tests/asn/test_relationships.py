"""Unit tests for AS relationships."""

import pytest

from repro.asn.relationships import ASRelationships, Relationship


@pytest.fixture
def rels():
    r = ASRelationships()
    r.add_p2c(3356, 64500)      # 3356 provides transit to 64500
    r.add_p2c(3356, 64501)
    r.add_p2c(64500, 64510)     # 64500 resells to 64510
    r.add_p2p(3356, 1299)
    return r


class TestQueries:
    def test_providers(self, rels):
        assert rels.providers(64500) == {3356}
        assert rels.providers(3356) == set()

    def test_customers(self, rels):
        assert rels.customers(3356) == {64500, 64501}

    def test_peers(self, rels):
        assert rels.peers(3356) == {1299}
        assert rels.peers(1299) == {3356}

    def test_relationship(self, rels):
        assert rels.relationship(64500, 3356) is Relationship.PROVIDER
        assert rels.relationship(3356, 64500) is Relationship.CUSTOMER
        assert rels.relationship(3356, 1299) is Relationship.PEER
        assert rels.relationship(64500, 1299) is None

    def test_neighbors_and_degree(self, rels):
        assert rels.neighbors(3356) == {64500, 64501, 1299}
        assert rels.degree(3356) == 3
        assert rels.transit_degree(3356) == 2
        assert rels.transit_degree(64510) == 0

    def test_asns(self, rels):
        assert rels.asns() == {3356, 64500, 64501, 64510, 1299}

    def test_transit_free(self, rels):
        assert rels.is_transit_free(3356)
        assert not rels.is_transit_free(64500)   # has a provider
        assert not rels.is_transit_free(64510)   # no customers

    def test_self_relationship_rejected(self):
        r = ASRelationships()
        with pytest.raises(ValueError):
            r.add_p2c(1, 1)
        with pytest.raises(ValueError):
            r.add_p2p(2, 2)


class TestValleyFree:
    def test_up_then_down(self, rels):
        # 64510 -> 64500 -> 3356 -> 64501: up, up, down.
        assert rels.valley_free((64510, 64500, 3356, 64501))

    def test_peer_in_middle(self, rels):
        assert rels.valley_free((64500, 3356, 1299))

    def test_valley_rejected(self, rels):
        # down then up: 3356 -> 64500 (down) -> ... back up is fine, but
        # 64500 -> 64510 (down) then 64510 -> nothing; construct an
        # explicit valley: provider -> customer -> provider.
        assert not rels.valley_free((3356, 64500, 3356))

    def test_two_peer_steps_rejected(self):
        r = ASRelationships()
        r.add_p2p(1, 2)
        r.add_p2p(2, 3)
        assert not r.valley_free((1, 2, 3))

    def test_peer_after_down_rejected(self, rels):
        # 3356 -> 64500 is downhill, then a peer step is illegal.
        r = ASRelationships()
        r.add_p2c(3356, 64500)
        r.add_p2p(64500, 7018)
        assert not r.valley_free((3356, 64500, 7018))

    def test_unknown_adjacency_rejected(self, rels):
        assert not rels.valley_free((3356, 9999))

    def test_single_as_path(self, rels):
        assert rels.valley_free((3356,))


class TestSerialization:
    def test_round_trip(self, rels):
        lines = list(rels.to_lines())
        parsed = ASRelationships.from_lines(lines)
        assert parsed.asns() == rels.asns()
        assert parsed.customers(3356) == rels.customers(3356)
        assert parsed.peers(3356) == rels.peers(3356)

    def test_serial1_format(self, rels):
        lines = list(rels.to_lines())
        assert "3356|64500|-1" in lines
        assert "1299|3356|0" in lines

    def test_comments_and_blank_lines(self):
        parsed = ASRelationships.from_lines(
            ["# comment", "", "1|2|-1", "2|3|0"])
        assert parsed.relationship(2, 1) is Relationship.PROVIDER
        assert parsed.relationship(2, 3) is Relationship.PEER

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            ASRelationships.from_lines(["1|2"])
        with pytest.raises(ValueError):
            ASRelationships.from_lines(["1|2|5"])
