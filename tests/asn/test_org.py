"""Unit tests for the AS-to-organization map."""

import pytest

from repro.asn.org import ASOrgMap


@pytest.fixture
def orgs():
    m = ASOrgMap()
    m.assign(8075, "ORG-MSFT", "Microsoft")
    m.assign(8069, "ORG-MSFT")
    m.assign(12076, "ORG-MSFT")
    m.assign(3356, "ORG-LUMEN", "Lumen")
    return m


class TestSiblings:
    def test_siblings_include_self(self, orgs):
        assert orgs.siblings(8075) == {8075, 8069, 12076}

    def test_unknown_asn_is_own_sibling(self, orgs):
        assert orgs.siblings(65000) == {65000}

    def test_are_siblings(self, orgs):
        assert orgs.are_siblings(8075, 8069)
        assert orgs.are_siblings(8069, 12076)
        assert not orgs.are_siblings(8075, 3356)

    def test_self_is_sibling(self, orgs):
        assert orgs.are_siblings(999, 999)

    def test_unknown_pair_not_siblings(self, orgs):
        assert not orgs.are_siblings(65000, 65001)


class TestAssignment:
    def test_org_of(self, orgs):
        assert orgs.org_of(3356) == "ORG-LUMEN"
        assert orgs.org_of(65000) is None

    def test_org_name(self, orgs):
        assert orgs.org_name("ORG-MSFT") == "Microsoft"
        assert orgs.org_name("ORG-NONE") is None

    def test_reassignment_moves(self, orgs):
        orgs.assign(8069, "ORG-OTHER")
        assert not orgs.are_siblings(8075, 8069)
        assert orgs.members("ORG-MSFT") == {8075, 12076}

    def test_reassignment_cleans_empty_org(self):
        m = ASOrgMap()
        m.assign(1, "A")
        m.assign(1, "B")
        assert dict(m.organizations()) == {"B": {1}}

    def test_members_copy(self, orgs):
        members = orgs.members("ORG-MSFT")
        members.add(9999)
        assert 9999 not in orgs.members("ORG-MSFT")


class TestSerialization:
    def test_round_trip(self, orgs):
        parsed = ASOrgMap.from_lines(orgs.to_lines())
        assert parsed.siblings(8075) == orgs.siblings(8075)
        assert parsed.org_name("ORG-LUMEN") == "Lumen"

    def test_malformed(self):
        with pytest.raises(ValueError):
            ASOrgMap.from_lines(["justonefield"])

    def test_comments_skipped(self):
        parsed = ASOrgMap.from_lines(["# header", "1|ORG-A|Alpha"])
        assert parsed.org_of(1) == "ORG-A"
