"""Unit tests for the public suffix list implementation."""

import pytest

from repro.psl import PublicSuffixList, default_psl


@pytest.fixture(scope="module")
def psl():
    return default_psl()


class TestPublicSuffix:
    def test_simple_tld(self, psl):
        assert psl.public_suffix("example.com") == "com"

    def test_multi_label_suffix(self, psl):
        assert psl.public_suffix("foo.example.co.uk") == "co.uk"

    def test_unknown_tld_default_rule(self, psl):
        assert psl.public_suffix("foo.bar.unknowntld") == "unknowntld"

    def test_wildcard_rule(self, psl):
        # *.ck makes any second level a public suffix.
        assert psl.public_suffix("foo.bar.ck") == "bar.ck"

    def test_exception_rule(self, psl):
        # !www.ck defeats the wildcard.
        assert psl.public_suffix("www.ck") == "ck"
        assert psl.registered_domain("www.ck") == "www.ck"

    def test_private_section(self, psl):
        assert psl.public_suffix("me.blogspot.com") == "blogspot.com"

    def test_empty(self, psl):
        assert psl.public_suffix("") is None

    def test_case_insensitive(self, psl):
        assert psl.public_suffix("Foo.Example.COM") == "com"


class TestRegisteredDomain:
    def test_paper_examples(self, psl):
        # Suffix determination examples from section 3 of the paper.
        assert psl.registered_domain(
            "ge0-2.01.p.ost.ch.as15576.nts.ch") == "nts.ch"
        assert psl.registered_domain("as24940.akl-ix.nz") == "akl-ix.nz"
        assert psl.registered_domain(
            "p24115.mel.equinix.com") == "equinix.com"
        assert psl.registered_domain(
            "201.atm2-0.vr1.tor2.alter.net") == "alter.net"
        assert psl.registered_domain(
            "mlg4bras1-be127-605.antel.net.uy") == "antel.net.uy"

    def test_bare_suffix_has_no_registered_domain(self, psl):
        assert psl.registered_domain("com") is None
        assert psl.registered_domain("co.uk") is None

    def test_exact_registered_domain(self, psl):
        assert psl.registered_domain("example.com") == "example.com"

    def test_deep_hostname(self, psl):
        assert psl.registered_domain(
            "a.b.c.d.example.org.nz") == "example.org.nz"

    def test_trailing_dot(self, psl):
        assert psl.registered_domain("host.example.com.") == "example.com"


class TestParsing:
    def test_from_text_ignores_comments(self):
        psl = PublicSuffixList.from_text(
            "// comment\ncom\n\nnet  // trailing\n")
        assert psl.public_suffix("a.com") == "com"
        assert psl.public_suffix("a.net") == "net"

    def test_rule_count(self):
        psl = PublicSuffixList.from_text("com\nnet\nco.uk\n")
        assert len(psl) == 3

    def test_from_file(self, tmp_path):
        path = tmp_path / "psl.dat"
        path.write_text("com\nexample\n", encoding="utf-8")
        psl = PublicSuffixList.from_file(str(path))
        assert psl.public_suffix("foo.example") == "example"

    def test_exception_without_wildcard_is_harmless(self):
        psl = PublicSuffixList.from_text("!www.example\nexample\n")
        assert psl.public_suffix("www.example") == "example"
