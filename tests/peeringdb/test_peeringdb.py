"""Unit tests for the synthetic PeeringDB."""

import pytest

from repro.peeringdb.builder import PeeringDBConfig, build_peeringdb
from repro.peeringdb.snapshot import PeeringDBSnapshot
from repro.topology.world import WorldConfig, generate_world


@pytest.fixture(scope="module")
def world():
    return generate_world(42, WorldConfig.tiny())


class TestBuilder:
    def test_every_ixp_present(self, world):
        pdb = build_peeringdb(world, 9, "t")
        assert {ix.ix_id for ix in pdb.ixes} == \
            {ixp.ixp_id for ixp in world.graph.ixps}

    def test_records_point_at_lan_addresses(self, world):
        pdb = build_peeringdb(world, 9, "t",
                              PeeringDBConfig(participation=1.0,
                                              stale_record_rate=0.0))
        for record in pdb.netixlans:
            lan = world.plan.ixp_lans[record.ix_id]
            assert lan.contains(record.ipaddr4)

    def test_full_participation_covers_members(self, world):
        pdb = build_peeringdb(world, 9, "t",
                              PeeringDBConfig(participation=1.0))
        for ixp in world.graph.ixps:
            recorded = len(pdb.members_of(ixp.ixp_id))
            assert recorded == len(ixp.members)

    def test_partial_participation(self, world):
        full = build_peeringdb(world, 9, "t",
                               PeeringDBConfig(participation=1.0))
        partial = build_peeringdb(world, 9, "t",
                                  PeeringDBConfig(participation=0.3))
        assert len(partial.netixlans) < len(full.netixlans)

    def test_records_mostly_correct(self, world):
        pdb = build_peeringdb(world, 9, "t",
                              PeeringDBConfig(participation=1.0,
                                              record_primary_rate=0.0,
                                              stale_record_rate=0.0))
        for record in pdb.netixlans:
            port = world.topology.ixp_ports[(record.ix_id,
                                             record.asn)]
            assert port.router.asn == record.asn

    def test_primary_asn_recording(self, world):
        pdb = build_peeringdb(world, 9, "t",
                              PeeringDBConfig(participation=1.0,
                                              record_primary_rate=1.0,
                                              stale_record_rate=0.0))
        orgs = world.graph.orgs
        for record in pdb.netixlans:
            truth = world.true_owner(record.ipaddr4)
            assert orgs.are_siblings(record.asn, truth)

    def test_deterministic(self, world):
        a = build_peeringdb(world, 9, "t")
        b = build_peeringdb(world, 9, "t")
        assert a.to_json() == b.to_json()


class TestSerialization:
    def test_round_trip(self, world):
        pdb = build_peeringdb(world, 9, "snap")
        parsed = PeeringDBSnapshot.from_json(pdb.to_json())
        assert parsed.label == "snap"
        assert len(parsed.netixlans) == len(pdb.netixlans)
        assert parsed.by_address() == pdb.by_address()
        assert {ix.ix_id for ix in parsed.ixes} == \
            {ix.ix_id for ix in pdb.ixes}
