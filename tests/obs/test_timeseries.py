"""Unit tests for the time axis: diffs, rolling windows, history."""

import json
import os
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    HistoryStore,
    RollingWindows,
    diff_snapshot,
    history_deltas,
    is_empty_delta,
)

BOUNDS = [0.001, 0.01, 0.1, 1.0]


def busy_registry():
    """A registry with every instrument kind exercised."""
    registry = MetricsRegistry()
    registry.counter("http_requests").inc(5)
    registry.labelled("http_responses").inc("200", 4)
    registry.labelled("http_responses").inc("500", 1)
    hist = registry.histogram("http_request_seconds", BOUNDS)
    for value in (0.0005, 0.004, 0.04, 0.4):
        hist.observe(value)
    return registry


class TestDiffSnapshot:
    def test_merge_of_diff_reproduces_cur_exactly(self):
        registry = busy_registry()
        prev = registry.snapshot()
        registry.counter("http_requests").inc(3)
        registry.labelled("http_responses").inc("200", 3)
        registry.histogram("http_request_seconds", BOUNDS).observe(0.002)
        cur = registry.snapshot()

        delta = diff_snapshot(prev, cur)
        replay = MetricsRegistry()
        replay.merge_snapshot(prev)
        replay.merge_snapshot(delta)
        assert replay.snapshot() == cur

    def test_zero_deltas_are_omitted(self):
        registry = busy_registry()
        prev = registry.snapshot()
        registry.counter("http_requests").inc(1)
        delta = diff_snapshot(prev, registry.snapshot())
        assert delta["counters"] == {"http_requests": 1}
        assert delta["labelled"] == {}
        assert delta["histograms"] == {}

    def test_identical_snapshots_diff_to_empty(self):
        snapshot = busy_registry().snapshot()
        delta = diff_snapshot(snapshot, snapshot)
        assert is_empty_delta(delta)

    def test_counter_regression_raises(self):
        registry = busy_registry()
        cur = registry.snapshot()
        registry.counter("http_requests").inc(2)
        prev = registry.snapshot()
        with pytest.raises(ValueError, match="not a successor"):
            diff_snapshot(prev, cur)

    def test_vanished_counter_raises(self):
        prev = {"counters": {"a": 1, "b": 2}}
        cur = {"counters": {"a": 1}}
        with pytest.raises(ValueError, match="vanished"):
            diff_snapshot(prev, cur)

    def test_label_regression_raises(self):
        prev = {"labelled": {"http_responses": {"500": 3}}}
        cur = {"labelled": {"http_responses": {"500": 1}}}
        with pytest.raises(ValueError, match="not a successor"):
            diff_snapshot(prev, cur)

    def test_bucket_regression_raises(self):
        registry = busy_registry()
        cur = registry.snapshot()
        registry.histogram("http_request_seconds", BOUNDS).observe(0.002)
        prev = registry.snapshot()
        with pytest.raises(ValueError, match="not a successor"):
            diff_snapshot(prev, cur)

    def test_changed_bounds_raise(self):
        a = MetricsRegistry()
        a.histogram("h", [1.0]).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", [2.0]).observe(0.5)
        with pytest.raises(ValueError, match="bounds"):
            diff_snapshot(a.snapshot(), b.snapshot())

    def test_extra_snapshot_keys_are_ignored(self):
        registry = busy_registry()
        prev = dict(registry.snapshot(), ts=1.0, worker_id=3,
                    shadow={"active": True})
        registry.counter("http_requests").inc(1)
        cur = dict(registry.snapshot(), ts=2.0, worker_id=3,
                   memo={"hits": 9})
        delta = diff_snapshot(prev, cur)
        assert delta["counters"] == {"http_requests": 1}
        assert "ts" not in delta and "shadow" not in delta

    def test_histogram_delta_carries_windowed_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", BOUNDS)
        hist.observe(0.0005)
        prev = registry.snapshot()
        for _ in range(10):
            hist.observe(0.05)
        delta = diff_snapshot(prev, registry.snapshot())
        payload = delta["histograms"]["h"]
        assert payload["count"] == 10
        assert sum(payload["buckets"]) == 10
        # All 10 new samples sit in the (0.01, 0.1] bucket.
        assert payload["percentiles"]["p50"] <= 0.1


class TestRollingWindows:
    def test_first_sample_is_baseline_only(self):
        windows = RollingWindows(10.0, 6)
        assert windows.record(busy_registry().snapshot(), ts=100.0) \
            is False
        assert windows.window_snapshot(now=100.0).get("counters") == {}

    def test_deltas_fold_into_windows(self):
        windows = RollingWindows(10.0, 6)
        registry = busy_registry()
        windows.record({}, ts=100.0)  # empty baseline, as the server does
        windows.record(registry.snapshot(), ts=101.0)
        registry.counter("http_requests").inc(7)
        windows.record(registry.snapshot(), ts=105.0)
        counters = windows.window_snapshot(now=105.0)["counters"]
        assert counters["http_requests"] == 12  # 5 from boot + 7

    def test_windows_evict_beyond_horizon(self):
        windows = RollingWindows(width_seconds=1.0, count=2)
        registry = MetricsRegistry()
        windows.record({}, ts=100.0)
        registry.counter("c").inc(1)
        windows.record(registry.snapshot(), ts=100.5)
        registry.counter("c").inc(1)
        windows.record(registry.snapshot(), ts=110.0)
        counters = windows.window_snapshot(now=110.0).get("counters", {})
        assert counters.get("c", 0) == 1  # the 100.5 sample aged out

    def test_non_successor_rebaselines_instead_of_raising(self):
        windows = RollingWindows(10.0, 6)
        big = MetricsRegistry()
        big.counter("c").inc(9)
        windows.record(big.snapshot(), ts=100.0)
        fresh = MetricsRegistry()  # the worker restarted
        fresh.counter("c").inc(1)
        assert windows.record(fresh.snapshot(), ts=105.0) is False
        assert windows.resets == 1
        fresh.counter("c").inc(2)
        assert windows.record(fresh.snapshot(), ts=106.0) is True
        assert windows.window_snapshot(now=106.0)["counters"]["c"] == 2

    def test_rate_uses_covered_seconds(self):
        windows = RollingWindows(10.0, 6)
        registry = MetricsRegistry()
        windows.record({}, ts=100.0)
        registry.counter("http_requests").inc(40)
        windows.record(registry.snapshot(), ts=104.0)
        assert windows.rate("http_requests", now=104.0) == \
            pytest.approx(10.0)

    def test_percentiles_reuse_histogram_from_delta(self):
        windows = RollingWindows(10.0, 6)
        registry = MetricsRegistry()
        windows.record({}, ts=100.0)
        hist = registry.histogram("http_request_seconds", BOUNDS)
        for _ in range(100):
            hist.observe(0.004)
        windows.record(registry.snapshot(), ts=105.0)
        percentiles = windows.percentiles("http_request_seconds",
                                          now=105.0)
        assert set(percentiles) == {"p50", "p90", "p99"}
        assert percentiles["p50"] == pytest.approx(0.004)

    def test_percentiles_empty_without_samples(self):
        windows = RollingWindows(10.0, 6)
        assert windows.percentiles("http_request_seconds",
                                   now=100.0) == {}

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            RollingWindows(0.0, 6)
        with pytest.raises(ValueError):
            RollingWindows(10.0, 0)


class TestHistoryStore:
    def test_append_and_entries_roundtrip(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        snapshot = busy_registry().snapshot()
        store.append(snapshot, ts=100.0)
        store.append(snapshot, ts=200.0, shadow_active=True)
        entries = store.entries()
        assert [entry["ts"] for entry in entries] == [100.0, 200.0]
        assert entries[0]["snapshot"] == snapshot
        assert entries[1]["shadow_active"] is True

    def test_entries_since_filters(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        for ts in (100.0, 200.0, 300.0):
            store.append({}, ts=ts)
        assert [e["ts"] for e in store.entries(since=150.0)] == \
            [200.0, 300.0]

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        store = HistoryStore(str(path))
        store.append({}, ts=100.0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{torn json\n")
        store.append({}, ts=200.0)
        assert [e["ts"] for e in store.entries()] == [100.0, 200.0]

    def test_missing_file_reads_empty(self, tmp_path):
        assert HistoryStore(str(tmp_path / "absent.jsonl")).entries() \
            == []

    def test_size_retention_drops_oldest_first(self, tmp_path):
        path = tmp_path / "h.jsonl"
        store = HistoryStore(str(path), max_bytes=300,
                             max_age_seconds=None)
        for ts in range(100, 110):
            store.append({"counters": {"c": ts}}, ts=float(ts))
        entries = store.entries()
        assert entries  # trimmed, not emptied
        assert os.path.getsize(path) <= 300
        assert entries[-1]["ts"] == 109.0  # newest survives

    def test_age_retention_drops_stale_entries(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.jsonl"),
                             max_age_seconds=50.0)
        store.append({}, ts=100.0)
        store.append({}, ts=200.0)
        assert [e["ts"] for e in store.entries()] == [200.0]

    def test_append_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "down" / "h.jsonl"
        HistoryStore(str(path)).append({}, ts=1.0)
        assert path.is_file()


class TestHistoryDeltas:
    def test_within_one_lifetime_diffs_exactly(self):
        registry = MetricsRegistry()
        registry.counter("http_requests").inc(4)
        first = {"ts": 100.0, "snapshot": registry.snapshot()}
        registry.counter("http_requests").inc(6)
        second = {"ts": 110.0, "snapshot": registry.snapshot()}
        rows = history_deltas([first, second])
        assert rows[0]["delta"]["counters"]["http_requests"] == 4
        assert rows[0]["seconds"] is None
        assert rows[1]["delta"]["counters"]["http_requests"] == 6
        assert rows[1]["seconds"] == pytest.approx(10.0)

    def test_restart_counts_fresh_lifetime_from_zero(self):
        old = MetricsRegistry()
        old.counter("http_requests").inc(100)
        fresh = MetricsRegistry()
        fresh.counter("http_requests").inc(3)
        rows = history_deltas([
            {"ts": 100.0, "snapshot": old.snapshot()},
            {"ts": 200.0, "snapshot": fresh.snapshot()},
        ])
        total = sum(row["delta"].get("counters", {})
                    .get("http_requests", 0) for row in rows)
        assert total == 103  # neither double-counted nor hidden
        assert rows[1]["seconds"] is None

    def test_time_is_wall_clock_not_call_time(self, tmp_path):
        # The store stamps ts when appending without one.
        store = HistoryStore(str(tmp_path / "h.jsonl"))
        before = time.time()
        entry = store.append({})
        assert before <= entry["ts"] <= time.time()

    def test_entries_feed_json_roundtrip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        HistoryStore(str(path)).append(
            busy_registry().snapshot(), ts=1.0, shadow={"active": False})
        with open(path, encoding="utf-8") as handle:
            line = handle.readline()
        assert json.loads(line)["shadow"]["active"] is False
