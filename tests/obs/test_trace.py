"""Unit tests for the tracing core (spans, sinks, worker adoption)."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    Captured,
    NullTracer,
    Tracer,
    adopt_all,
    load_trace,
    resilience_to_span,
    retry_to_span,
    unwrap,
)


class TestSpanBasics:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        names = [r["name"] for r in tracer.records]
        assert names == ["inner", "outer"]  # finish order

    def test_attrs_and_events(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as span:
            span.set(done=True)
            span.event("milestone", step=1)
        record = tracer.records[0]
        assert record["attrs"] == {"items": 3, "done": True}
        assert record["events"][0]["name"] == "milestone"
        assert record["events"][0]["attrs"] == {"step": 1}
        assert record["events"][0]["at"] >= 0.0

    def test_timings_populate_on_finish(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        record = tracer.records[0]
        assert record["wall"] >= 0.0
        assert record["cpu"] >= 0.0
        assert record["status"] == "ok"
        assert record["error"] is None

    def test_exception_sets_error_status_and_still_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("kaboom")
        assert len(tracer.records) == 1
        record = tracer.records[0]
        assert record["status"] == "error"
        assert "RuntimeError" in record["error"]
        assert "kaboom" in record["error"]
        assert tracer.current is None  # popped off the stack

    def test_out_of_order_finish(self):
        tracer = Tracer()
        first = tracer.span("first")
        second = tracer.span("second")
        first.finish()   # out of order: parent closes before child
        second.finish()
        names = [r["name"] for r in tracer.records]
        assert names == ["first", "second"]
        assert tracer.current is None

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once")
        span.finish()
        span.finish()
        assert len(tracer.records) == 1

    def test_close_finishes_open_spans_innermost_first(self):
        tracer = Tracer()
        tracer.span("outer")
        tracer.span("inner")
        tracer.close()
        names = [r["name"] for r in tracer.records]
        assert names == ["inner", "outer"]

    def test_span_ids_unique_across_tracers(self):
        ids = set()
        for _ in range(5):
            tracer = Tracer()
            with tracer.span("x"):
                pass
            ids.add(tracer.records[0]["id"])
        assert len(ids) == 5


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", k=1) as span:
            span.set(more=2)
            span.event("nothing")
            span.fail(ValueError("ignored"))
        assert NULL_TRACER.export() == []
        NULL_TRACER.adopt([{"id": "x"}])
        NULL_TRACER.close()
        assert list(NULL_TRACER.records) == []

    def test_null_span_is_shared(self):
        a = NULL_TRACER.span("a")
        b = NullTracer().span("b")
        assert a is b


class TestSink:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path)
        with tracer.span("outer"):
            with tracer.span("inner", n=1):
                pass
        tracer.close()
        records = load_trace(path)
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records == tracer.export()

    def test_load_trace_tolerates_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"id": "a", "parent": null, "name": "x"}\n\n\n',
                        encoding="utf-8")
        assert len(load_trace(str(path))) == 1

    def test_load_trace_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"id": "a"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="2"):
            load_trace(str(path))

    def test_load_trace_rejects_non_object_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(ValueError, match="not an object"):
            load_trace(str(path))

    def test_sink_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=str(path))
        with tracer.span("s"):
            pass
        tracer.close()
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)


class TestAdoption:
    def _worker_records(self):
        worker = Tracer()
        with worker.span("snapshot"):
            with worker.span("snapshot.build"):
                pass
        worker.close()
        return worker.export()

    def test_adopt_reparents_worker_roots(self):
        coordinator = Tracer()
        with coordinator.span("timeline") as span:
            coordinator.adopt(self._worker_records(),
                              parent_id=span.span_id)
        by_name = {r["name"]: r for r in coordinator.records}
        timeline = by_name["timeline"]
        assert by_name["snapshot"]["parent"] == timeline["id"]
        # Child keeps its worker-side parent (the snapshot span).
        assert by_name["snapshot.build"]["parent"] == \
            by_name["snapshot"]["id"]

    def test_adopt_defaults_to_current_span(self):
        coordinator = Tracer()
        with coordinator.span("stage") as span:
            coordinator.adopt(self._worker_records())
        roots = [r for r in coordinator.records if r["parent"] is None]
        assert [r["name"] for r in roots] == ["stage"]
        assert any(r["parent"] == span.span_id
                   for r in coordinator.records)

    def test_adopt_all_unwraps_mixed_results(self):
        coordinator = Tracer()
        captured = Captured("value-a", self._worker_records())
        with coordinator.span("stage") as span:
            values = adopt_all(coordinator, [captured, "poison-sub"],
                               parent_id=span.span_id)
        assert values == ["value-a", "poison-sub"]
        assert any(r["name"] == "snapshot" for r in coordinator.records)

    def test_unwrap(self):
        assert unwrap(Captured(42, [])) == 42
        assert unwrap("bare") == "bare"


class TestResilienceBridging:
    def test_retry_to_span_records_events(self):
        tracer = Tracer()
        with tracer.span("fanout") as span:
            on_retry = retry_to_span(span, "learn")
            on_retry("item", 1, ValueError("boom"))
            on_retry("item", 2, None)  # pool-loss retry
        events = tracer.records[0]["events"]
        assert [e["name"] for e in events] == ["retry", "retry"]
        assert events[0]["attrs"]["error"] == "ValueError"
        assert events[1]["attrs"]["error"] == "pool-loss"

    def test_resilience_to_span_summarises_stats(self):
        from repro.core.resilience import ResilienceStats
        stats = ResilienceStats()
        stats.retries = 3
        stats.pool_losses = 1
        stats.timeouts = 2
        stats.poisoned = 1
        stats.degraded = True
        tracer = Tracer()
        with tracer.span("fanout") as span:
            resilience_to_span(span, "timeline", stats)
        record = tracer.records[0]
        names = [e["name"] for e in record["events"]]
        assert names == ["pool-rebuild", "timeout", "poisoned",
                         "degrade-to-serial"]
        assert record["attrs"]["retries"] == 3
        assert record["attrs"]["pool_losses"] == 1

    def test_resilience_to_span_quiet_run_emits_nothing(self):
        from repro.core.resilience import ResilienceStats
        tracer = Tracer()
        with tracer.span("fanout") as span:
            resilience_to_span(span, "learn", ResilienceStats())
        record = tracer.records[0]
        assert record["events"] == []
        assert record["attrs"] == {"retries": 0, "pool_losses": 0}
