"""Unit tests for declarative SLO targets and the slo-report CLI."""

import json

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SloTarget,
    evaluate_history,
    render_slo_report,
)
from repro.obs.timeseries import HistoryStore

BOUNDS = [0.001, 0.01, 0.1, 1.0]


class Traffic:
    """A cumulative serving registry that emits history entries."""

    def __init__(self):
        self.registry = MetricsRegistry()

    def serve(self, ok=0, errors=0, fast=0, slow=0):
        """Accumulate requests; fast=4 ms samples, slow=40 ms."""
        self.registry.counter("http_requests").inc(ok + errors)
        if ok:
            self.registry.labelled("http_responses").inc("200", ok)
        if errors:
            self.registry.labelled("http_responses").inc("500", errors)
        hist = self.registry.histogram("http_request_seconds", BOUNDS)
        hist.observe_many(0.004, fast)
        hist.observe_many(0.040, slow)

    def entry(self, ts):
        return {"ts": ts, "snapshot": self.registry.snapshot()}


class TestSloTarget:
    def test_defaults(self):
        target = SloTarget()
        assert target.availability == 0.999
        assert target.latency_threshold_seconds is None
        assert target.burn_rate_max is None

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SLO keys: burn"):
            SloTarget.from_dict({"availability": 0.99, "burn": 14.4})

    def test_from_file_roundtrip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"availability": 0.95,
                                    "latency_threshold_seconds": 0.01,
                                    "latency_fraction": 0.9}))
        target = SloTarget.from_file(str(path))
        assert target.availability == 0.95
        assert target.latency_threshold_seconds == 0.01

    def test_from_file_rejects_non_object(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            SloTarget.from_file(str(path))

    def test_validation(self):
        with pytest.raises(ValueError, match="availability"):
            SloTarget(availability=0.0)
        with pytest.raises(ValueError, match="latency_threshold"):
            SloTarget(latency_threshold_seconds=0.0)
        with pytest.raises(ValueError, match="latency_fraction"):
            SloTarget(latency_fraction=1.5)
        with pytest.raises(ValueError, match="burn_rate_max"):
            SloTarget(availability=0.9, burn_rate_max=-1.0)
        with pytest.raises(ValueError, match="error budget"):
            SloTarget(availability=1.0, burn_rate_max=14.4)


class TestEvaluateHistory:
    def test_clean_history_passes(self):
        traffic = Traffic()
        traffic.serve(ok=500, fast=500)
        entries = [traffic.entry(100.0)]
        traffic.serve(ok=500, fast=500)
        entries.append(traffic.entry(200.0))
        report = evaluate_history(entries, SloTarget(availability=0.99))
        assert report["ok"] is True
        assert report["requests"] == 1000
        assert report["errors"] == 0
        assert report["availability"] == 1.0

    def test_availability_breach(self):
        traffic = Traffic()
        traffic.serve(ok=90, errors=10, fast=100)
        report = evaluate_history([traffic.entry(100.0)],
                                  SloTarget(availability=0.95))
        assert report["ok"] is False
        (check,) = [c for c in report["checks"]
                    if c["name"] == "availability"]
        assert check["ok"] is False
        assert check["value"] == pytest.approx(0.9)
        assert "10/100" in check["detail"]

    def test_latency_check_is_conservative(self):
        # 90 samples at 4 ms, 10 at 40 ms; every one is under the
        # 50 ms threshold, but 0.05 falls inside the (0.01, 0.1]
        # bucket, so only the 90 provably-fast samples count.
        traffic = Traffic()
        traffic.serve(ok=100, fast=90, slow=10)
        target = SloTarget(availability=0.5,
                           latency_threshold_seconds=0.05,
                           latency_fraction=0.95)
        report = evaluate_history([traffic.entry(100.0)], target)
        (check,) = [c for c in report["checks"]
                    if c["name"] == "latency"]
        assert check["ok"] is False
        assert check["value"] == pytest.approx(0.9)

    def test_latency_passes_on_aligned_threshold(self):
        traffic = Traffic()
        traffic.serve(ok=100, fast=90, slow=10)
        target = SloTarget(availability=0.5,
                           latency_threshold_seconds=0.01,
                           latency_fraction=0.85)
        report = evaluate_history([traffic.entry(100.0)], target)
        assert report["ok"] is True

    def test_burn_rate_breach_on_recent_errors(self):
        # Old traffic is clean; the trailing hour serves 50% errors.
        # Overall availability (0.954) still beats the 0.9 target, so
        # only the burn-rate check fires.
        traffic = Traffic()
        traffic.serve(ok=1000, fast=1000)
        entries = [traffic.entry(0.0)]
        traffic.serve(ok=50, errors=50, fast=100)
        entries.append(traffic.entry(10000.0))
        target = SloTarget(availability=0.9, burn_rate_max=2.0,
                           burn_window_seconds=3600.0)
        report = evaluate_history(entries, target)
        assert report["ok"] is False
        checks = {c["name"]: c for c in report["checks"]}
        assert checks["availability"]["ok"] is True
        assert checks["burn_rate"]["ok"] is False
        # 0.5 error rate against a 0.1 budget burns at 5x.
        assert checks["burn_rate"]["value"] == pytest.approx(5.0)

    def test_burn_rate_ok_when_errors_are_old(self):
        traffic = Traffic()
        traffic.serve(ok=50, errors=50, fast=100)
        entries = [traffic.entry(0.0)]
        traffic.serve(ok=1000, fast=1000)
        entries.append(traffic.entry(10000.0))
        target = SloTarget(availability=0.9, burn_rate_max=2.0,
                           burn_window_seconds=3600.0)
        checks = {c["name"]: c
                  for c in evaluate_history(entries, target)["checks"]}
        assert checks["burn_rate"]["ok"] is True
        assert checks["burn_rate"]["value"] == pytest.approx(0.0)

    def test_empty_history_passes_vacuously(self):
        report = evaluate_history([], SloTarget(
            availability=0.999, latency_threshold_seconds=0.05,
            burn_rate_max=14.4))
        assert report["ok"] is True
        assert report["requests"] == 0
        assert all("no " in c["detail"] for c in report["checks"])

    def test_restart_traffic_still_counts(self):
        first = Traffic()
        first.serve(ok=90, errors=10, fast=100)
        second = Traffic()  # the server restarted from zero
        second.serve(ok=45, errors=5, fast=50)  # counters went down
        report = evaluate_history(
            [first.entry(100.0), second.entry(200.0)],
            SloTarget(availability=0.95))
        assert report["requests"] == 150
        assert report["errors"] == 15
        assert report["ok"] is False


class TestRenderSloReport:
    def test_render_mentions_every_check(self):
        traffic = Traffic()
        traffic.serve(ok=99, errors=1, fast=100)
        target = SloTarget(availability=0.999,
                           latency_threshold_seconds=0.01,
                           burn_rate_max=14.4)
        text = render_slo_report(
            evaluate_history([traffic.entry(100.0)], target))
        assert text.startswith("slo report: BREACH")
        for name in ("availability", "latency", "burn_rate"):
            assert name in text
        assert "requests" in text


class TestSloReportCli:
    def write_history(self, tmp_path, errors):
        traffic = Traffic()
        traffic.serve(ok=100 - errors, errors=errors, fast=100)
        store = HistoryStore(str(tmp_path / "history.jsonl"))
        store.append(traffic.registry.snapshot(), ts=100.0)
        return store.path

    def write_slo(self, tmp_path, **payload):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_clean_history_exits_zero(self, tmp_path, capsys):
        history = self.write_history(tmp_path, errors=0)
        slo = self.write_slo(tmp_path, availability=0.99)
        assert main(["slo-report", "--history", history,
                     "--slo", slo]) == 0
        assert "slo report: OK" in capsys.readouterr().out

    def test_breach_exits_one(self, tmp_path, capsys):
        history = self.write_history(tmp_path, errors=10)
        slo = self.write_slo(tmp_path, availability=0.95)
        assert main(["slo-report", "--history", history,
                     "--slo", slo]) == 1
        assert "slo report: BREACH" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        history = self.write_history(tmp_path, errors=0)
        slo = self.write_slo(tmp_path, availability=0.99)
        assert main(["slo-report", "--history", history,
                     "--slo", slo, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["requests"] == 100

    def test_missing_slo_exits_two(self, tmp_path, capsys):
        history = self.write_history(tmp_path, errors=0)
        assert main(["slo-report", "--history", history]) == 2
        assert "--slo" in capsys.readouterr().err

    def test_missing_history_exits_two(self, tmp_path, capsys):
        slo = self.write_slo(tmp_path, availability=0.99)
        assert main(["slo-report", "--slo", slo, "--no-cache"]) == 2
        assert "--history" in capsys.readouterr().err

    def test_empty_history_exits_two(self, tmp_path, capsys):
        slo = self.write_slo(tmp_path, availability=0.99)
        empty = tmp_path / "absent.jsonl"
        assert main(["slo-report", "--history", str(empty),
                     "--slo", slo]) == 2
        assert "no history entries" in capsys.readouterr().err

    def test_bad_slo_file_exits_two(self, tmp_path, capsys):
        history = self.write_history(tmp_path, errors=0)
        slo = self.write_slo(tmp_path, availability=0.99,
                             burn=14.4)  # unknown key
        assert main(["slo-report", "--history", history,
                     "--slo", slo]) == 2
        assert "cannot load SLO target" in capsys.readouterr().err
