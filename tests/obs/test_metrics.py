"""Histogram edge semantics and the promoted metrics registry.

The serving-side behaviour of these primitives is covered by
``tests/serve/test_metrics.py`` (which now exercises the compat
re-export); this file pins down the bucket-edge and percentile
guarantees the observability layer documents.
"""

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    merge_outcomes,
)


class TestHistogramEdges:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 5.0))
        hist.observe(2.0)  # == bounds[1]: bucket 1 covers (1.0, 2.0]
        assert hist.buckets == [0, 1, 0]
        assert hist.overflow == 0

    def test_value_above_last_bound_lands_in_overflow(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(2.0000001)
        hist.observe(100.0)
        assert hist.buckets == [0, 0]
        assert hist.overflow == 2

    def test_value_at_first_bound_lands_in_first_bucket(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(1.0)
        hist.observe(0.0)
        assert hist.buckets == [2, 0]

    def test_edge_placement_is_deterministic(self):
        # The same value observed repeatedly always lands in the same
        # bucket -- no float-noise flapping at the boundary.
        hist = Histogram("h", bounds=(0.001, 0.002, 0.005))
        for _ in range(100):
            hist.observe(0.002)
        assert hist.buckets == [0, 100, 0]

    def test_percentile_on_empty_histogram(self):
        hist = Histogram("h")
        assert hist.percentile(0.5) == 0.0
        assert hist.mean == 0.0

    def test_percentile_rejects_out_of_range_fraction(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_percentile_on_one_sample(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        hist.observe(3.0)
        # Every percentile of a single observation is that observation.
        for fraction in (0.01, 0.5, 0.99, 1.0):
            assert hist.percentile(fraction) == pytest.approx(3.0)

    def test_percentile_clamped_to_observed_range(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0, 8.0))
        hist.observe(1.5)
        hist.observe(3.0)
        assert hist.percentile(0.99) <= 3.0
        assert hist.percentile(0.01) >= 1.5

    def test_overflow_percentile_reports_observed_max(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(50.0)
        assert hist.percentile(0.99) == pytest.approx(50.0)


class TestSnapshotShape:
    def test_histogram_snapshot_exposes_raw_state(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", bounds=(1.0, 2.0))
        hist.observe(1.5)
        hist.observe(99.0)
        snap = registry.snapshot()["histograms"]["latency"]
        assert snap["bounds"] == [1.0, 2.0]
        assert snap["buckets"] == [0, 1]
        assert snap["overflow"] == 1
        assert snap["sum"] == pytest.approx(100.5)
        assert snap["count"] == 2

    def test_counters_in_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(4)
        registry.labelled("by_kind").inc("world", 2)
        snap = registry.snapshot()
        assert snap["counters"]["requests"] == 4
        assert snap["labelled"]["by_kind"]["world"] == 2


class TestCompatReexport:
    def test_serve_metrics_is_the_same_module_objects(self):
        import repro.serve.metrics as compat
        assert compat.MetricsRegistry is MetricsRegistry
        assert compat.Counter is Counter
        assert compat.Histogram is Histogram
        assert compat.merge_outcomes is merge_outcomes
