"""End-to-end tracing through the real pipeline layers.

These tests run the actual learner / timeline / context code under a
live tracer and assert on the shape of the resulting trace: worker
spans re-parented under coordinator stages, store spans and counters,
and a manifest whose stages account for the run.
"""

from repro.core.hoiho import Hoiho
from repro.core.parallel import ParallelConfig
from repro.core.types import TrainingItem
from repro.eval.context import ExperimentContext, Scale
from repro.obs.manifest import MANIFEST_SCHEMA, validate_schema
from repro.obs.trace import Tracer
from repro.store import ArtifactStore


def _items(n_suffixes=3, per_suffix=12):
    items = []
    for index in range(n_suffixes):
        suffix = "op%02d-trace.org" % index
        base = 3000 + 100 * index
        for i in range(per_suffix):
            items.append(TrainingItem(
                "as%d-et0.pop%d.%s" % (base + 7 * i, i % 3, suffix),
                base + 7 * i))
    return items


def _by_name(records):
    index = {}
    for record in records:
        index.setdefault(record["name"], []).append(record)
    return index


class TestTracedLearning:
    def test_serial_run_produces_one_tree(self):
        tracer = Tracer()
        Hoiho(tracer=tracer).run(_items())
        tracer.close()
        by_name = _by_name(tracer.records)
        roots = [r for r in tracer.records if r["parent"] is None]
        assert [r["name"] for r in roots] == ["learn.run"]
        assert len(by_name["learn.suffix"]) == 3
        run_id = by_name["learn.run"][0]["id"]
        for suffix_span in by_name["learn.suffix"]:
            assert suffix_span["parent"] == run_id
            attrs = suffix_span["attrs"]
            assert "match_calls" in attrs and "hit_rate" in attrs

    def test_parallel_worker_spans_reparent_under_learn_run(self):
        tracer = Tracer()
        hoiho = Hoiho(tracer=tracer,
                      parallel=ParallelConfig(workers=2,
                                              backend="process"))
        result = hoiho.run(_items())
        tracer.close()
        by_name = _by_name(tracer.records)
        run_id = by_name["learn.run"][0]["id"]
        suffix_spans = by_name["learn.suffix"]
        assert len(suffix_spans) == 3
        assert all(s["parent"] == run_id for s in suffix_spans)
        # The worker-side phase spans keep their worker-local parents.
        for phase in by_name["learn.phase1"]:
            assert phase["parent"] in {s["id"] for s in suffix_spans}
        assert result.conventions  # the traced path still learns

    def test_traced_and_untraced_results_identical(self):
        items = _items()
        untraced = Hoiho().run(items)
        tracer = Tracer()
        traced = Hoiho(tracer=tracer).run(items)
        tracer.close()
        assert sorted(traced.conventions) == sorted(untraced.conventions)
        for suffix in traced.conventions:
            assert traced.conventions[suffix].patterns() == \
                untraced.conventions[suffix].patterns()


class TestTracedContext:
    def _context(self, tmp_path=None, **kwargs):
        store = ArtifactStore(str(tmp_path)) if tmp_path else None
        return ExperimentContext(seed=7, scale=Scale.TINY,
                                 itdk_labels=["2020-01"],
                                 include_pdb=False, store=store,
                                 tracer=Tracer(), **kwargs)

    def test_stage_spans_are_roots(self):
        context = self._context()
        context.learn_timeline()
        context.tracer.close()
        roots = [r["name"] for r in context.tracer.records
                 if r["parent"] is None]
        assert roots == ["stage.world", "stage.timeline", "stage.learn"]

    def test_snapshot_worker_spans_nest_under_timeline(self):
        context = self._context()
        context.timeline
        context.tracer.close()
        by_name = _by_name(context.tracer.records)
        timeline_id = by_name["timeline"][0]["id"]
        assert by_name["snapshot"][0]["parent"] == timeline_id
        snapshot_id = by_name["snapshot"][0]["id"]
        for child in ("snapshot.naming", "snapshot.build",
                      "snapshot.graph", "snapshot.annotate",
                      "snapshot.training"):
            assert by_name[child][0]["parent"] == snapshot_id

    def test_store_spans_and_counters(self, tmp_path):
        cold = self._context(tmp_path)
        cold.learn_timeline()
        cold.tracer.close()
        cold_names = _by_name(cold.tracer.records)
        assert "store.put" in cold_names
        snapshot = cold.metrics.snapshot()
        assert snapshot["counters"]["store_writes"] == \
            len(cold_names["store.put"])

        warm = self._context(tmp_path)
        warm.learn_timeline()
        warm.tracer.close()
        warm_names = _by_name(warm.tracer.records)
        hits = [r for r in warm_names["store.get"]
                if r["attrs"].get("hit")]
        assert hits
        assert warm.metrics.snapshot()["counters"]["store_hits"] == \
            len(hits)

    def test_manifest_validates_and_covers_stages(self):
        context = self._context()
        context.learn_timeline()
        context.tracer.close()
        manifest = context.manifest(wall_seconds=1.0,
                                    trace_path="t.jsonl")
        assert validate_schema(manifest, MANIFEST_SCHEMA) == []
        names = [s["name"] for s in manifest["stages"]]
        assert names == ["stage.world", "stage.timeline", "stage.learn"]
        assert manifest["trace"] == "t.jsonl"
        assert manifest["seed"] == 7
        assert manifest["scale"] == "tiny"
        assert len(manifest["fingerprint"]) > 8

    def test_serve_bulk_chunks_traced(self):
        from repro.bench import serve_conventions
        from repro.serve.engine import BulkAnnotator
        from repro.serve.service import AnnotationService
        tracer = Tracer()
        annotator = BulkAnnotator(AnnotationService(serve_conventions(2)),
                                  chunk_size=8, tracer=tracer)
        hostnames = ["as%d-et0.pop0.svc00-bench.org" % (1000 + i)
                     for i in range(20)]
        results = list(annotator.annotate(hostnames))
        tracer.close()
        assert len(results) == 20
        by_name = _by_name(tracer.records)
        bulk = by_name["serve.bulk"][0]
        chunks = [c for c in by_name["serve.chunk"]
                  if not c["attrs"].get("eos")]
        assert bulk["attrs"]["chunks"] == len(chunks)
        assert all(c["parent"] == bulk["id"] for c in by_name["serve.chunk"])
        assert sum(c["attrs"]["size"] for c in chunks) == 20

    def test_bdrmapit_rounds_traced(self):
        context = self._context()
        context.timeline
        context.tracer.close()
        by_name = _by_name(context.tracer.records)
        annotate = by_name["bdrmapit.annotate"][0]
        assert annotate["attrs"]["rounds"] == 1
        assert by_name["bdrmapit.round"][0]["parent"] == annotate["id"]
