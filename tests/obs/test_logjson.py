"""Unit tests for the structured JSON line logger."""

import io
import json
import time

import pytest

from repro.obs.logjson import (
    NULL_LOG,
    JsonLogger,
    new_request_id,
    open_json_logger,
)


def lines_of(stream: io.StringIO):
    return [json.loads(line) for line in
            stream.getvalue().splitlines()]


class TestSynchronousLogger:
    def test_record_shape_and_key_order(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, worker_id=2,
                            clock=lambda: 123.4567891)
        logger.log("reload_failed", level="error", path="/tmp/x",
                   error="boom")
        (record,) = lines_of(stream)
        assert record == {"event": "reload_failed", "ts": 123.456789,
                          "level": "error", "worker_id": 2,
                          "path": "/tmp/x", "error": "boom"}
        # Stable key order: event first, then envelope, then attrs.
        assert list(record) == ["event", "ts", "level", "worker_id",
                                "path", "error"]

    def test_default_level_is_info_and_none_worker(self):
        stream = io.StringIO()
        JsonLogger(stream=stream).log("started")
        (record,) = lines_of(stream)
        assert record["level"] == "info"
        assert record["worker_id"] is None

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            JsonLogger(stream=io.StringIO()).log("x", level="fatal")

    def test_unserialisable_attr_degrades_to_str(self):
        stream = io.StringIO()
        JsonLogger(stream=stream).log("oops", error=ValueError("bad"))
        (record,) = lines_of(stream)
        assert record["error"] == "bad"

    def test_every_write_is_a_whole_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        for index in range(5):
            logger.log("tick", n=index)
        raw = stream.getvalue()
        assert raw.endswith("\n")
        assert [json.loads(line)["n"] for line in raw.splitlines()] \
            == [0, 1, 2, 3, 4]

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        stream.close()
        logger.log("after_close")  # must not propagate ValueError

    def test_file_target_appends_binary_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = JsonLogger(path=str(path), worker_id=7)
        logger.log("a")
        logger.log("b")
        logger.close()
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["a", "b"]
        assert all(r["worker_id"] == 7 for r in records)

    def test_stream_and_path_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            JsonLogger(stream=io.StringIO(),
                       path=str(tmp_path / "x.jsonl"))


class TestBufferedLogger:
    def test_lines_come_out_on_close(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = JsonLogger(path=str(path), worker_id=1, buffered=True,
                            flush_seconds=3600.0, drain_batch=10 ** 6)
        for index in range(100):
            logger.log("access", n=index)
        logger.close()
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert [r["n"] for r in records] == list(range(100))
        assert all(r["worker_id"] == 1 for r in records)

    def test_flush_drains_synchronously(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = JsonLogger(path=str(path), buffered=True,
                            flush_seconds=3600.0, drain_batch=10 ** 6)
        logger.log("one")
        logger.flush()
        assert len(path.read_text().splitlines()) == 1
        logger.close()

    def test_drainer_flushes_without_help(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = JsonLogger(path=str(path), buffered=True,
                            flush_seconds=0.01)
        logger.log("one")
        deadline = time.time() + 2.0
        while time.time() < deadline:
            if path.exists() and path.read_text().endswith("\n"):
                break
            time.sleep(0.01)
        assert json.loads(path.read_text())["event"] == "one"
        logger.close()

    def test_overflow_drops_and_reports(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = JsonLogger(path=str(path), buffered=True,
                            flush_seconds=3600.0, buffer_records=10,
                            drain_batch=10 ** 6)
        for index in range(25):
            logger.log("access", n=index)
        assert logger.dropped == 15
        logger.close()
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert [r["n"] for r in records[:10]] == list(range(10))
        assert records[-1]["event"] == "log_dropped"
        assert records[-1]["dropped"] == 15
        assert records[-1]["level"] == "warning"

    def test_close_is_idempotent(self, tmp_path):
        logger = JsonLogger(path=str(tmp_path / "log.jsonl"),
                            buffered=True)
        logger.log("x")
        logger.close()
        logger.close()


class TestNullLogger:
    def test_null_log_accepts_and_discards(self):
        assert NULL_LOG.log("anything", level="error") == {}
        assert NULL_LOG.enabled is False

    def test_real_logger_reports_enabled(self):
        assert JsonLogger(stream=io.StringIO()).enabled is True


class TestOpenJsonLogger:
    def test_none_disables(self):
        assert open_json_logger(None) is NULL_LOG

    def test_dash_targets_stderr(self, capsys):
        logger = open_json_logger("-", worker_id=3)
        logger.log("hello")
        record = json.loads(capsys.readouterr().err.strip())
        assert record["event"] == "hello"
        assert record["worker_id"] == 3

    def test_path_appends_to_file(self, tmp_path):
        path = tmp_path / "access.jsonl"
        logger = open_json_logger(str(path), worker_id=0)
        logger.log("access")
        logger.close()
        assert json.loads(path.read_text())["event"] == "access"

    def test_buffered_flag_passes_through(self, tmp_path):
        logger = open_json_logger(str(tmp_path / "a.jsonl"),
                                  buffered=True)
        assert logger._pending is not None
        logger.close()


def test_new_request_id_shape_and_uniqueness():
    ids = {new_request_id() for _ in range(64)}
    assert len(ids) == 64
    for request_id in ids:
        assert len(request_id) == 16
        int(request_id, 16)  # hex
