"""The ``trace summary`` renderer: tree, tables, folding, round trips."""

from repro.obs.summary import render_summary
from repro.obs.trace import Tracer, load_trace


def _trace_with_learning():
    tracer = Tracer()
    with tracer.span("stage.learn") as stage:
        with tracer.span("learn.run", suffixes=2):
            with tracer.span("learn.suffix", suffix="slow.example",
                             items=40) as span:
                span.set(candidates=5, kept=2, match_calls=100,
                         vector_hits=60, hit_rate=0.6)
            with tracer.span("learn.suffix", suffix="fast.example",
                             items=3) as span:
                span.set(candidates=1, kept=0, match_calls=10,
                         vector_hits=2, hit_rate=0.2)
        stage.event("retry", site="learn", attempts=1,
                    error="ValueError")
        stage.event("pool-rebuild", site="learn", count=2)
    tracer.close()
    return tracer.export()


class TestTree:
    def test_header_counts_spans_and_roots(self):
        text = render_summary(_trace_with_learning())
        assert text.startswith("trace: 4 span(s), 1 root stage(s),")

    def test_nesting_is_indented(self):
        lines = render_summary(_trace_with_learning()).splitlines()
        stage = next(l for l in lines if l.startswith("stage.learn"))
        run = next(l for l in lines if l.lstrip().startswith("learn.run"))
        suffix = next(l for l in lines
                      if l.lstrip().startswith("learn.suffix"))
        assert len(run) - len(run.lstrip()) > \
            len(stage) - len(stage.lstrip())
        assert len(suffix) - len(suffix.lstrip()) > \
            len(run) - len(run.lstrip())

    def test_attr_highlights_inline(self):
        text = render_summary(_trace_with_learning())
        assert "suffix=slow.example" in text
        assert "hit_rate=0.600" in text

    def test_events_render_inline(self):
        text = render_summary(_trace_with_learning())
        assert "! retry @" in text
        assert "error=ValueError" in text

    def test_error_status_flagged(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise RuntimeError("bang")
        except RuntimeError:
            pass
        text = render_summary(tracer.export())
        assert "[ERROR: RuntimeError: bang]" in text
        assert "1 error(s)" in text

    def test_unknown_parent_renders_as_root(self):
        records = [{"id": "x", "parent": "never-seen", "name": "orphan",
                    "wall": 0.1, "cpu": 0.1, "status": "ok",
                    "attrs": {}, "events": []}]
        text = render_summary(records)
        assert "orphan" in text
        assert "1 root stage(s)" in text

    def test_depth_folding(self):
        tracer = Tracer()
        spans = [tracer.span("level%d" % i) for i in range(8)]
        for span in reversed(spans):
            span.finish()
        text = render_summary(tracer.export(), max_depth=3)
        assert "child span(s) folded" in text
        assert "level7" not in text

    def test_sibling_folding(self):
        tracer = Tracer()
        with tracer.span("parent"):
            for i in range(6):
                with tracer.span("kid%d" % i):
                    pass
        text = render_summary(tracer.export(), fold=4)
        assert "2 more sibling span(s)" in text
        assert "kid5" not in text

    def test_empty_trace(self):
        assert render_summary([]) == "trace is empty"


class TestTables:
    def test_slowest_suffixes_table(self):
        text = render_summary(_trace_with_learning(), top=1)
        assert "slowest suffixes (top 1 of 2)" in text

    def test_resilience_table_counts_events(self):
        lines = render_summary(_trace_with_learning()).splitlines()
        start = lines.index("resilience events")
        table = "\n".join(lines[start:start + 3])
        assert "retry" in table
        # pool-rebuild events carry count=2 in their attrs.
        assert "pool-rebuild         2" in table

    def test_cache_table_aggregates_suffix_spans(self):
        text = render_summary(_trace_with_learning())
        assert "match cache" in text
        assert "match_calls          110" in text
        assert "vector_hits          62" in text

    def test_store_table(self):
        tracer = Tracer()
        with tracer.span("store.get", kind="world", hit=True):
            pass
        with tracer.span("store.get", kind="world", hit=False):
            pass
        with tracer.span("store.put", kind="world"):
            pass
        text = render_summary(tracer.export())
        assert "artifact store" in text
        assert "world" in text
        row = next(l for l in text.splitlines()
                   if l.strip().startswith("world"))
        assert row.split() == ["world", "1", "1", "1"]


class TestRoundTrip:
    def test_file_round_trip_renders_identically(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = Tracer(path=path)
        with sink.span("stage.learn"):
            with sink.span("learn.suffix", suffix="a.example") as span:
                span.set(match_calls=4, vector_hits=1, hit_rate=0.25)
        sink.close()
        from_memory = render_summary(sink.export())
        from_file = render_summary(load_trace(path))
        assert from_file == from_memory
        assert "a.example" in from_file
