"""Run manifests: schema validation, stage aggregation, file round trips."""

import json
import os

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    TRACE_RECORD_SCHEMA,
    build_manifest,
    stage_durations,
    validate_manifest_file,
    validate_schema,
    validate_trace_file,
    write_manifest,
)
from repro.obs.trace import Tracer

SCHEMAS_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                           "docs", "schemas")


def _records():
    tracer = Tracer()
    with tracer.span("stage.world"):
        pass
    with tracer.span("stage.learn"):
        with tracer.span("learn.run"):
            pass
    with tracer.span("stage.learn"):  # repeated stage aggregates
        pass
    return tracer.export()


class TestValidateSchema:
    def test_accepts_valid_document(self):
        assert validate_schema({"a": 1}, {"type": "object"}) == []

    def test_type_mismatch(self):
        errors = validate_schema("nope", {"type": "object"})
        assert errors and "expected object" in errors[0]

    def test_type_list_accepts_any_member(self):
        schema = {"type": ["string", "null"]}
        assert validate_schema(None, schema) == []
        assert validate_schema("x", schema) == []
        assert validate_schema(3, schema)

    def test_missing_required_key(self):
        errors = validate_schema({}, {"type": "object",
                                      "required": ["name"]})
        assert any("missing required key 'name'" in e for e in errors)

    def test_nested_properties_report_paths(self):
        schema = {"type": "object",
                  "properties": {"inner": {"type": "integer"}}}
        errors = validate_schema({"inner": "x"}, schema)
        assert errors == ["$.inner: expected integer, got str"]

    def test_items_validate_each_element(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        errors = validate_schema([1, "two", 3], schema)
        assert len(errors) == 1
        assert "[1]" in errors[0]

    def test_enum(self):
        schema = {"enum": ["ok", "error"]}
        assert validate_schema("ok", schema) == []
        assert validate_schema("meh", schema)

    def test_bool_is_not_an_integer(self):
        assert validate_schema(True, {"type": "integer"})
        assert validate_schema(True, {"type": "boolean"}) == []


class TestStageDurations:
    def test_only_top_level_spans_count(self):
        rows = stage_durations(_records())
        assert [r["name"] for r in rows] == ["stage.world", "stage.learn"]

    def test_repeated_stages_aggregate(self):
        rows = stage_durations(_records())
        learn = rows[1]
        assert learn["spans"] == 2
        assert learn["wall"] >= 0.0

    def test_error_status_is_sticky(self):
        records = [
            {"parent": None, "name": "s", "wall": 1.0, "cpu": 1.0,
             "status": "error"},
            {"parent": None, "name": "s", "wall": 1.0, "cpu": 1.0,
             "status": "ok"},
        ]
        rows = stage_durations(records)
        assert rows[0]["status"] == "error"

    def test_chronological_order_preserved(self):
        records = [
            {"parent": None, "name": "b", "wall": 0.1, "cpu": 0.1,
             "status": "ok"},
            {"parent": None, "name": "a", "wall": 0.1, "cpu": 0.1,
             "status": "ok"},
        ]
        assert [r["name"] for r in stage_durations(records)] == ["b", "a"]


class TestManifest:
    def _manifest(self, trace_path=None):
        return build_manifest(fingerprint="abc123", seed=2020,
                              scale="tiny", records=_records(),
                              wall_seconds=1.5, metrics={"counters": {}},
                              trace_path=trace_path)

    def test_build_manifest_matches_schema(self):
        manifest = self._manifest()
        assert validate_schema(manifest, MANIFEST_SCHEMA) == []
        assert manifest["manifest_schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["versions"]["python"].count(".") == 2

    def test_write_and_validate_round_trip(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        write_manifest(path, self._manifest(trace_path="trace.jsonl"))
        assert validate_manifest_file(path) == []
        document = json.loads(open(path, encoding="utf-8").read())
        assert document["fingerprint"] == "abc123"
        assert document["trace"] == "trace.jsonl"

    def test_write_rejects_invalid_manifest(self, tmp_path):
        manifest = self._manifest()
        del manifest["fingerprint"]
        with pytest.raises(ValueError, match="fingerprint"):
            write_manifest(str(tmp_path / "m.json"), manifest)

    def test_validate_manifest_file_reports_errors(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"manifest_schema": "one"}', encoding="utf-8")
        errors = validate_manifest_file(str(path))
        assert errors


class TestTraceValidation:
    def test_real_trace_file_validates(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path)
        with tracer.span("outer", k=1) as span:
            span.event("tick")
        tracer.close()
        assert validate_trace_file(path) == []

    def test_malformed_record_is_reported_with_index(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"id": "a"}\n', encoding="utf-8")
        errors = validate_trace_file(str(path))
        assert errors
        assert all(e.startswith("record 1:") for e in errors)


class TestSchemaFilesInSync:
    """The checked-in docs/schemas/*.json must mirror the code constants
    exactly -- CI validates artifacts against the files, the library
    validates against the constants, and they must not drift."""

    def test_manifest_schema_file(self):
        path = os.path.join(SCHEMAS_DIR, "manifest.schema.json")
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == MANIFEST_SCHEMA

    def test_trace_schema_file(self):
        path = os.path.join(SCHEMAS_DIR, "trace.schema.json")
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == TRACE_RECORD_SCHEMA
