"""Prometheus text exposition of metrics snapshots."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import to_prometheus


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("requests").inc(10)
    registry.labelled("by_suffix").inc("example.com", 3)
    hist = registry.histogram("latency_seconds", bounds=(0.001, 0.01))
    hist.observe(0.0005)
    hist.observe(0.005)
    hist.observe(5.0)  # overflow
    return registry.snapshot()


class TestExposition:
    def test_counter_lines(self):
        text = to_prometheus(_snapshot())
        assert "# TYPE repro_requests counter" in text
        assert "\nrepro_requests 10\n" in text

    def test_labelled_counter_lines(self):
        text = to_prometheus(_snapshot())
        assert 'repro_by_suffix{label="example.com"} 3' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        lines = to_prometheus(_snapshot()).splitlines()
        bucket_lines = [l for l in lines
                        if l.startswith("repro_latency_seconds_bucket")]
        assert bucket_lines == [
            'repro_latency_seconds_bucket{le="0.001"} 1',
            'repro_latency_seconds_bucket{le="0.01"} 2',
            'repro_latency_seconds_bucket{le="+Inf"} 3',
        ]
        assert "repro_latency_seconds_count 3" in lines
        assert any(l.startswith("repro_latency_seconds_sum ")
                   for l in lines)

    def test_type_line_precedes_samples(self):
        lines = to_prometheus(_snapshot()).splitlines()
        type_index = lines.index("# TYPE repro_latency_seconds histogram")
        sample_index = next(
            i for i, l in enumerate(lines)
            if l.startswith("repro_latency_seconds_bucket"))
        assert type_index < sample_index

    def test_name_sanitisation(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.v2").inc()
        text = to_prometheus(registry.snapshot())
        assert "repro_weird_name_v2 1" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.labelled("family").inc('a"b\\c\nd')
        text = to_prometheus(registry.snapshot())
        assert 'label="a\\"b\\\\c\\nd"' in text

    def test_custom_namespace_and_label_key(self):
        registry = MetricsRegistry()
        registry.labelled("hits").inc("world")
        text = to_prometheus(registry.snapshot(), namespace="hoiho",
                             label_key="kind")
        assert 'hoiho_hits{kind="world"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""

    def test_output_ends_with_newline(self):
        assert to_prometheus(_snapshot()).endswith("\n")
