"""Unit tests for deterministic random substreams."""

import pytest

from repro.util.rand import choice_weighted, substream


class TestSubstream:
    def test_reproducible(self):
        assert substream(42, "x").random() == substream(42, "x").random()

    def test_label_independence(self):
        a = substream(42, "naming")
        b = substream(42, "routing")
        assert a.random() != b.random()

    def test_seed_independence(self):
        assert substream(1, "x").random() != substream(2, "x").random()

    def test_multiple_labels(self):
        a = substream(7, "a", 1)
        b = substream(7, "a", 2)
        assert a.random() != b.random()

    def test_label_types(self):
        # Labels of different types hash distinctly.
        assert substream(7, 1).random() != substream(7, "1").random()


class TestChoiceWeighted:
    def test_deterministic(self):
        rng_a = substream(3, "w")
        rng_b = substream(3, "w")
        table = {"x": 1.0, "y": 2.0}
        assert choice_weighted(rng_a, table) == choice_weighted(rng_b, table)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            choice_weighted(substream(1, "z"), {"a": 0.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            choice_weighted(substream(1, "z"), {})

    def test_single_choice(self):
        assert choice_weighted(substream(1, "s"), {"only": 0.5}) == "only"

    def test_distribution_roughly_follows_weights(self):
        rng = substream(9, "dist")
        table = {"a": 3.0, "b": 1.0}
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[choice_weighted(rng, table)] += 1
        share = counts["a"] / 4000
        assert 0.70 < share < 0.80

    def test_zero_weight_key_never_chosen(self):
        rng = substream(9, "zero")
        table = {"a": 0.0, "b": 1.0}
        assert all(choice_weighted(rng, table) == "b" for _ in range(100))
