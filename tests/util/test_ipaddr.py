"""Unit tests for repro.util.ipaddr."""

import pytest

from repro.util.ipaddr import (
    IPv4Prefix,
    embedded_ip_spans,
    int_to_ip,
    ip_to_int,
)


class TestIpConversion:
    def test_round_trip(self):
        for text in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "4.68.0.17"):
            assert int_to_ip(ip_to_int(text)) == text

    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1

    def test_bad_octet(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")

    def test_not_a_quad(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.0.1")

    def test_non_numeric(self):
        with pytest.raises(ValueError):
            ip_to_int("a.b.c.d")

    def test_int_to_ip_range(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestIPv4Prefix:
    def test_parse_and_str(self):
        prefix = IPv4Prefix.parse("10.1.0.0/16")
        assert str(prefix) == "10.1.0.0/16"
        assert prefix.length == 16
        assert prefix.size == 65536

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            IPv4Prefix.parse("10.1.0.1/16")

    def test_missing_length(self):
        with pytest.raises(ValueError):
            IPv4Prefix.parse("10.1.0.0")

    def test_bad_length(self):
        with pytest.raises(ValueError):
            IPv4Prefix(0, 33)

    def test_contains(self):
        prefix = IPv4Prefix.parse("10.1.0.0/16")
        assert prefix.contains(ip_to_int("10.1.2.3"))
        assert not prefix.contains(ip_to_int("10.2.0.0"))

    def test_contains_prefix(self):
        outer = IPv4Prefix.parse("10.0.0.0/8")
        inner = IPv4Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_subnets(self):
        prefix = IPv4Prefix.parse("10.0.0.0/30")
        subs = list(prefix.subnets(31))
        assert [str(s) for s in subs] == ["10.0.0.0/31", "10.0.0.2/31"]

    def test_subnets_cannot_widen(self):
        with pytest.raises(ValueError):
            list(IPv4Prefix.parse("10.0.0.0/24").subnets(16))

    def test_host(self):
        prefix = IPv4Prefix.parse("10.0.0.0/31")
        assert int_to_ip(prefix.host(0)) == "10.0.0.0"
        assert int_to_ip(prefix.host(1)) == "10.0.0.1"
        with pytest.raises(ValueError):
            prefix.host(2)

    def test_zero_length_prefix(self):
        default = IPv4Prefix(0, 0)
        assert default.contains(ip_to_int("192.0.2.1"))
        assert default.mask == 0

    def test_addresses_iterates_all(self):
        prefix = IPv4Prefix.parse("10.0.0.4/30")
        assert len(list(prefix.addresses())) == 4

    def test_ordering(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("11.0.0.0/8")
        assert a < b


class TestEmbeddedIpSpans:
    def test_dashed_quad(self):
        spans = embedded_ip_spans("209-201-58-109.dia.example.net")
        assert spans == [(0, 14)]

    def test_dotted_quad_prefix(self):
        # Figure 3b: 50-236-216-122-static style.
        spans = embedded_ip_spans(
            "50-236-216-122-static.hfc.example.net")
        assert spans and spans[0][0] == 0

    def test_no_ip(self):
        assert embedded_ip_spans("p24115.mel.equinix.com") == []

    def test_needs_four_octets(self):
        assert embedded_ip_spans("10-20-30.example.net") == []

    def test_octet_range_check(self):
        # 300 is not a valid octet, so no span.
        assert embedded_ip_spans("300-20-30-40.example.net") == []

    def test_mixed_separators_rejected(self):
        assert embedded_ip_spans("10-20.30-40.example.net") == []

    def test_known_address_concatenated(self):
        spans = embedded_ip_spans("host050236216122.example.net",
                                  address="50.236.216.122")
        assert spans == [(4, 16)]

    def test_known_address_reversed(self):
        spans = embedded_ip_spans("122-216-236-50.rev.example.net",
                                  address="50.236.216.122")
        assert spans and spans[0] == (0, 14)

    def test_spans_merge(self):
        # Two detections of the same region collapse to one span.
        spans = embedded_ip_spans("1-2-3-4.example.net", address="1.2.3.4")
        assert spans == [(0, 7)]

    def test_centurylink_example(self):
        # The exact hostname from figure 3b.
        spans = embedded_ip_spans("209-201-58-109.dia.stat.centurylink.net")
        assert spans == [(0, 14)]
