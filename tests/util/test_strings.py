"""Unit tests for repro.util.strings."""

import pytest

from repro.util.strings import (
    DigitRun,
    common_prefix_len,
    common_suffix_len,
    damerau_levenshtein,
    digit_runs,
    is_punct,
    iter_subruns,
    split_segments,
)


class TestDigitRuns:
    def test_single_run(self):
        runs = digit_runs("p24115.mel")
        assert [(r.start, r.end, r.text) for r in runs] == [(1, 6, "24115")]

    def test_multiple_runs(self):
        runs = digit_runs("te-4-0-0-85.53w")
        assert [r.text for r in runs] == ["4", "0", "0", "85", "53"]

    def test_no_digits(self):
        assert digit_runs("alter.net") == []

    def test_all_digits(self):
        runs = digit_runs("12345")
        assert len(runs) == 1
        assert runs[0].text == "12345"
        assert runs[0].start == 0
        assert runs[0].end == 5

    def test_empty_string(self):
        assert digit_runs("") == []

    def test_value_and_len(self):
        run = digit_runs("as064")[0]
        assert run.value == 64
        assert len(run) == 3

    def test_runs_are_maximal(self):
        runs = digit_runs("1a2b34")
        assert [r.text for r in runs] == ["1", "2", "34"]


class TestIterSubruns:
    def test_longest_first(self):
        run = DigitRun(0, 4, "1234")
        texts = [r.text for r in iter_subruns(run, min_len=3)]
        assert texts == ["1234", "123", "234"]

    def test_offsets_track_parent(self):
        run = DigitRun(5, 8, "987")
        subs = list(iter_subruns(run, min_len=2))
        assert (subs[1].start, subs[1].end, subs[1].text) == (5, 7, "98")


class TestDamerauLevenshtein:
    def test_identity(self):
        assert damerau_levenshtein("24115", "24115") == 0

    def test_transposition_is_one(self):
        # Figure 4 hostname h: 22822 vs training 22282.
        assert damerau_levenshtein("22822", "22282") == 1

    def test_deletion_is_one(self):
        # Figure 3a: 605 extracted vs training 6057.
        assert damerau_levenshtein("605", "6057") == 1

    def test_substitution_is_one(self):
        assert damerau_levenshtein("20940", "24940") == 1

    def test_insertion_is_one(self):
        assert damerau_levenshtein("1299", "12909") == 1

    def test_empty_strings(self):
        assert damerau_levenshtein("", "") == 0
        assert damerau_levenshtein("", "abc") == 3
        assert damerau_levenshtein("abc", "") == 3

    def test_unrelated(self):
        assert damerau_levenshtein("109", "714") == 3

    def test_figure3a_pairs(self):
        # Every figure-3a pair is at distance exactly one.
        pairs = [("201", "701"), ("85", "855"), ("605", "6057"),
                 ("24940", "20940"), ("202073", "205073"),
                 ("20732", "207032")]
        for extracted, training in pairs:
            assert damerau_levenshtein(extracted, training) == 1, \
                (extracted, training)

    def test_symmetric(self):
        assert damerau_levenshtein("12345", "13245") == \
            damerau_levenshtein("13245", "12345")


class TestSegments:
    def test_round_trip(self):
        text = "p24115.mel-ix"
        assert "".join(split_segments(text)) == text

    def test_alternation(self):
        tokens = split_segments("a.b-c")
        assert tokens == ["a", ".", "b", "-", "c"]

    def test_leading_punct(self):
        assert split_segments("-a") == ["", "-", "a"]

    def test_trailing_punct(self):
        assert split_segments("a.") == ["a", ".", ""]

    def test_empty(self):
        assert split_segments("") == [""]

    def test_is_punct(self):
        assert is_punct(".")
        assert is_punct("-")
        assert is_punct("_")
        assert not is_punct("a")
        assert not is_punct("1")


class TestCommonAffixes:
    def test_prefix(self):
        assert common_prefix_len(["as1299", "as209"]) == 2

    def test_prefix_empty_list(self):
        assert common_prefix_len([]) == 0

    def test_prefix_no_overlap(self):
        assert common_prefix_len(["abc", "xyz"]) == 0

    def test_suffix(self):
        assert common_suffix_len(["lon-ix", "fra-ix"]) == 3
