"""Unit tests for the radix trie."""

import pytest

from repro.util.ipaddr import IPv4Prefix, ip_to_int
from repro.util.radix import RadixTrie


class TestRadixTrie:
    def test_empty_lookup(self):
        trie = RadixTrie()
        assert trie.lookup(ip_to_int("10.0.0.1")) is None
        assert len(trie) == 0

    def test_longest_prefix_wins(self):
        trie = RadixTrie()
        trie.insert(IPv4Prefix.parse("10.0.0.0/8"), "eight")
        trie.insert(IPv4Prefix.parse("10.1.0.0/16"), "sixteen")
        trie.insert(IPv4Prefix.parse("10.1.2.0/24"), "twentyfour")
        assert trie.lookup(ip_to_int("10.1.2.3")) == "twentyfour"
        assert trie.lookup(ip_to_int("10.1.9.9")) == "sixteen"
        assert trie.lookup(ip_to_int("10.9.9.9")) == "eight"
        assert trie.lookup(ip_to_int("11.0.0.0")) is None

    def test_lookup_prefix_returns_prefix(self):
        trie = RadixTrie()
        prefix = IPv4Prefix.parse("10.1.0.0/16")
        trie.insert(prefix, "value")
        hit = trie.lookup_prefix(ip_to_int("10.1.2.3"))
        assert hit == (prefix, "value")

    def test_replace_value(self):
        trie = RadixTrie()
        prefix = IPv4Prefix.parse("10.0.0.0/8")
        trie.insert(prefix, "old")
        trie.insert(prefix, "new")
        assert trie.lookup(ip_to_int("10.0.0.1")) == "new"
        assert len(trie) == 1

    def test_default_route(self):
        trie = RadixTrie()
        trie.insert(IPv4Prefix(0, 0), "default")
        assert trie.lookup(ip_to_int("192.0.2.1")) == "default"

    def test_host_route(self):
        trie = RadixTrie()
        address = ip_to_int("10.0.0.1")
        trie.insert(IPv4Prefix(address, 32), "host")
        assert trie.lookup(address) == "host"
        assert trie.lookup(address + 1) is None

    def test_exact(self):
        trie = RadixTrie()
        trie.insert(IPv4Prefix.parse("10.0.0.0/8"), "v")
        assert trie.exact(IPv4Prefix.parse("10.0.0.0/8")) == "v"
        assert trie.exact(IPv4Prefix.parse("10.0.0.0/9")) is None
        assert trie.exact(IPv4Prefix.parse("11.0.0.0/8")) is None

    def test_items_round_trip(self):
        trie = RadixTrie()
        prefixes = [IPv4Prefix.parse(p) for p in
                    ("10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24",
                     "0.0.0.0/0")]
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        collected = dict(trie.items())
        assert collected == {p: i for i, p in enumerate(prefixes)}

    def test_adjacent_slash31(self):
        trie = RadixTrie()
        trie.insert(IPv4Prefix.parse("10.0.0.0/31"), "a")
        trie.insert(IPv4Prefix.parse("10.0.0.2/31"), "b")
        assert trie.lookup(ip_to_int("10.0.0.1")) == "a"
        assert trie.lookup(ip_to_int("10.0.0.2")) == "b"
        assert trie.lookup(ip_to_int("10.0.0.4")) is None
