"""Unit tests for the persistent content-addressed artifact store."""

import dataclasses
import json

import pytest

from repro.core.hoiho import HoihoConfig
from repro.store import (
    KIND_HOIHO,
    KIND_SUFFIX,
    KIND_TIMELINE,
    KIND_WORLD,
    KINDS,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    fingerprint,
)
from repro.topology.world import WorldConfig


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


class TestFingerprint:
    def test_deterministic(self):
        payload = {"kind": "world", "seed": 7, "config": WorldConfig.tiny()}
        assert fingerprint(payload) == fingerprint(payload)

    def test_sensitive_to_every_field(self):
        base = {"kind": "world", "seed": 7, "config": WorldConfig.tiny()}
        assert fingerprint(base) != fingerprint({**base, "seed": 8})
        assert fingerprint(base) != fingerprint({**base, "kind": "timeline"})
        assert fingerprint(base) != fingerprint(
            {**base, "config": WorldConfig.small()})

    def test_dataclass_field_change_invalidates(self):
        config = WorldConfig.tiny()
        changed = WorldConfig(asgraph=dataclasses.replace(
            config.asgraph, n_stub=config.asgraph.n_stub + 1))
        assert fingerprint({"config": config}) \
            != fingerprint({"config": changed})

    def test_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_containers_canonicalised(self):
        assert fingerprint({"x": (1, 2)}) == fingerprint({"x": [1, 2]})
        assert fingerprint({"x": {2, 1}}) == fingerprint({"x": [1, 2]})

    def test_schema_version_is_part_of_the_key(self, monkeypatch):
        payload = {"kind": "world", "seed": 7}
        before = fingerprint(payload)
        monkeypatch.setattr("repro.store.STORE_SCHEMA_VERSION",
                            STORE_SCHEMA_VERSION + 1)
        assert fingerprint(payload) != before

    def test_payload_schema_key_does_not_mask_version(self, monkeypatch):
        # Regression: a payload key named "schema" used to overwrite
        # the store schema version in the fingerprint envelope, so a
        # version bump failed to invalidate exactly those entries.
        payload = {"schema": 123, "seed": 7}
        before = fingerprint(payload)
        monkeypatch.setattr("repro.store.STORE_SCHEMA_VERSION",
                            STORE_SCHEMA_VERSION + 1)
        assert fingerprint(payload) != before

    def test_payload_schema_key_is_distinct(self):
        # ...and the "schema" entry itself still contributes.
        assert fingerprint({"schema": 1}) != fingerprint({"schema": 2})
        assert fingerprint({"schema": STORE_SCHEMA_VERSION}) \
            != fingerprint({})

    def test_mixed_type_keys_fingerprint(self):
        # Regression: sorted(value.items()) raised TypeError on
        # mixed-type dict keys.
        payload = {"m": {1: "a", "z": "b", None: "c", 2.5: "d"}}
        assert fingerprint(payload) == fingerprint(payload)

    def test_int_and_str_keys_do_not_alias(self):
        # Regression: str(key) canonicalisation made {1: x} and
        # {"1": x} share a fingerprint (two configs, one cache slot).
        assert fingerprint({"m": {1: "x"}}) != fingerprint({"m": {"1": "x"}})
        assert fingerprint({"m": {True: "x"}}) \
            != fingerprint({"m": {1: "x"}})
        assert fingerprint({"m": {None: "x"}}) \
            != fingerprint({"m": {"None": "x"}})


class TestStoreRoundTrip:
    def test_miss_then_hit(self, store):
        payload = {"kind": "world", "seed": 1}
        assert store.get(KIND_WORLD, payload) is None
        store.put(KIND_WORLD, payload, {"artifact": [1, 2, 3]})
        assert store.get(KIND_WORLD, payload) == {"artifact": [1, 2, 3]}
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.writes == 1

    def test_kinds_are_disjoint(self, store):
        payload = {"seed": 1}
        store.put(KIND_WORLD, payload, "a world")
        assert store.get(KIND_TIMELINE, payload) is None

    def test_config_change_misses(self, store):
        store.put(KIND_HOIHO, {"hoiho_config": HoihoConfig()}, "learned")
        changed = HoihoConfig(min_tp=4)
        assert store.get(KIND_HOIHO, {"hoiho_config": changed}) is None

    def test_corrupt_entry_reads_as_miss(self, store):
        payload = {"kind": "world", "seed": 1}
        path = store.put(KIND_WORLD, payload, "fine")
        path.write_bytes(b"not a pickle")
        assert store.get(KIND_WORLD, payload) is None

    def test_sidecar_records_payload(self, store):
        payload = {"kind": "world", "seed": 9}
        path = store.put(KIND_WORLD, payload, "artifact")
        sidecar = json.loads(path.with_suffix(".json").read_text())
        assert sidecar["schema"] == STORE_SCHEMA_VERSION
        # canonical payload keys carry their type tag ("s:" = str)
        assert sidecar["payload"]["s:seed"] == 9

    def test_contains(self, store):
        payload = {"seed": 2}
        assert not store.contains(KIND_WORLD, payload)
        store.put(KIND_WORLD, payload, "x")
        assert store.contains(KIND_WORLD, payload)


class TestStoreMaintenance:
    def test_info_and_clear(self, store):
        assert store.info()["entries"] == 0
        store.put(KIND_WORLD, {"seed": 1}, "a")
        store.put(KIND_TIMELINE, {"seed": 1}, "b")
        info = store.info()
        assert info["entries"] == 2
        assert info["bytes"] > 0
        assert store.clear() == 2
        assert store.info()["entries"] == 0
        assert store.entries() == []

    def test_info_reports_every_registered_namespace(self, store):
        # Regression: info() used to enumerate only the namespaces
        # that happened to have files on disk, so a new kind (or an
        # empty one) was invisible.  Every registered namespace must
        # appear, populated or not.
        store.put(KIND_WORLD, {"seed": 1}, "a")
        info = store.info()
        assert set(info["kinds"]) == set(KINDS)
        assert KIND_SUFFIX in info["kinds"]
        assert info["kinds"][KIND_SUFFIX] == {"entries": 0, "bytes": 0}
        assert info["kinds"][KIND_WORLD]["entries"] == 1

    def test_namespace_filtered_entries_and_clear(self, store):
        store.put(KIND_WORLD, {"seed": 1}, "a")
        store.put(KIND_SUFFIX, {"suffix": "x.com"}, "b")
        store.put(KIND_SUFFIX, {"suffix": "y.com"}, "c")
        assert len(store.entries()) == 3
        assert len(store.entries(KIND_SUFFIX)) == 2
        assert store.clear(KIND_SUFFIX) == 2
        # the other namespaces survive a filtered sweep
        assert len(store.entries()) == 1
        assert store.contains(KIND_WORLD, {"seed": 1})

    def test_unregistered_kind_is_rejected(self, store):
        # An unregistered namespace could never be reaped by
        # info/clear, so writing (or sweeping) one is a loud error.
        with pytest.raises(ValueError, match="unknown artifact namespace"):
            store.put("scratch", {"seed": 1}, "x")
        with pytest.raises(ValueError, match="unknown artifact namespace"):
            store.entries("scratch")
        with pytest.raises(ValueError, match="unknown artifact namespace"):
            store.clear("scratch")

    def test_stale_tmp_in_suffix_namespace_is_reaped(self, store):
        path = store.put(KIND_SUFFIX, {"suffix": "x.com"}, "fine")
        orphan = path.parent / ("e" * 64 + ".pkl.tmp.999")
        orphan.write_bytes(b"half a pickle")
        assert store.info()["stale_tmp"] == 1
        assert store.stale_tmp(KIND_SUFFIX) == [orphan]
        store.clear(KIND_SUFFIX)
        assert not orphan.exists()

    def test_info_on_missing_root(self, tmp_path):
        store = ArtifactStore(tmp_path / "never-created")
        assert store.info()["entries"] == 0
        assert store.clear() == 0


class TestStoreDurability:
    def test_sidecar_write_is_atomic(self, store, monkeypatch):
        # Regression: the sidecar used to be written in place, so a
        # crash mid-write left a truncated .json next to a valid .pkl.
        # Now the failed write must leave no sidecar (and no tmp) at
        # all -- the artifact itself is still durable.
        payload = {"seed": 5}
        store.put(KIND_WORLD, payload, "first")
        path = store.path_for(KIND_WORLD, payload)
        before = path.with_suffix(".json").read_text()

        def explode(*args, **kwargs):
            raise RuntimeError("disk full")
        monkeypatch.setattr("repro.store.json.dump", explode)
        with pytest.raises(RuntimeError):
            store.put(KIND_WORLD, payload, "second")
        # old sidecar intact, not truncated, and no tmp left behind
        assert path.with_suffix(".json").read_text() == before
        assert store.stale_tmp() == []
        # the pickle write succeeded before the sidecar exploded
        assert store.get(KIND_WORLD, payload) == "second"

    def test_pickle_write_failure_leaves_no_tmp(self, store, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("disk full")
        monkeypatch.setattr("repro.store.pickle.dump", explode)
        with pytest.raises(RuntimeError):
            store.put(KIND_WORLD, {"seed": 6}, "never lands")
        assert store.stale_tmp() == []
        assert not store.contains(KIND_WORLD, {"seed": 6})

    def test_stale_tmp_reported_and_reaped(self, store):
        # Regression: orphaned .tmp.<pid> files from a crashed writer
        # were invisible to info() and survived clear() forever.
        path = store.put(KIND_WORLD, {"seed": 7}, "fine")
        orphan = path.parent / ("f" * 64 + ".pkl.tmp.12345")
        orphan.write_bytes(b"half a pickle")
        info = store.info()
        assert info["stale_tmp"] == 1
        assert info["entries"] == 1  # orphans are not entries
        assert store.clear() == 1    # ...and do not count as removed
        assert not orphan.exists()
        assert store.stale_tmp() == []
