"""Unit tests for the RouterToAsAssignment baseline."""

import pytest

from repro.alias.midar import AliasResolution, InferredNode
from repro.asn.bgp import RouteTable
from repro.asn.relationships import ASRelationships
from repro.rtaa.rtaa import assign_asns
from repro.util.ipaddr import IPv4Prefix, ip_to_int


def _resolution(nodes):
    resolution = AliasResolution()
    for node_id, addresses in nodes.items():
        node = InferredNode(node_id=node_id,
                            addresses=[ip_to_int(a) for a in addresses])
        resolution.nodes[node_id] = node
        for address in node.addresses:
            resolution.node_of_address[address] = node_id
    return resolution


@pytest.fixture
def table():
    t = RouteTable()
    t.announce(IPv4Prefix.parse("10.0.0.0/8"), 3356)     # provider
    t.announce(IPv4Prefix.parse("20.0.0.0/8"), 64500)    # customer
    t.add_ixp_prefix(IPv4Prefix.parse("206.0.0.0/24"))
    return t


class TestElection:
    def test_majority_wins(self, table):
        resolution = _resolution(
            {"N1": ["10.0.0.1", "10.0.0.5", "20.0.0.1"]})
        assert assign_asns(resolution, table)["N1"] == 3356

    def test_tie_breaks_by_degree(self, table):
        rels = ASRelationships()
        rels.add_p2c(3356, 64500)
        rels.add_p2c(3356, 64501)
        # 3356 has degree 2, 64500 degree 1: tie goes to 64500.
        resolution = _resolution({"N1": ["10.0.0.1", "20.0.0.1"]})
        assert assign_asns(resolution, table, rels)["N1"] == 64500

    def test_tie_without_relationships_uses_lower_asn(self, table):
        resolution = _resolution({"N1": ["10.0.0.1", "20.0.0.1"]})
        assert assign_asns(resolution, table)["N1"] == 3356

    def test_ixp_addresses_ignored(self, table):
        resolution = _resolution({"N1": ["206.0.0.1", "20.0.0.1"]})
        assert assign_asns(resolution, table)["N1"] == 64500

    def test_unrouted_only_node_unannotated(self, table):
        resolution = _resolution({"N1": ["203.0.113.1"]})
        assert "N1" not in assign_asns(resolution, table)

    def test_all_nodes_processed(self, table):
        resolution = _resolution({"N1": ["10.0.0.1"],
                                  "N2": ["20.0.0.1"]})
        annotations = assign_asns(resolution, table)
        assert annotations == {"N1": 3356, "N2": 64500}

    def test_single_interface_stub_border_error_mode(self, table):
        """The systematic RTAA error the paper describes: a customer
        border router observed only through the provider-supplied
        address is annotated with the provider."""
        resolution = _resolution({"N1": ["10.0.0.9"]})   # provider space
        assert assign_asns(resolution, table)["N1"] == 3356
