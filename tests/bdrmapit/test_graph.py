"""Unit tests for router-graph state construction."""

import pytest

from repro.alias.midar import AliasResolution, InferredNode
from repro.asn.bgp import RouteTable
from repro.bdrmapit.graph import build_router_graph
from repro.traceroute.probe import Trace
from repro.util.ipaddr import IPv4Prefix, ip_to_int


def _resolution(nodes):
    resolution = AliasResolution()
    for node_id, addresses in nodes.items():
        node = InferredNode(node_id=node_id,
                            addresses=[ip_to_int(a) for a in addresses])
        resolution.nodes[node_id] = node
        for address in node.addresses:
            resolution.node_of_address[address] = node_id
    return resolution


@pytest.fixture
def scenario():
    """Provider 3356 (10/8) supplies 10.0.1.0/31 to customer 64500
    (20/8).  One trace crosses pR -> cB -> cI -> dest."""
    table = RouteTable()
    table.announce(IPv4Prefix.parse("10.0.0.0/8"), 3356)
    table.announce(IPv4Prefix.parse("20.0.0.0/8"), 64500)
    resolution = _resolution({
        "pR": ["10.0.0.1"],                    # provider core
        "cB": ["10.0.1.1", "20.0.0.1"],        # customer border (far side)
        "cI": ["20.0.0.5"],                    # customer internal
    })
    trace = Trace(vp_asn=1, dst_address=ip_to_int("20.0.9.9"),
                  dst_asn=64500,
                  hops=[ip_to_int("10.0.0.1"), ip_to_int("10.0.1.1"),
                        ip_to_int("20.0.0.5"), ip_to_int("20.0.9.9")],
                  reached=True)
    graph = build_router_graph(resolution, [trace], table)
    return graph, table


class TestGraphState:
    def test_origins(self, scenario):
        graph, table = scenario
        assert dict(graph.state("cB").origins) == {3356: 1, 64500: 1}
        assert dict(graph.state("pR").origins) == {3356: 1}

    def test_subsequent_interfaces(self, scenario):
        graph, _ = scenario
        assert set(graph.state("pR").subsequent_ifaces) == \
            {ip_to_int("10.0.1.1")}
        assert set(graph.state("cB").subsequent_ifaces) == \
            {ip_to_int("20.0.0.5")}

    def test_destination_sets(self, scenario):
        graph, _ = scenario
        for node_id in ("pR", "cB", "cI"):
            assert graph.state(node_id).dest_asns() == {64500}

    def test_last_hop_tracking(self, scenario):
        graph, _ = scenario
        # The destination host became its own implicit last node; cI is
        # not last.  Destination address has no node here, so cI is last
        # among *known* nodes only if the dest hop is unmapped.
        state = graph.state("cI")
        assert sum(state.last_hop_dests.values()) in (0, 1)

    def test_subsequent_asns(self, scenario):
        graph, table = scenario
        assert graph.state("cB").subsequent_asns(table) == {64500}
        assert graph.state("pR").subsequent_asns(table) == {3356}

    def test_consecutive_same_node_collapses(self):
        table = RouteTable()
        table.announce(IPv4Prefix.parse("10.0.0.0/8"), 3356)
        resolution = _resolution({"N": ["10.0.0.1", "10.0.0.2"]})
        trace = Trace(vp_asn=1, dst_address=ip_to_int("10.9.9.9"),
                      dst_asn=3356,
                      hops=[ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2")])
        graph = build_router_graph(resolution, [trace], table)
        assert not graph.state("N").subsequent_ifaces

    def test_mate_detection(self):
        """A subsequent address in the same /30 as an own address is a
        link mate."""
        table = RouteTable()
        table.announce(IPv4Prefix.parse("10.0.0.0/8"), 3356)
        resolution = _resolution({
            "A": ["10.0.1.0"],      # near side of the /31
            "B": ["10.0.1.1"],      # far side (mate)
        })
        trace = Trace(vp_asn=1, dst_address=ip_to_int("10.9.9.9"),
                      dst_asn=3356,
                      hops=[ip_to_int("10.0.1.0"), ip_to_int("10.0.1.1")])
        graph = build_router_graph(resolution, [trace], table)
        assert ip_to_int("10.0.1.1") in graph.state("A").mates

    def test_no_mate_across_subnets(self, scenario):
        graph, _ = scenario
        assert not graph.state("cB").mates

    def test_anonymous_hops_skipped(self):
        table = RouteTable()
        table.announce(IPv4Prefix.parse("10.0.0.0/8"), 3356)
        table.announce(IPv4Prefix.parse("20.0.0.0/8"), 64500)
        resolution = _resolution({"A": ["10.0.0.1"], "B": ["20.0.0.1"]})
        trace = Trace(vp_asn=1, dst_address=ip_to_int("20.9.9.9"),
                      dst_asn=64500,
                      hops=[ip_to_int("10.0.0.1"), None,
                            ip_to_int("20.0.0.1")])
        graph = build_router_graph(resolution, [trace], table)
        # The anonymous hop is invisible: A's subsequent is B's address.
        assert set(graph.state("A").subsequent_ifaces) == \
            {ip_to_int("20.0.0.1")}
