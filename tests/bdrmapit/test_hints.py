"""Unit tests for the section-5 modification (extraction hints)."""

import pytest

from repro.alias.midar import AliasResolution, InferredNode
from repro.asn.bgp import RouteTable
from repro.asn.org import ASOrgMap
from repro.asn.relationships import ASRelationships
from repro.bdrmapit.graph import build_router_graph
from repro.bdrmapit.hints import (
    ExtractionHint,
    apply_hints,
    hints_from_conventions,
)
from repro.bdrmapit.metrics import agreement_metrics
from repro.core.evaluate import NCScore
from repro.core.regex_model import Regex
from repro.core.select import LearnedConvention, NCClass
from repro.itdk.snapshot import ITDKSnapshot
from repro.traceroute.probe import Trace
from repro.util.ipaddr import IPv4Prefix, ip_to_int

P, C, OTHER = 3356, 64500, 8888


def _setup(traces):
    table = RouteTable()
    table.announce(IPv4Prefix.parse("10.0.0.0/8"), P)
    table.announce(IPv4Prefix.parse("20.0.0.0/8"), C)
    table.announce(IPv4Prefix.parse("80.0.0.0/8"), OTHER)
    resolution = AliasResolution()
    for node_id, addresses in {
            "cB": ["10.0.1.1"], "cI": ["20.0.0.5"]}.items():
        node = InferredNode(node_id=node_id,
                            addresses=[ip_to_int(a) for a in addresses])
        resolution.nodes[node_id] = node
        for address in node.addresses:
            resolution.node_of_address[address] = node_id
    graph = build_router_graph(resolution, traces, table)
    rels = ASRelationships()
    rels.add_p2c(P, C)
    return graph, rels


def _hint(extracted, nc_class=NCClass.GOOD, node_id="cB",
          address="10.0.1.1"):
    return ExtractionHint(node_id=node_id, address=ip_to_int(address),
                          hostname="h.example.net", suffix="example.net",
                          extracted_asn=extracted, nc_class=nc_class)


def _forward_trace():
    return Trace(vp_asn=1, dst_address=ip_to_int("20.9.9.9"), dst_asn=C,
                 hops=[ip_to_int("10.0.1.1"), ip_to_int("20.0.0.5"),
                       ip_to_int("20.9.9.9")], reached=True)


class TestApplyHints:
    def test_correct_hostname_overrides_wrong_inference(self):
        graph, rels = _setup([_forward_trace()])
        # Pretend bdrmapIT wrongly said P for the customer border.
        annotations = {"cB": P, "cI": C}
        outcome = apply_hints(graph, annotations, [_hint(C)], rels)
        assert outcome.annotations["cB"] == C
        decision = outcome.decisions[0]
        assert decision.used
        assert not decision.congruent

    def test_stale_hostname_rejected(self):
        graph, rels = _setup([_forward_trace()])
        annotations = {"cB": C, "cI": C}
        # OTHER appears nowhere in cB's subsequent/dest sets.
        outcome = apply_hints(graph, annotations, [_hint(OTHER)], rels)
        assert outcome.annotations["cB"] == C
        assert not outcome.decisions[0].used

    def test_congruent_hint_untouched(self):
        graph, rels = _setup([_forward_trace()])
        annotations = {"cB": C}
        outcome = apply_hints(graph, annotations, [_hint(C)], rels)
        assert outcome.decisions[0].congruent
        assert not outcome.decisions[0].used
        assert outcome.annotations["cB"] == C

    def test_sibling_of_constraint_is_reasonable(self):
        graph, rels = _setup([_forward_trace()])
        orgs = ASOrgMap()
        orgs.assign(C, "org-c")
        orgs.assign(OTHER, "org-c")     # OTHER is C's sibling
        annotations = {"cB": P}
        outcome = apply_hints(graph, annotations, [_hint(OTHER)], rels,
                              orgs)
        assert outcome.annotations["cB"] == OTHER

    def test_provider_of_constraint_is_reasonable(self):
        graph, rels = _setup([_forward_trace()])
        # Extracted P: P is a provider of C which is in the dest set.
        annotations = {"cB": OTHER}
        outcome = apply_hints(graph, annotations, [_hint(P)], rels)
        assert outcome.annotations["cB"] == P

    def test_majority_extraction_prefers_good_class(self):
        graph, rels = _setup([_forward_trace()])
        annotations = {"cB": P}
        hints = [_hint(OTHER, NCClass.POOR), _hint(OTHER, NCClass.POOR),
                 _hint(C, NCClass.GOOD)]
        outcome = apply_hints(graph, annotations, hints, rels)
        # Class weighting cannot beat a 2:1 majority here, but the
        # chosen extraction must be deterministic; OTHER is unreasonable
        # so nothing changes; C alone would have been used.
        assert outcome.annotations["cB"] in (P, C)

    def test_used_rate_by_class(self):
        graph, rels = _setup([_forward_trace()])
        annotations = {"cB": P}
        outcome = apply_hints(graph, annotations,
                              [_hint(C, NCClass.GOOD)], rels)
        rates = outcome.used_rate_by_class()
        assert rates["good"] == (1, 1)


class TestHintsFromConventions:
    def test_extraction_flow(self):
        resolution = AliasResolution()
        node = InferredNode(node_id="N1",
                            addresses=[ip_to_int("10.0.1.1")])
        resolution.nodes["N1"] = node
        resolution.node_of_address[ip_to_int("10.0.1.1")] = "N1"
        snapshot = ITDKSnapshot(label="t", resolution=resolution)
        snapshot.hostnames[ip_to_int("10.0.1.1")] = "as64500.example.com"
        convention = LearnedConvention(
            suffix="example.com",
            regexes=(Regex.raw(r"^as(\d+)\.example\.com$"),),
            score=NCScore(tp=5), nc_class=NCClass.GOOD)
        hints = hints_from_conventions(snapshot,
                                       {"example.com": convention})
        assert len(hints) == 1
        assert hints[0].extracted_asn == 64500
        assert hints[0].node_id == "N1"

    def test_uncovered_suffix_skipped(self):
        resolution = AliasResolution()
        node = InferredNode(node_id="N1",
                            addresses=[ip_to_int("10.0.1.1")])
        resolution.nodes["N1"] = node
        resolution.node_of_address[ip_to_int("10.0.1.1")] = "N1"
        snapshot = ITDKSnapshot(label="t", resolution=resolution)
        snapshot.hostnames[ip_to_int("10.0.1.1")] = "as64500.other.com"
        assert hints_from_conventions(snapshot, {}) == []


class TestAgreementMetrics:
    def test_agreement(self):
        hints = [_hint(C, node_id="a"), _hint(OTHER, node_id="b")]
        metrics = agreement_metrics({"a": C, "b": C}, hints)
        assert metrics.agree == 1
        assert metrics.disagree == 1
        assert metrics.rate == 0.5
        assert metrics.error_ratio == 2.0

    def test_any_hint_matching_counts(self):
        hints = [_hint(OTHER, node_id="a"), _hint(C, node_id="a")]
        metrics = agreement_metrics({"a": C}, hints)
        assert metrics.agree == 1
        assert metrics.disagree == 0

    def test_sibling_agreement(self):
        orgs = ASOrgMap()
        orgs.assign(C, "o")
        orgs.assign(OTHER, "o")
        metrics = agreement_metrics({"a": C}, [_hint(OTHER, node_id="a")],
                                    orgs)
        assert metrics.agree == 1

    def test_unannotated_nodes_skipped(self):
        metrics = agreement_metrics({}, [_hint(C, node_id="a")])
        assert metrics.total == 0
        assert metrics.error_ratio is None
