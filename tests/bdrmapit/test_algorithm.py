"""Unit tests for the annotation heuristics."""

import pytest

from repro.alias.midar import AliasResolution, InferredNode
from repro.asn.bgp import RouteTable
from repro.asn.org import ASOrgMap
from repro.asn.relationships import ASRelationships
from repro.bdrmapit.algorithm import AnnotationConfig, annotate
from repro.bdrmapit.graph import build_router_graph
from repro.traceroute.probe import Trace
from repro.util.ipaddr import IPv4Prefix, ip_to_int


P, C, C2, PEER = 3356, 64500, 64501, 1299


def _resolution(nodes):
    resolution = AliasResolution()
    for node_id, addresses in nodes.items():
        node = InferredNode(node_id=node_id,
                            addresses=[ip_to_int(a) for a in addresses])
        resolution.nodes[node_id] = node
        for address in node.addresses:
            resolution.node_of_address[address] = node_id
    return resolution


def _table():
    table = RouteTable()
    table.announce(IPv4Prefix.parse("10.0.0.0/8"), P)
    table.announce(IPv4Prefix.parse("20.0.0.0/8"), C)
    table.announce(IPv4Prefix.parse("30.0.0.0/8"), C2)
    table.announce(IPv4Prefix.parse("40.0.0.0/8"), PEER)
    table.add_ixp_prefix(IPv4Prefix.parse("206.0.0.0/24"))
    return table


def _rels():
    rels = ASRelationships()
    rels.add_p2c(P, C)
    rels.add_p2c(P, C2)
    rels.add_p2p(P, PEER)
    return rels


def _trace(dst, dst_asn, *hops):
    return Trace(vp_asn=1, dst_address=ip_to_int(dst), dst_asn=dst_asn,
                 hops=[ip_to_int(h) for h in hops], reached=True)


def _annotate(nodes, traces, config=None):
    resolution = _resolution(nodes)
    graph = build_router_graph(resolution, traces, _table())
    return annotate(graph, _rels(), ASOrgMap(), config)


class TestVotes:
    def test_far_side_border_annotated_customer(self):
        """Figure 1: the customer's border answers with the
        provider-supplied address; subsequent votes say customer."""
        annotations = _annotate(
            {"cB": ["10.0.1.1"], "cI": ["20.0.0.5"]},
            [_trace("20.9.9.9", C, "10.0.1.1", "20.0.0.5", "20.9.9.9")])
        assert annotations["cB"] == C

    def test_provider_side_border_stays_provider(self):
        """The provider's own border sees its supplied far side (origin
        P), so it stays annotated P."""
        annotations = _annotate(
            {"pB": ["10.0.0.1"], "cB": ["10.0.1.1"], "cI": ["20.0.0.5"]},
            [_trace("20.9.9.9", C, "10.0.0.1", "10.0.1.1", "20.0.0.5",
                    "20.9.9.9")])
        assert annotations["pB"] == P
        assert annotations["cB"] == C

    def test_mate_vote_skipped(self):
        """With complete aliases, the far side of the node's own /31
        must not poison the vote (the reverse-direction hazard)."""
        annotations = _annotate(
            # cB holds both its provider-supplied address and its own.
            {"cB": ["10.0.1.1", "20.0.0.1"],
             "pB": ["10.0.1.0", "10.0.0.1"],
             "cI": ["20.0.0.5"]},
            [
                # Forward: into the customer.
                _trace("20.9.9.9", C, "10.0.1.1", "20.0.0.5", "20.9.9.9"),
                # Reverse: out of the customer towards the provider;
                # cB's subsequent is pB's 10.0.1.0 -- its own link mate.
                _trace("10.9.9.9", P, "20.0.0.5", "20.0.0.1", "10.0.1.0",
                       "10.9.9.9"),
            ])
        assert annotations["cB"] == C
        assert annotations["pB"] == P

    def test_unrelated_votes_fall_back_to_election(self):
        # Node with P-only origins whose votes point at an AS unrelated
        # to P is left at its election.
        rels = ASRelationships()   # no relationships at all
        resolution = _resolution({"n": ["10.0.0.1"], "x": ["40.0.0.1"]})
        graph = build_router_graph(
            resolution,
            [_trace("40.9.9.9", PEER, "10.0.0.1", "40.0.0.1", "40.9.9.9")],
            _table())
        annotations = annotate(graph, rels, ASOrgMap())
        assert annotations["n"] == P


class TestRelationshipElection:
    def test_multihomed_customer(self):
        """A border holding two provider-supplied addresses plus its own
        is annotated with the customer (every other origin supplies)."""
        rels = ASRelationships()
        rels.add_p2c(P, C)
        rels.add_p2c(PEER, C)   # PEER here acts as a second provider
        resolution = _resolution(
            {"cB": ["10.0.1.1", "40.0.1.1", "20.0.0.1"]})
        graph = build_router_graph(resolution, [], _table())
        annotations = annotate(graph, rels, ASOrgMap())
        assert annotations["cB"] == C

    def test_disabled_by_config(self):
        rels = ASRelationships()
        rels.add_p2c(P, C)
        rels.add_p2c(PEER, C)
        resolution = _resolution(
            {"cB": ["10.0.1.1", "40.0.1.1", "20.0.0.1"]})
        graph = build_router_graph(resolution, [], _table())
        config = AnnotationConfig(use_relationship_election=False,
                                  use_dest_heuristic=False)
        annotations = annotate(graph, rels, ASOrgMap(), config)
        # Plain election: all origins tie with one vote; min ASN wins.
        assert annotations["cB"] == min(P, C, PEER)


class TestDestHeuristic:
    def test_last_hop_customer_router(self):
        """A trace dying at the customer's border (provider address):
        the node is predominantly last, destinations are in C, C is a
        customer of the election result P -> annotate C."""
        annotations = _annotate(
            {"cB": ["10.0.1.1"]},
            [Trace(vp_asn=1, dst_address=ip_to_int("20.9.9.9"), dst_asn=C,
                   hops=[ip_to_int("10.0.1.1")])])
        assert annotations["cB"] == C

    def test_gate_blocks_transited_nodes(self):
        """A provider core router transited by many traces and last for
        one must keep the provider annotation."""
        transit = [_trace("20.9.9.9", C, "10.0.0.1", "10.0.1.1",
                          "20.0.0.5", "20.9.9.9")] * 3
        dying = [Trace(vp_asn=1, dst_address=ip_to_int("20.8.8.8"),
                       dst_asn=C, hops=[ip_to_int("10.0.0.1")])]
        annotations = _annotate(
            {"pR": ["10.0.0.1"], "cB": ["10.0.1.1"], "cI": ["20.0.0.5"]},
            transit + dying)
        assert annotations["pR"] == P

    def test_unrelated_dest_ignored(self):
        """Traces to a non-customer AS dying at a provider router leave
        the election in place."""
        annotations = _annotate(
            {"pR": ["10.0.0.1"]},
            [Trace(vp_asn=1, dst_address=ip_to_int("40.9.9.9"),
                   dst_asn=PEER, hops=[ip_to_int("10.0.0.1")])])
        assert annotations["pR"] == P

    def test_disabled_by_config(self):
        config = AnnotationConfig(use_dest_heuristic=False)
        annotations = _annotate(
            {"cB": ["10.0.1.1"]},
            [Trace(vp_asn=1, dst_address=ip_to_int("20.9.9.9"), dst_asn=C,
                   hops=[ip_to_int("10.0.1.1")])],
            config)
        assert annotations["cB"] == P


class TestElectionFallback:
    def test_pure_election(self):
        annotations = _annotate(
            {"n": ["20.0.0.1", "20.0.0.9", "10.0.0.1"]}, [])
        assert annotations["n"] == C

    def test_ixp_only_node_unannotated(self):
        annotations = _annotate({"n": ["206.0.0.5"]}, [])
        assert "n" not in annotations

    def test_siblings_accepted_in_votes(self):
        orgs = ASOrgMap()
        orgs.assign(P, "org-x")
        orgs.assign(C2, "org-x")   # C2 is P's sibling
        resolution = _resolution({"n": ["10.0.0.1"], "i": ["30.0.0.5"]})
        rels = ASRelationships()   # no relationship between P and C2
        graph = build_router_graph(
            resolution,
            [_trace("30.9.9.9", C2, "10.0.0.1", "30.0.0.5", "30.9.9.9")],
            _table())
        annotations = annotate(graph, rels, orgs)
        assert annotations["n"] == C2
