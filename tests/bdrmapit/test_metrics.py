"""Unit tests for the agreement/accuracy metrics."""

import pytest

from repro.alias.midar import AliasResolution, InferredNode
from repro.asn.org import ASOrgMap
from repro.bdrmapit.metrics import (
    AccuracyMetrics,
    AgreementMetrics,
    accuracy_against_truth,
)


def _resolution():
    resolution = AliasResolution()
    for node_id, truth in (("a", 10), ("b", 20), ("c", None)):
        node = InferredNode(node_id=node_id, addresses=[])
        if truth is not None:
            node.true_asns.add(truth)
        resolution.nodes[node_id] = node
    return resolution


class TestAgreementMetrics:
    def test_empty(self):
        metrics = AgreementMetrics()
        assert metrics.total == 0
        assert metrics.rate == 0.0
        assert metrics.error_ratio is None

    def test_describe(self):
        metrics = AgreementMetrics(agree=9, disagree=1)
        text = metrics.describe()
        assert "90.0%" in text
        assert "1/10.0" in text

    def test_describe_no_errors(self):
        metrics = AgreementMetrics(agree=5, disagree=0)
        assert "1/inf" in metrics.describe()


class TestAccuracyAgainstTruth:
    def test_basic(self):
        metrics = accuracy_against_truth({"a": 10, "b": 99},
                                         _resolution())
        assert metrics.correct == 1
        assert metrics.wrong == 1
        assert metrics.rate == 0.5
        assert metrics.error_ratio == 2.0

    def test_unknown_truth_counted_separately(self):
        metrics = accuracy_against_truth({"c": 5}, _resolution())
        assert metrics.total == 0
        assert metrics.unknown == 1

    def test_node_filter(self):
        metrics = accuracy_against_truth({"a": 10, "b": 99},
                                         _resolution(), nodes=["a"])
        assert metrics.total == 1
        assert metrics.correct == 1

    def test_sibling_credit(self):
        orgs = ASOrgMap()
        orgs.assign(10, "o")
        orgs.assign(11, "o")
        metrics = accuracy_against_truth({"a": 11}, _resolution(), orgs)
        assert metrics.correct == 1

    def test_missing_nodes_skipped(self):
        metrics = accuracy_against_truth({"zz": 1}, _resolution())
        assert metrics.total == 0

    def test_error_ratio_none_when_perfect(self):
        metrics = AccuracyMetrics(correct=5, wrong=0)
        assert metrics.error_ratio is None
