"""The paper's published examples behave exactly as the paper says."""

import pytest

from repro.core.congruence import Outcome, apparent_asn_runs, congruent
from repro.core.hoiho import learn_suffix
from repro.core.types import SuffixDataset, group_by_suffix
from repro.paperdata import (
    FIGURE2_ITEMS,
    FIGURE3A_PAIRS,
    FIGURE3B_ITEMS,
    FIGURE4_ITEMS,
    NC7_PATTERNS,
)
from repro.util.strings import damerau_levenshtein


class TestFigure2:
    def test_suffix_is_nts_ch(self):
        groups = group_by_suffix(FIGURE2_ITEMS)
        assert set(groups) == {"nts.ch"}

    def test_rejected_as_asn_convention(self):
        """Every hostname embeds the supplier's ASN: only one distinct
        extraction is possible, so no convention is learned."""
        dataset = group_by_suffix(FIGURE2_ITEMS)["nts.ch"]
        assert learn_suffix(dataset) is None

    def test_customers_have_apparent_supplier_asn(self):
        # The three customer rows contain 15576 as an apparent number
        # (the regex would extract it) but it is incongruent with the
        # customer training ASNs.
        for item in FIGURE2_ITEMS[3:]:
            assert "as15576" in item.hostname
            assert not congruent("15576", item.train_asn)


class TestFigure3a:
    def test_all_pairs_are_distance_one(self):
        for hostname, train_asn, number in FIGURE3A_PAIRS:
            assert damerau_levenshtein(number, str(train_asn)) == 1, \
                (number, train_asn)

    def test_guard_decides_each_pair(self):
        """The guarded rule accepts exactly the pairs with matching
        first/last digits and length >= 3."""
        expected = {
            "201": False,      # first digit differs (2 vs 7)
            "85": False,       # too short
            "605": False,      # last digit differs (5 vs 7)
            "24940": True,     # middle substitution
            "202073": True,    # middle substitution
            "20732": True,     # middle deletion, ends agree
        }
        for hostname, train_asn, number in FIGURE3A_PAIRS:
            assert congruent(number, train_asn) is expected[number], \
                (number, train_asn)


class TestFigure3b:
    def test_ip_octets_never_apparent(self):
        """IP-derived hostnames have no apparent ASNs despite octets
        numerically equal to the training ASN."""
        dataset = SuffixDataset("x.net", FIGURE3B_ITEMS)
        for index, item in enumerate(dataset.items):
            runs = apparent_asn_runs(item.hostname, item.train_asn,
                                     dataset.ip_spans(index))
            assert runs == [], item.hostname

    def test_no_convention(self):
        groups = group_by_suffix(FIGURE3B_ITEMS)
        for dataset in groups.values():
            assert learn_suffix(dataset) is None


class TestFigure4:
    def test_sixteen_items(self):
        assert len(FIGURE4_ITEMS) == 16

    def test_nc7_learned(self):
        dataset = group_by_suffix(FIGURE4_ITEMS)["equinix.com"]
        convention = learn_suffix(dataset)
        assert convention is not None
        assert convention.patterns() == NC7_PATTERNS
