"""Unit tests for the pipeline glue functions."""

import pytest

from repro.alias.midar import AliasResolution, InferredNode
from repro.itdk.snapshot import ITDKSnapshot
from repro.peeringdb.snapshot import NetIXLan, PeeringDBSnapshot
from repro.pipeline import (
    SnapshotSpec,
    training_items_from_itdk,
    training_items_from_peeringdb,
)
from repro.naming.assigner import NamingConfig
from repro.util.ipaddr import ip_to_int


def _snapshot():
    resolution = AliasResolution()
    for node_id, addresses in (("N1", ["4.0.0.1", "4.0.0.2"]),
                               ("N2", ["4.1.0.1"])):
        node = InferredNode(node_id=node_id,
                            addresses=[ip_to_int(a) for a in addresses])
        resolution.nodes[node_id] = node
        for address in node.addresses:
            resolution.node_of_address[address] = node_id
    snapshot = ITDKSnapshot(label="t", resolution=resolution)
    snapshot.hostnames[ip_to_int("4.0.0.1")] = "as64500-fra.x.net"
    snapshot.hostnames[ip_to_int("4.1.0.1")] = "lo0.cr1.x.net"
    return snapshot


class TestTrainingFromItdk:
    def test_annotated_named_only(self):
        snapshot = _snapshot()
        snapshot.set_annotations({"N1": 64500}, "bdrmapit")
        items = training_items_from_itdk(snapshot)
        assert len(items) == 1
        assert items[0].hostname == "as64500-fra.x.net"
        assert items[0].train_asn == 64500
        assert items[0].address == "4.0.0.1"

    def test_unannotated_excluded(self):
        snapshot = _snapshot()
        snapshot.set_annotations({}, "bdrmapit")
        assert training_items_from_itdk(snapshot) == []

    def test_nonpositive_annotation_excluded(self):
        snapshot = _snapshot()
        snapshot.set_annotations({"N1": -1, "N2": 0}, "bdrmapit")
        assert training_items_from_itdk(snapshot) == []


class TestTrainingFromPeeringdb:
    def test_records_with_hostnames(self):
        class FakeNaming:
            def hostname(self, address):
                if address == ip_to_int("206.0.0.1"):
                    return "as64500.ix.example"
                return None

        pdb = PeeringDBSnapshot(label="t", netixlans=[
            NetIXLan(ix_id=0, asn=64500,
                     ipaddr4=ip_to_int("206.0.0.1")),
            NetIXLan(ix_id=0, asn=64501,
                     ipaddr4=ip_to_int("206.0.0.2")),
        ])
        items = training_items_from_peeringdb(pdb, FakeNaming())
        assert len(items) == 1
        assert items[0].train_asn == 64500


class TestSnapshotSpec:
    def test_naming_defaults_to_year(self):
        spec = SnapshotSpec(label="x", year=2015.5)
        assert spec.naming_config().year == 2015.5

    def test_explicit_naming_wins(self):
        naming = NamingConfig(year=1999.0, stale_rate=0.5)
        spec = SnapshotSpec(label="x", year=2015.5, naming=naming)
        assert spec.naming_config().stale_rate == 0.5
        assert spec.naming_config().year == 1999.0

    def test_build_defaults_to_vps(self):
        spec = SnapshotSpec(label="x", n_vps=7)
        assert spec.build_config().campaign.n_vps == 7
