"""Unit tests for the benchmark-report harness (no timing assertions)."""

import json

import pytest

import repro.bench as bench


FAKE_PIPELINE = {
    "workload": {"itdk_labels": 4, "training_sets": 6, "scale": "tiny",
                 "routing_ases": 160, "rounds": 2, "parallel_workers": 2},
    "timeline": {"serial_seconds": 2.0, "parallel_seconds": 1.0,
                 "parallel_speedup": 2.0},
    "routing": {"eager_seconds": 0.02, "lazy_first_path_seconds": 0.002,
                "lazy_speedup": 10.0},
    "store": {"cold_seconds": 1.0, "warm_seconds": 0.05,
              "warm_speedup": 20.0},
}


class TestPipelineSection:
    def test_write_pipeline_section_preserves_learner_numbers(
            self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        existing = {"version": bench.BENCH_VERSION,
                    "suffix_learn": {"cached_seconds": 1.0,
                                     "uncached_seconds": 2.0,
                                     "cache_speedup": 2.0},
                    "pipeline": {"stale": True}}
        path.write_text(json.dumps(existing), encoding="utf-8")
        monkeypatch.setattr(bench, "run_pipeline_bench",
                            lambda rounds=2, jobs=None: FAKE_PIPELINE)
        report = bench.write_pipeline_section(str(path))
        assert report["suffix_learn"]["cache_speedup"] == 2.0
        assert report["pipeline"] == FAKE_PIPELINE
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["pipeline"]["store"]["warm_speedup"] == 20.0

    def test_write_pipeline_section_from_scratch(self, tmp_path,
                                                 monkeypatch):
        path = tmp_path / "BENCH.json"
        monkeypatch.setattr(bench, "run_pipeline_bench",
                            lambda rounds=2, jobs=None: FAKE_PIPELINE)
        report = bench.write_pipeline_section(str(path))
        assert report["version"] == bench.BENCH_VERSION
        assert path.is_file()

    def test_render_report_with_pipeline(self):
        text = bench.render_report({"version": bench.BENCH_VERSION,
                                    "pipeline": FAKE_PIPELINE})
        assert "build_timeline" in text
        assert "artifact store" in text
        assert "routing model" in text

    def test_render_report_learner_only(self):
        report = {"version": 1,
                  "suffix_learn": {"cached_seconds": 1.0,
                                   "uncached_seconds": 2.0,
                                   "cache_speedup": 2.0},
                  "evaluate_nc": {"cold_seconds": 1.0, "warm_seconds": 0.5,
                                  "warm_speedup": 2.0},
                  "run_datasets": {"serial_seconds": 1.0,
                                   "parallel_seconds": 1.0,
                                   "parallel_speedup": 1.0}}
        text = bench.render_report(report)
        assert "learn one suffix" in text
        assert "pipeline" not in text


class TestWorkload:
    def test_world_items_scaled_to_amortise_startup(self):
        items = bench.bench_world_items()
        suffixes = {".".join(item.hostname.split(".")[-3:])
                    for item in items}
        assert len(items) >= 2000
        assert len(suffixes) == 24

    @pytest.mark.slow
    def test_run_pipeline_bench_shape(self):
        report = bench.run_pipeline_bench(rounds=1)
        assert set(report) == {"workload", "timeline", "routing", "store"}
        assert report["store"]["warm_speedup"] > 1.0


FAKE_SERVE = {
    "workload": {"conventions": 24, "hostnames": 20000,
                 "zipf_hostnames": 20000,
                 "parallel_workers": 2, "rounds": 1},
    "linear_apply": {"seconds": 1.4, "hostnames_per_second": 14285.0},
    "dispatch": {"cold_seconds": 0.06, "warm_seconds": 0.046,
                 "warm_hostnames_per_second": 434000.0,
                 "speedup_vs_linear": 30.4, "fused_plans": 24},
    "memo": {"zipf_hostnames": 20000, "zipf_universe": 1400,
             "uncached_seconds": 0.04, "warm_seconds": 0.01,
             "warm_hostnames_per_second": 2000000.0,
             "memo_speedup": 4.0, "hit_rate": 0.93, "capacity": 65536},
    "bulk": {"serial_seconds": 0.051, "parallel_seconds": 0.026,
             "parallel_speedup": 1.96, "parallel_workers": 2},
}


class TestServeSection:
    def test_write_serve_section_preserves_other_sections(
            self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        existing = {"version": bench.BENCH_VERSION,
                    "pipeline": FAKE_PIPELINE,
                    "serve": {"stale": True}}
        path.write_text(json.dumps(existing), encoding="utf-8")
        monkeypatch.setattr(bench, "run_serve_bench",
                            lambda rounds=3, jobs=None: FAKE_SERVE)
        report = bench.write_serve_section(str(path))
        assert report["pipeline"] == FAKE_PIPELINE
        assert report["serve"] == FAKE_SERVE
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["serve"]["dispatch"]["speedup_vs_linear"] == 30.4

    def test_write_serve_section_from_scratch(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        monkeypatch.setattr(bench, "run_serve_bench",
                            lambda rounds=3, jobs=None: FAKE_SERVE)
        report = bench.write_serve_section(str(path))
        assert report["version"] == bench.BENCH_VERSION
        assert path.is_file()

    def test_render_serve_section(self):
        text = bench.render_serve_section(FAKE_SERVE)
        assert "trie dispatch" in text
        assert "30.4x vs linear" in text
        assert "zipf memo" in text
        assert "hit rate 93.0%" in text
        assert "bulk streaming" in text

    def test_render_serve_section_tolerates_pre_v5_shape(self):
        legacy = {key: value for key, value in FAKE_SERVE.items()
                  if key not in ("memo", "bulk")}
        text = bench.render_serve_section(legacy)
        assert "trie dispatch" in text
        assert "zipf memo" not in text
        assert "bulk streaming" not in text

    def test_render_report_with_serve(self):
        text = bench.render_report({"version": bench.BENCH_VERSION,
                                    "serve": FAKE_SERVE})
        assert "serve benchmark" in text
        assert "linear apply" in text

    def test_serve_workload_shape(self):
        hostnames = bench.serve_hostnames(n=200)
        assert len(hostnames) == 200
        result = bench.serve_conventions(n_suffixes=4)
        assert len(result.conventions) == 4
        # Every convention key must be a registered domain so the
        # linear PSL path can reach it.
        from repro.psl import default_psl
        psl = default_psl()
        for suffix in result.conventions:
            assert psl.registered_domain(suffix) == suffix

    def test_zipf_workload_is_deterministic_and_skewed(self):
        first = bench.zipf_hostnames(n=2000, universe=500)
        second = bench.zipf_hostnames(n=2000, universe=500)
        assert first == second                      # fixed seed
        distinct = len(set(first))
        assert distinct < len(first) / 2            # heavy repeats
        assert distinct > 10                        # but a real stream

    def test_bulk_workers_caps_at_four(self, monkeypatch):
        monkeypatch.setattr(bench, "default_workers", lambda: 16)
        assert bench.bulk_workers() == 4
        assert bench.bulk_workers(jobs=8) == 8      # explicit wins
        monkeypatch.setattr(bench, "default_workers", lambda: 1)
        assert bench.bulk_workers() == 1

    def test_write_dispatch_section_keeps_bulk_numbers(
            self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        existing = {"version": bench.BENCH_VERSION,
                    "pipeline": FAKE_PIPELINE,
                    "serve": json.loads(json.dumps(FAKE_SERVE))}
        path.write_text(json.dumps(existing), encoding="utf-8")
        fresh = {"workload": {"conventions": 24, "hostnames": 20000,
                              "zipf_hostnames": 20000, "rounds": 9},
                 "linear_apply": {"seconds": 2.0,
                                  "hostnames_per_second": 10000.0},
                 "dispatch": {"cold_seconds": 0.05, "warm_seconds": 0.02,
                              "warm_hostnames_per_second": 1000000.0,
                              "speedup_vs_linear": 100.0,
                              "fused_plans": 24},
                 "memo": {"zipf_hostnames": 20000, "zipf_universe": 1400,
                          "uncached_seconds": 0.04, "warm_seconds": 0.005,
                          "warm_hostnames_per_second": 4000000.0,
                          "memo_speedup": 8.0, "hit_rate": 0.93,
                          "capacity": 65536}}
        monkeypatch.setattr(bench, "run_dispatch_bench",
                            lambda rounds=3, jobs=None:
                            json.loads(json.dumps(fresh)))
        report = bench.write_dispatch_section(str(path))
        serve = report["serve"]
        assert serve["dispatch"]["speedup_vs_linear"] == 100.0
        assert serve["memo"]["memo_speedup"] == 8.0
        # The fan-out numbers (and their worker count) survive.
        assert serve["bulk"] == FAKE_SERVE["bulk"]
        assert serve["workload"]["parallel_workers"] == 2
        assert report["pipeline"] == FAKE_PIPELINE

    @pytest.mark.slow
    def test_run_serve_bench_shape(self):
        report = bench.run_serve_bench(rounds=1)
        assert set(report) == {"workload", "linear_apply", "dispatch",
                               "memo", "bulk"}
        assert report["dispatch"]["speedup_vs_linear"] > 1.0
        assert report["memo"]["memo_speedup"] > 1.0
        assert report["bulk"]["parallel_workers"] == \
            report["workload"]["parallel_workers"]

    @pytest.mark.slow
    def test_run_dispatch_bench_shape(self):
        report = bench.run_dispatch_bench(rounds=1)
        assert set(report) == {"workload", "linear_apply", "dispatch",
                               "memo"}
        assert report["dispatch"]["fused_plans"] > 0


FAKE_OBS = {
    "workload": {"world_items": 1280, "world_suffixes": 16, "rounds": 5,
                 "null_span_loops": 200000},
    "disabled": {"seconds": 0.2, "null_span_seconds": 4.5e-07,
                 "spans_per_run": 97, "overhead_fraction": 0.0002,
                 "budget_fraction": 0.02, "within_budget": True},
    "enabled": {"seconds": 0.21, "spans_per_run": 97,
                "overhead_fraction": 0.05,
                "overhead_fraction_raw": 0.05, "noise_floor": False},
}


class TestObsSection:
    def test_write_obs_section_preserves_other_sections(
            self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        existing = {"version": bench.BENCH_VERSION,
                    "pipeline": FAKE_PIPELINE,
                    "serve": FAKE_SERVE,
                    "obs": {"stale": True}}
        path.write_text(json.dumps(existing), encoding="utf-8")
        monkeypatch.setattr(bench, "run_obs_bench",
                            lambda rounds=3: FAKE_OBS)
        report = bench.write_obs_section(str(path))
        assert report["pipeline"] == FAKE_PIPELINE
        assert report["serve"] == FAKE_SERVE
        assert report["obs"] == FAKE_OBS
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["obs"]["disabled"]["within_budget"] is True

    def test_write_obs_section_from_scratch(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        monkeypatch.setattr(bench, "run_obs_bench",
                            lambda rounds=3: FAKE_OBS)
        report = bench.write_obs_section(str(path))
        assert report["version"] == bench.BENCH_VERSION
        assert path.is_file()

    def test_render_obs_section(self):
        text = bench.render_obs_section(FAKE_OBS)
        assert "tracing disabled" in text
        assert "tracing enabled" in text
        assert "OK, budget 2.0%" in text

    def test_render_obs_section_flags_budget_breach(self):
        over = json.loads(json.dumps(FAKE_OBS))
        over["disabled"]["within_budget"] = False
        assert "OVER BUDGET" in bench.render_obs_section(over)

    def test_render_report_with_obs(self):
        text = bench.render_report({"version": bench.BENCH_VERSION,
                                    "obs": FAKE_OBS})
        assert "observability benchmark" in text

    def test_obs_workload_is_genuinely_multi_suffix(self):
        from repro.core.types import group_by_suffix
        groups = group_by_suffix(bench.obs_world_items(n_suffixes=4))
        assert len(groups) == 4

    def test_run_obs_bench_meets_budget(self):
        # The real measurement, small rounds: the acceptance gate that
        # tracing-disabled instrumentation overhead stays under 2%.
        section = bench.run_obs_bench(rounds=1)
        assert section["disabled"]["within_budget"] is True
        assert section["disabled"]["overhead_fraction"] < \
            bench.OBS_OVERHEAD_BUDGET
        assert section["disabled"]["spans_per_run"] > 16
        # The reported enabled fraction is never negative; when the
        # raw measurement is, the noise_floor flag says so.
        enabled = section["enabled"]
        assert enabled["overhead_fraction"] >= 0.0
        assert enabled["noise_floor"] == \
            (enabled["overhead_fraction_raw"] < 0.0)


FAKE_INCREMENTAL = {
    "workload": {"suffixes": 24, "items": 1200, "perturbed_suffixes": 1,
                 "perturbed_fraction": 1 / 24, "rounds": 2,
                 "parallel_workers": 2},
    "cold": {"seconds": 0.3},
    "warm_repeat": {"seconds": 0.01, "speedup": 30.0},
    "perturbed": {"from_scratch_seconds": 0.28,
                  "incremental_seconds": 0.05, "speedup": 5.6,
                  "suffix_cache": {"hits": 23, "misses": 1,
                                   "hit_rate": 23 / 24},
                  "identical": True},
}


class TestIncrementalSection:
    def test_write_incremental_section_preserves_other_sections(
            self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        existing = {"version": bench.BENCH_VERSION,
                    "pipeline": FAKE_PIPELINE,
                    "serve": FAKE_SERVE,
                    "incremental": {"stale": True}}
        path.write_text(json.dumps(existing), encoding="utf-8")
        monkeypatch.setattr(bench, "run_incremental_bench",
                            lambda rounds=2, jobs=None: FAKE_INCREMENTAL)
        report = bench.write_incremental_section(str(path))
        assert report["pipeline"] == FAKE_PIPELINE
        assert report["serve"] == FAKE_SERVE
        assert report["incremental"] == FAKE_INCREMENTAL
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["incremental"]["warm_repeat"]["speedup"] == 30.0

    def test_write_incremental_section_from_scratch(self, tmp_path,
                                                    monkeypatch):
        path = tmp_path / "BENCH.json"
        monkeypatch.setattr(bench, "run_incremental_bench",
                            lambda rounds=2, jobs=None: FAKE_INCREMENTAL)
        report = bench.write_incremental_section(str(path))
        assert report["version"] == bench.BENCH_VERSION
        assert path.is_file()

    def test_render_incremental_section(self):
        text = bench.render_incremental_section(FAKE_INCREMENTAL)
        assert "incremental benchmark" in text
        assert "warm repeat" in text
        assert "hit rate 95.8%" in text
        assert "byte-identical: yes" in text

    def test_render_incremental_section_flags_divergence(self):
        diverged = json.loads(json.dumps(FAKE_INCREMENTAL))
        diverged["perturbed"]["identical"] = False
        assert "byte-identical: NO" \
            in bench.render_incremental_section(diverged)

    def test_render_report_with_incremental(self):
        text = bench.render_report({"version": bench.BENCH_VERSION,
                                    "incremental": FAKE_INCREMENTAL})
        assert "incremental benchmark" in text

    def test_incremental_training_sets_shape(self):
        snap0, snap1, n_mutated = bench.incremental_training_sets(
            n_suffixes=20, per_suffix=8, perturb_fraction=0.05)
        assert n_mutated == 1
        assert len(snap0.items) == len(snap1.items)
        assert snap0.label != snap1.label
        # exactly n_mutated suffixes differ between the snapshots
        differing = {".".join(i0.hostname.split(".")[-2:])
                     for i0, i1 in zip(snap0.items, snap1.items)
                     if i0 != i1}
        assert len(differing) == n_mutated

    def test_run_incremental_bench_meets_floors(self):
        # The real measurement, one round: the acceptance gates --
        # warm-repeat >= 5x, perturbed hit rate >= 80%, byte-identical
        # results -- must hold wherever the tests run.
        section = bench.run_incremental_bench(rounds=1)
        assert section["warm_repeat"]["speedup"] >= 5.0
        cache = section["perturbed"]["suffix_cache"]
        assert cache["hit_rate"] >= 0.8
        assert cache["hits"] + cache["misses"] \
            == section["workload"]["suffixes"]
        assert section["perturbed"]["identical"] is True
        assert section["workload"]["parallel_workers"] >= 1


FAKE_HTTP = {
    "workload": {"zipf_hostnames": 20000,
                 "workload_fingerprint": "deadbeef" * 8,
                 "workers": 2, "concurrency": 4},
    "closed_single": {"mode": "closed", "requests": 600, "ok": 600,
                      "errors": 0, "concurrency": 4, "rate": None,
                      "batch_size": 1, "hostnames_per_request": 1,
                      "duration_s": 0.2, "throughput_rps": 3000.0,
                      "hostnames_per_s": 3000.0,
                      "status": {"200": 600},
                      "latency_p50_s": 0.0012, "latency_p90_s": 0.002,
                      "latency_p99_s": 0.005, "latency_mean_s": 0.0013,
                      "workload_fingerprint": "deadbeef" * 8},
    "closed_batch": {"mode": "closed", "requests": 40, "ok": 40,
                     "errors": 0, "concurrency": 2, "rate": None,
                     "batch_size": 500, "hostnames_per_request": 500,
                     "duration_s": 0.04, "throughput_rps": 1000.0,
                     "hostnames_per_s": 500000.0,
                     "status": {"200": 40},
                     "latency_p50_s": 0.0016, "latency_p90_s": 0.003,
                     "latency_p99_s": 0.006, "latency_mean_s": 0.002,
                     "workload_fingerprint": "deadbeef" * 8},
    "open": {"mode": "open", "requests": 400, "ok": 400, "errors": 0,
             "concurrency": 4, "rate": 200.0, "batch_size": 1,
             "hostnames_per_request": 1, "duration_s": 2.0,
             "throughput_rps": 200.0, "hostnames_per_s": 200.0,
             "status": {"200": 400},
             "latency_p50_s": 0.0008, "latency_p90_s": 0.004,
             "latency_p99_s": 0.014, "latency_mean_s": 0.0015,
             "workload_fingerprint": "deadbeef" * 8},
    "drain_exit_code": 0,
}


class TestHttpSection:
    def test_write_http_section_preserves_other_sections(
            self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        existing = {"version": bench.BENCH_VERSION,
                    "serve": FAKE_SERVE,
                    "incremental": FAKE_INCREMENTAL,
                    "http": {"stale": True}}
        path.write_text(json.dumps(existing), encoding="utf-8")
        monkeypatch.setattr(bench, "run_http_bench",
                            lambda workers=2: FAKE_HTTP)
        report = bench.write_http_section(str(path))
        assert report["serve"] == FAKE_SERVE
        assert report["incremental"] == FAKE_INCREMENTAL
        assert report["http"] == FAKE_HTTP
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["http"]["closed_single"]["throughput_rps"] \
            == 3000.0

    def test_write_http_section_from_scratch(self, tmp_path,
                                             monkeypatch):
        path = tmp_path / "BENCH.json"
        monkeypatch.setattr(bench, "run_http_bench",
                            lambda workers=2: FAKE_HTTP)
        report = bench.write_http_section(str(path))
        assert report["version"] == bench.BENCH_VERSION
        assert path.is_file()

    def test_render_http_section(self):
        text = bench.render_http_section(FAKE_HTTP)
        assert "http benchmark" in text
        assert "2 workers" in text
        assert "closed single" in text
        assert "500000 hostnames/s" in text
        assert "exit code 0" in text

    def test_render_report_with_http(self):
        text = bench.render_report({"version": bench.BENCH_VERSION,
                                    "http": FAKE_HTTP})
        assert "http benchmark" in text

    def test_section_records_the_zipf_workload_fingerprint(self):
        # The determinism satellite: the section's fingerprint is the
        # hash of the exact seeded Zipf stream the serve bench uses,
        # so HTTP and in-process numbers are provably comparable.
        from repro.serve.loadgen import workload_fingerprint
        expected = workload_fingerprint(bench.zipf_hostnames())
        assert FAKE_HTTP["workload"]["workload_fingerprint"] != expected
        section = bench.run_http_bench(single_requests=20,
                                       batch_requests=4, batch_size=50,
                                       open_requests=10, open_rate=100.0,
                                       concurrency=2, workers=1)
        assert section["workload"]["workload_fingerprint"] == expected
        assert section["closed_single"]["workload_fingerprint"] \
            == expected
        assert section["drain_exit_code"] == 0
        assert section["closed_single"]["errors"] == 0


FAKE_SHADOW = {
    "workload": {"conventions": 24, "zipf_hostnames": 20000,
                 "rounds": 1, "workload_fingerprint": "deadbeef" * 8},
    "overhead": {"single_seconds": 0.01, "dual_seconds": 0.018,
                 "overhead_ratio": 1.8, "budget_ratio": 2.2,
                 "within_budget": True,
                 "dual_hostnames_per_second": 1.1e6},
    "ledger": {"hostnames": 2000,
               "expected": {"agree": 1200, "primary_only": 200,
                            "candidate_only": 200, "conflict": 400},
               "observed": {"agree": 1200, "primary_only": 200,
                            "candidate_only": 200, "conflict": 400},
               "exact": True, "primary_identical": True,
               "disagreement_fraction": 0.4},
}


class TestShadowSection:
    def test_write_shadow_section_preserves_other_sections(
            self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        existing = {"version": bench.BENCH_VERSION,
                    "serve": FAKE_SERVE,
                    "http": FAKE_HTTP,
                    "shadow": {"stale": True}}
        path.write_text(json.dumps(existing), encoding="utf-8")
        monkeypatch.setattr(bench, "run_shadow_bench",
                            lambda rounds=5: FAKE_SHADOW)
        report = bench.write_shadow_section(str(path))
        assert report["serve"] == FAKE_SERVE
        assert report["http"] == FAKE_HTTP
        assert report["shadow"] == FAKE_SHADOW
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["shadow"]["overhead"]["overhead_ratio"] == 1.8

    def test_write_shadow_section_from_scratch(self, tmp_path,
                                               monkeypatch):
        path = tmp_path / "BENCH.json"
        monkeypatch.setattr(bench, "run_shadow_bench",
                            lambda rounds=5: FAKE_SHADOW)
        report = bench.write_shadow_section(str(path))
        assert report["version"] == bench.BENCH_VERSION
        assert path.is_file()

    def test_render_shadow_section(self):
        text = bench.render_shadow_section(FAKE_SHADOW)
        assert "shadow benchmark" in text
        assert "overhead 1.80x" in text
        assert "[OK, budget 2.2x]" in text
        assert "exact: yes" in text
        assert "primary-identical: yes" in text

    def test_render_shadow_section_flags_budget_breach(self):
        over = json.loads(json.dumps(FAKE_SHADOW))
        over["overhead"]["within_budget"] = False
        over["ledger"]["exact"] = False
        text = bench.render_shadow_section(over)
        assert "OVER BUDGET" in text
        assert "exact: NO" in text

    def test_render_report_with_shadow(self):
        text = bench.render_report({"version": bench.BENCH_VERSION,
                                    "shadow": FAKE_SHADOW})
        assert "shadow benchmark" in text

    def test_divergence_case_counts_partition_the_stream(self):
        primary, candidate, hostnames, expected = \
            bench.shadow_divergence_case(n=50)
        assert len(hostnames) == 50
        assert sum(expected.values()) == 50
        assert expected == {"agree": 30, "primary_only": 5,
                            "candidate_only": 5, "conflict": 10}
        assert "svc07-bench.org" in primary.conventions
        assert "svc07-bench.org" not in candidate.conventions
        assert "extra-bench.org" in candidate.conventions
        assert "extra-bench.org" not in primary.conventions

    def test_divergence_case_rejects_ragged_n(self):
        with pytest.raises(ValueError):
            bench.shadow_divergence_case(n=55)


FAKE_OBS_WINDOW = {
    "workload": {"http_requests": 300, "log_lines": 20000,
                 "window_records": 201, "rounds": 3,
                 "flush_interval_seconds": 1.0,
                 "window_seconds": 10.0, "window_count": 60},
    "request_seconds": 0.0002,
    "access_log": {"line_seconds": 2.1e-06,
                   "drain_line_seconds": 5.5e-06,
                   "sync_line_seconds": 7.4e-06,
                   "fraction_of_request": 0.0105},
    "window": {"record_seconds": 2.2e-05,
               "fraction_per_second": 2.2e-05},
    "overhead_fraction": 0.0105,
    "budget_fraction": 0.03,
    "within_budget": True,
}


class TestObsWindowSection:
    def test_write_obs_window_section_preserves_other_sections(
            self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH.json"
        existing = {"version": bench.BENCH_VERSION,
                    "serve": FAKE_SERVE,
                    "shadow": FAKE_SHADOW,
                    "obs_window": {"stale": True}}
        path.write_text(json.dumps(existing), encoding="utf-8")
        monkeypatch.setattr(bench, "run_obs_window_bench",
                            lambda rounds=3: FAKE_OBS_WINDOW)
        report = bench.write_obs_window_section(str(path))
        assert report["serve"] == FAKE_SERVE
        assert report["shadow"] == FAKE_SHADOW
        assert report["obs_window"] == FAKE_OBS_WINDOW
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["obs_window"]["within_budget"] is True

    def test_write_obs_window_section_from_scratch(self, tmp_path,
                                                   monkeypatch):
        path = tmp_path / "BENCH.json"
        monkeypatch.setattr(bench, "run_obs_window_bench",
                            lambda rounds=3: FAKE_OBS_WINDOW)
        report = bench.write_obs_window_section(str(path))
        assert report["version"] == bench.BENCH_VERSION
        assert path.is_file()

    def test_render_obs_window_section(self):
        text = bench.render_obs_window_section(FAKE_OBS_WINDOW)
        assert "obs-window benchmark" in text
        assert "access log line" in text
        assert "window fold" in text
        assert "[OK, budget 3.0%]" in text

    def test_render_obs_window_section_flags_budget_breach(self):
        over = json.loads(json.dumps(FAKE_OBS_WINDOW))
        over["within_budget"] = False
        assert "OVER BUDGET" in bench.render_obs_window_section(over)

    def test_render_report_with_obs_window(self):
        text = bench.render_report({"version": bench.BENCH_VERSION,
                                    "obs_window": FAKE_OBS_WINDOW})
        assert "obs-window benchmark" in text

    def test_run_obs_window_bench_meets_budget(self):
        # The real measurement, small rounds: the acceptance gate
        # that the per-request access-log enqueue plus the amortised
        # window fold stays under the 3% serving budget.
        section = bench.run_obs_window_bench(rounds=1)
        assert section["within_budget"] is True
        assert section["overhead_fraction"] < \
            bench.OBS_WINDOW_OVERHEAD_BUDGET
        access = section["access_log"]
        # The enqueue must beat the synchronous write it replaces.
        assert access["line_seconds"] < access["sync_line_seconds"]
        assert section["window"]["record_seconds"] > 0.0
        assert section["request_seconds"] > 0.0
