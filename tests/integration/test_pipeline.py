"""Integration tests: the full measurement-to-learning pipeline."""

import pytest

from repro import (
    METHOD_BDRMAPIT,
    METHOD_RTAA,
    SnapshotSpec,
    WorldConfig,
    generate_world,
    run_peeringdb_snapshot,
    run_snapshot,
)
from repro.bdrmapit.hints import apply_hints, hints_from_conventions
from repro.bdrmapit.metrics import accuracy_against_truth, agreement_metrics
from repro.core import Hoiho
from repro.traceroute.routing import RoutingModel


@pytest.fixture(scope="module")
def world():
    return generate_world(77, WorldConfig.tiny())


@pytest.fixture(scope="module")
def routing(world):
    return RoutingModel(world.graph)


@pytest.fixture(scope="module")
def snapshot_result(world, routing):
    return run_snapshot(world, SnapshotSpec(label="2020-01", year=2020.0,
                                            method=METHOD_BDRMAPIT,
                                            n_vps=8, seed=5), routing)


class TestSnapshotPipeline:
    def test_training_items_well_formed(self, snapshot_result):
        assert snapshot_result.training
        for item in snapshot_result.training[:200]:
            assert item.hostname
            assert item.train_asn > 0
            assert item.address is not None

    def test_annotations_cover_most_nodes(self, snapshot_result):
        snapshot = snapshot_result.snapshot
        annotated = len(snapshot_result.annotations)
        assert annotated >= 0.8 * len(snapshot.resolution.nodes)

    def test_bdrmapit_beats_rtaa_on_truth(self, world, routing):
        specs = {method: SnapshotSpec(label=method, year=2020.0,
                                      method=method, n_vps=8, seed=5)
                 for method in (METHOD_RTAA, METHOD_BDRMAPIT)}
        accuracy = {}
        for method, spec in specs.items():
            result = run_snapshot(world, spec, routing)
            named_nodes = {
                result.snapshot.resolution.node_of_address[a]
                for a, _ in result.snapshot.named_addresses()
                if a in result.snapshot.resolution.node_of_address}
            accuracy[method] = accuracy_against_truth(
                result.annotations, result.snapshot.resolution,
                world.graph.orgs, nodes=named_nodes).rate
        assert accuracy[METHOD_BDRMAPIT] > accuracy[METHOD_RTAA]

    def test_rtaa_method_recorded(self, world, routing):
        result = run_snapshot(world, SnapshotSpec(label="x",
                                                  method=METHOD_RTAA,
                                                  n_vps=4, seed=5), routing)
        assert result.snapshot.method == METHOD_RTAA

    def test_unknown_method_rejected(self, world, routing):
        with pytest.raises(ValueError):
            run_snapshot(world, SnapshotSpec(label="x", method="magic"),
                         routing)

    def test_determinism(self, world, routing):
        spec = SnapshotSpec(label="d", year=2020.0,
                            method=METHOD_BDRMAPIT, n_vps=4, seed=5)
        a = run_snapshot(world, spec, routing)
        b = run_snapshot(world, spec, routing)
        assert a.annotations == b.annotations
        assert [i.hostname for i in a.training] == \
            [i.hostname for i in b.training]


class TestLearnAndFeedback:
    def test_learned_conventions_extract_mostly_true_owners(
            self, world, snapshot_result):
        learned = Hoiho().run(snapshot_result.training)
        checked = correct = 0
        for address, hostname in snapshot_result.snapshot.named_addresses():
            extracted = learned.extract(hostname)
            if extracted is None:
                continue
            truth = world.true_owner(address)
            if truth is None:
                continue
            checked += 1
            if extracted == truth \
                    or world.graph.orgs.are_siblings(extracted, truth):
                correct += 1
        if checked < 10:
            pytest.skip("tiny world yielded too few extractions")
        assert correct / checked > 0.8

    def test_section5_loop_improves_agreement(self, world,
                                              snapshot_result):
        learned = Hoiho().run(snapshot_result.training)
        hints = hints_from_conventions(snapshot_result.snapshot,
                                       learned.conventions)
        if not hints:
            pytest.skip("no hints in tiny world")
        before = agreement_metrics(snapshot_result.annotations, hints,
                                   world.graph.orgs)
        outcome = apply_hints(snapshot_result.graph,
                              snapshot_result.annotations, hints,
                              world.graph.relationships, world.graph.orgs)
        after = agreement_metrics(outcome.annotations, hints,
                                  world.graph.orgs)
        assert after.rate >= before.rate

    def test_peeringdb_training(self, world):
        items = run_peeringdb_snapshot(world, 5, "pdb-test")
        assert items
        ixp_domains = {ixp.domain for ixp in world.graph.ixps}
        for item in items:
            suffix = ".".join(item.hostname.split(".")[-2:])
            # Hostnames live under some IXP domain (2 or 3 labels).
            assert any(item.hostname.endswith(d) for d in ixp_domains)
