"""Seed robustness: the reproduction's shape must not be a seed artifact.

Runs the core pipeline on several different world seeds at tiny scale
and asserts the headline properties hold for each: conventions are
learnable, the section-5 feedback loop never reduces agreement, and the
learner stays deterministic per seed.
"""

import pytest

from repro import (
    METHOD_BDRMAPIT,
    Hoiho,
    SnapshotSpec,
    WorldConfig,
    generate_world,
    run_snapshot,
)
from repro.bdrmapit.hints import apply_hints, hints_from_conventions
from repro.bdrmapit.metrics import agreement_metrics
from repro.traceroute.routing import RoutingModel

SEEDS = (7, 101, 2020)


@pytest.mark.parametrize("seed", SEEDS)
def test_feedback_loop_shape_per_seed(seed):
    world = generate_world(seed, WorldConfig.tiny())
    routing = RoutingModel(world.graph)
    result = run_snapshot(world, SnapshotSpec(
        label="robust", year=2020.0, method=METHOD_BDRMAPIT, n_vps=10,
        seed=seed + 1), routing)
    assert result.training, "no training data for seed %d" % seed

    learned = Hoiho().run(result.training)
    hints = hints_from_conventions(result.snapshot, learned.conventions)
    if not hints:
        pytest.skip("seed %d produced no extractions at tiny scale"
                    % seed)
    before = agreement_metrics(result.annotations, hints,
                               world.graph.orgs)
    outcome = apply_hints(result.graph, result.annotations, hints,
                          world.graph.relationships, world.graph.orgs)
    after = agreement_metrics(outcome.annotations, hints,
                              world.graph.orgs)
    assert after.rate >= before.rate


@pytest.mark.parametrize("seed", SEEDS)
def test_learner_deterministic_per_seed(seed):
    world = generate_world(seed, WorldConfig.tiny())
    routing = RoutingModel(world.graph)
    spec = SnapshotSpec(label="det", year=2020.0,
                        method=METHOD_BDRMAPIT, n_vps=8, seed=seed + 2)
    first = run_snapshot(world, spec, routing)
    second = run_snapshot(world, spec, routing)
    learned_a = Hoiho().run(first.training)
    learned_b = Hoiho().run(second.training)
    assert {s: c.patterns() for s, c in learned_a.conventions.items()} \
        == {s: c.patterns() for s, c in learned_b.conventions.items()}
