"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_appendix_a(self, capsys):
        assert main(["appendix-a", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "NC #7" in out

    def test_learn_from_file(self, tmp_path, capsys):
        path = tmp_path / "hostnames.txt"
        path.write_text(
            "# hostname asn\n"
            "as3356.lon1.example.com 3356\n"
            "as1299.lon2.example.com 1299\n"
            "as174.fra1.example.com 174\n"
            "as2914.fra2.example.com 2914\n"
            "as6453.ams1.example.com 6453\n",
            encoding="utf-8")
        assert main(["learn", "--hostnames", str(path)]) == 0
        out = capsys.readouterr().out
        assert "example.com" in out
        assert "as(\\d+)" in out

    def test_learn_requires_file(self, capsys):
        assert main(["learn"]) == 2

    def test_learn_skips_malformed_lines(self, tmp_path, capsys):
        path = tmp_path / "hostnames.txt"
        path.write_text("onlyonefield\n", encoding="utf-8")
        assert main(["learn", "--hostnames", str(path)]) == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_learn_save_then_apply(self, tmp_path, capsys):
        training = tmp_path / "train.txt"
        training.write_text(
            "as3356.lon1.example.com 3356\n"
            "as1299.lon2.example.com 1299\n"
            "as174.fra1.example.com 174\n"
            "as2914.fra2.example.com 2914\n"
            "as6453.ams1.example.com 6453\n",
            encoding="utf-8")
        saved = tmp_path / "conv.json"
        assert main(["learn", "--hostnames", str(training),
                     "--save", str(saved)]) == 0
        assert saved.exists()
        capsys.readouterr()

        targets = tmp_path / "targets.txt"
        targets.write_text("as8075.ams9.example.com\n"
                           "unknown.other.net\n", encoding="utf-8")
        assert main(["apply", "--conventions", str(saved),
                     "--hostnames", str(targets)]) == 0
        out = capsys.readouterr().out
        assert "as8075.ams9.example.com\t8075" in out
        assert "unknown.other.net\t-" in out

    def test_apply_requires_both_files(self, capsys):
        assert main(["apply"]) == 2

    def test_report(self, tmp_path, capsys):
        training = tmp_path / "train.txt"
        training.write_text(
            "as3356.lon1.example.com 3356\n"
            "as1299.lon2.example.com 1299\n"
            "as174.fra1.example.com 174\n"
            "as2914.fra2.example.com 2914\n",
            encoding="utf-8")
        assert main(["report", "--hostnames", str(training)]) == 0
        out = capsys.readouterr().out
        assert "[TP]" in out
        assert "suffix: example.com" in out

    def test_report_requires_file(self, capsys):
        assert main(["report"]) == 2


class TestCliCache:
    TRAINING = ("as3356.lon1.example.com 3356\n"
                "as1299.lon2.example.com 1299\n"
                "as174.fra1.example.com 174\n"
                "as2914.fra2.example.com 2914\n"
                "as6453.ams1.example.com 6453\n")

    def _training_file(self, tmp_path):
        path = tmp_path / "train.txt"
        path.write_text(self.TRAINING, encoding="utf-8")
        return path

    def test_learn_populates_and_reuses_cache(self, tmp_path, capsys,
                                              monkeypatch):
        training = self._training_file(tmp_path)
        cache = tmp_path / "cache"
        assert main(["learn", "--hostnames", str(training),
                     "--cache-dir", str(cache)]) == 0
        cold = capsys.readouterr().out
        assert list(cache.glob("hoiho/*.pkl"))

        # Warm run must not learn again: break Hoiho.run and rely on
        # the cached result.
        import repro.cli as cli_module
        monkeypatch.setattr(
            cli_module.Hoiho, "run",
            lambda self, items: pytest.fail("re-learned on warm cache"))
        assert main(["learn", "--hostnames", str(training),
                     "--cache-dir", str(cache)]) == 0
        assert capsys.readouterr().out == cold

    def test_no_cache_flag_disables_store(self, tmp_path, capsys):
        training = self._training_file(tmp_path)
        cache = tmp_path / "cache"
        assert main(["learn", "--hostnames", str(training),
                     "--cache-dir", str(cache), "--no-cache"]) == 0
        assert not cache.exists()

    def test_cache_dir_from_environment(self, tmp_path, capsys,
                                        monkeypatch):
        training = self._training_file(tmp_path)
        cache = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        assert main(["learn", "--hostnames", str(training)]) == 0
        assert list(cache.glob("hoiho/*.pkl"))

    def test_cache_info_and_clear(self, tmp_path, capsys):
        training = self._training_file(tmp_path)
        cache = tmp_path / "cache"
        assert main(["learn", "--hostnames", str(training),
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()

        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "hoiho" in out
        assert "suffixes" in out
        assert "1 entry" in out

        # whole-result entry plus one per-suffix artifact
        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert "cleared 2" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_clear_namespace_filter(self, tmp_path, capsys):
        training = self._training_file(tmp_path)
        cache = tmp_path / "cache"
        assert main(["learn", "--hostnames", str(training),
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()

        assert main(["cache", "clear", "--cache-dir", str(cache),
                     "--namespace", "suffixes"]) == 0
        out = capsys.readouterr().out
        assert "cleared 1" in out
        assert "namespace suffixes" in out
        # the whole-result entry survives a filtered sweep
        assert list(cache.glob("hoiho/*.pkl"))
        assert not list(cache.glob("suffixes/*.pkl"))

    def test_cache_clear_rejects_unknown_namespace(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "clear", "--cache-dir", str(tmp_path / "c"),
                  "--namespace", "scratch"])

    def test_no_suffix_cache_flag(self, tmp_path, capsys):
        training = self._training_file(tmp_path)
        cache = tmp_path / "cache"
        assert main(["learn", "--hostnames", str(training),
                     "--cache-dir", str(cache), "--no-suffix-cache"]) == 0
        # whole-result caching still applies; the suffix layer is off
        assert list(cache.glob("hoiho/*.pkl"))
        assert not list(cache.glob("suffixes/*.pkl"))

    def test_cache_defaults_to_info(self, tmp_path, capsys):
        assert main(["cache", "--cache-dir", str(tmp_path / "c")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_requires_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "info"]) == 2

    def test_cache_rejects_unknown_subcommand(self, tmp_path, capsys):
        assert main(["cache", "frobnicate",
                     "--cache-dir", str(tmp_path / "c")]) == 2

    def test_experiment_with_cache_dir(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["table1", "--scale", "tiny",
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert list(cache.glob("worlds/*.pkl"))
        assert list(cache.glob("timelines/*.pkl"))
        assert list(cache.glob("hoiho/*.pkl"))


class TestCliServe:
    TRAINING = ("as3356.lon1.example.com 3356\n"
                "as1299.lon2.example.com 1299\n"
                "as174.fra1.example.com 174\n"
                "as2914.fra2.example.com 2914\n"
                "as6453.ams1.example.com 6453\n")

    def _conventions_file(self, tmp_path, capsys):
        training = tmp_path / "train.txt"
        training.write_text(self.TRAINING, encoding="utf-8")
        saved = tmp_path / "conv.json"
        assert main(["learn", "--hostnames", str(training),
                     "--save", str(saved)]) == 0
        capsys.readouterr()
        return saved

    def _targets_file(self, tmp_path):
        targets = tmp_path / "targets.txt"
        targets.write_text("# probe list\n"
                           "as8075.ams9.example.com\n"
                           "unknown.other.net\n", encoding="utf-8")
        return targets

    def test_annotate_tsv_to_stdout(self, tmp_path, capsys):
        saved = self._conventions_file(tmp_path, capsys)
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", str(self._targets_file(tmp_path))]) == 0
        captured = capsys.readouterr()
        assert captured.out == ("as8075.ams9.example.com\t8075\n"
                                "unknown.other.net\t-\n")
        assert "2 hostname(s): 1 annotated, 1 unannotated" in captured.err

    def test_annotate_jsonl_to_file(self, tmp_path, capsys):
        import json
        saved = self._conventions_file(tmp_path, capsys)
        out = tmp_path / "annotated.jsonl"
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", str(self._targets_file(tmp_path)),
                     "--format", "jsonl", "--out", str(out)]) == 0
        records = [json.loads(line)
                   for line in out.read_text(encoding="utf-8").splitlines()]
        assert records == [
            {"asn": 8075, "hostname": "as8075.ams9.example.com"},
            {"asn": None, "hostname": "unknown.other.net"}]

    def test_annotate_parallel_matches_serial(self, tmp_path, capsys):
        saved = self._conventions_file(tmp_path, capsys)
        targets = tmp_path / "many.txt"
        targets.write_text("".join(
            "as%d.pop%d.example.com\n" % (100 + i, i % 4)
            for i in range(50)), encoding="utf-8")
        serial, parallel = tmp_path / "serial.tsv", tmp_path / "parallel.tsv"
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", str(targets),
                     "--out", str(serial)]) == 0
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", str(targets), "--jobs", "2",
                     "--chunk-size", "8", "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_annotate_reads_stdin(self, tmp_path, capsys, monkeypatch):
        import io
        saved = self._conventions_file(tmp_path, capsys)
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("as8075.ams9.example.com\n"))
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", "-"]) == 0
        assert capsys.readouterr().out == "as8075.ams9.example.com\t8075\n"

    def test_annotate_requires_both_files(self, capsys):
        assert main(["annotate"]) == 2

    def test_serve_loop_and_metrics_out(self, tmp_path, capsys, monkeypatch):
        import io
        import json
        saved = self._conventions_file(tmp_path, capsys)
        metrics = tmp_path / "metrics.json"
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "as8075.ams9.example.com\nunknown.other.net\n"))
        assert main(["serve", "--conventions", str(saved),
                     "--metrics-out", str(metrics)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ("as8075.ams9.example.com\t8075\n"
                                "unknown.other.net\t-\n")
        assert "# serving 1 convention(s)" in captured.err
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        assert snapshot["counters"] == {
            "annotated": 1, "malformed": 0, "misses": 1, "requests": 2,
            "memo_hits": 0, "memo_misses": 2, "memo_evictions": 0}
        assert snapshot["memo"]["size"] == 2

    def test_serve_requires_conventions(self, capsys):
        assert main(["serve"]) == 2

    def test_serve_stats_renders_metrics_file(self, tmp_path, capsys,
                                              monkeypatch):
        import io
        saved = self._conventions_file(tmp_path, capsys)
        metrics = tmp_path / "metrics.json"
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("as8075.ams9.example.com\n"))
        assert main(["serve", "--conventions", str(saved),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["serve-stats", "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "example.com" in out

    def test_serve_stats_reads_bench_serve_section(self, tmp_path, capsys):
        import json
        report = tmp_path / "bench.json"
        report.write_text(json.dumps({"serve": {
            "workload": {"conventions": 4, "hostnames": 100,
                         "parallel_workers": 1},
            "linear_apply": {"seconds": 1.0, "hostnames_per_second": 100.0},
            "dispatch": {"cold_seconds": 0.5, "warm_seconds": 0.01,
                         "warm_hostnames_per_second": 10000.0,
                         "speedup_vs_linear": 100.0},
            "bulk": {"serial_seconds": 0.02, "parallel_seconds": 0.02,
                     "parallel_speedup": 1.0},
        }}), encoding="utf-8")
        assert main(["serve-stats", "--output", str(report)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out.lower()

    def test_serve_stats_missing_section(self, tmp_path, capsys):
        import json
        report = tmp_path / "bench.json"
        report.write_text(json.dumps({"version": 3}), encoding="utf-8")
        assert main(["serve-stats", "--output", str(report)]) == 2
        assert main(["serve-stats",
                     "--output", str(tmp_path / "absent.json")]) == 2


class TestCliObservability:
    TRAINING = ("as3356.lon1.example.com 3356\n"
                "as1299.lon2.example.com 1299\n"
                "as174.fra1.example.com 174\n"
                "as2914.fra2.example.com 2914\n"
                "as6453.ams1.example.com 6453\n")

    def test_run_trace_out_writes_valid_artifacts(self, tmp_path, capsys):
        from repro.obs.manifest import (validate_manifest_file,
                                        validate_trace_file)
        trace = tmp_path / "trace.jsonl"
        manifest = tmp_path / "run.manifest.json"
        assert main(["run", "--scale", "tiny",
                     "--trace-out", str(trace),
                     "--manifest-out", str(manifest)]) == 0
        captured = capsys.readouterr()
        assert "run complete:" in captured.out
        assert "# trace written to" in captured.err
        assert validate_trace_file(str(trace)) == []
        assert validate_manifest_file(str(manifest)) == []

    def test_run_manifest_path_defaults_beside_trace(self, tmp_path,
                                                     capsys):
        import json
        trace = tmp_path / "trace.jsonl"
        assert main(["run", "--scale", "tiny",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        manifest = tmp_path / "trace.manifest.json"
        assert manifest.exists()
        document = json.loads(manifest.read_text(encoding="utf-8"))
        stage_names = [s["name"] for s in document["stages"]]
        assert stage_names == ["stage.world", "stage.timeline",
                               "stage.learn"]
        # Stage wall times must account for (almost all of) the run.
        assert sum(s["wall"] for s in document["stages"]) <= \
            document["wall_seconds"]

    def test_run_without_trace_writes_nothing(self, tmp_path, capsys):
        assert main(["run", "--scale", "tiny"]) == 0
        captured = capsys.readouterr()
        assert "trace written" not in captured.err
        assert list(tmp_path.iterdir()) == []

    def test_trace_summary_renders_stage_tree(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", "--scale", "tiny",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "stage.timeline" in out
        assert "snapshot" in out
        assert "slowest suffixes" in out

    def test_trace_summary_requires_target(self, capsys):
        assert main(["trace", "summary"]) == 2

    def test_trace_summary_missing_file(self, tmp_path, capsys):
        assert main(["trace", "summary",
                     str(tmp_path / "absent.jsonl")]) == 2

    def test_trace_rejects_unknown_subcommand(self, tmp_path, capsys):
        assert main(["trace", "frobnicate",
                     str(tmp_path / "t.jsonl")]) == 2

    def test_experiment_trace_out(self, tmp_path, capsys):
        from repro.obs.manifest import validate_trace_file
        trace = tmp_path / "fig5.jsonl"
        assert main(["figure5", "--scale", "tiny",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert validate_trace_file(str(trace)) == []

    def test_cache_info_json(self, tmp_path, capsys):
        import json
        training = tmp_path / "train.txt"
        training.write_text(self.TRAINING, encoding="utf-8")
        cache = tmp_path / "cache"
        assert main(["learn", "--hostnames", str(training),
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(cache),
                     "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["kinds"]["hoiho"]["entries"] == 1
        assert info["kinds"]["suffixes"]["entries"] == 1
        # every registered namespace is reported, even empty ones
        assert info["kinds"]["worlds"] == {"entries": 0, "bytes": 0}
        assert info["entries"] == 2

    def test_serve_stats_prom_exposition(self, tmp_path, capsys,
                                         monkeypatch):
        import io
        training = tmp_path / "train.txt"
        training.write_text(self.TRAINING, encoding="utf-8")
        saved = tmp_path / "conv.json"
        assert main(["learn", "--hostnames", str(training),
                     "--save", str(saved)]) == 0
        capsys.readouterr()
        metrics = tmp_path / "metrics.json"
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("as8075.ams9.example.com\n"))
        assert main(["serve", "--conventions", str(saved),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["serve-stats", "--metrics", str(metrics),
                     "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_requests counter" in out
        assert "repro_requests 1" in out
        assert 'le="+Inf"' in out

    def test_serve_stats_json(self, tmp_path, capsys, monkeypatch):
        import io
        import json
        training = tmp_path / "train.txt"
        training.write_text(self.TRAINING, encoding="utf-8")
        saved = tmp_path / "conv.json"
        assert main(["learn", "--hostnames", str(training),
                     "--save", str(saved)]) == 0
        capsys.readouterr()
        metrics = tmp_path / "metrics.json"
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("as8075.ams9.example.com\n"))
        assert main(["serve", "--conventions", str(saved),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["serve-stats", "--metrics", str(metrics),
                     "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["requests"] == 1

    def test_serve_stats_prom_requires_metrics_file(self, tmp_path,
                                                    capsys):
        import json
        report = tmp_path / "bench.json"
        report.write_text(json.dumps({"serve": {}}), encoding="utf-8")
        assert main(["serve-stats", "--output", str(report),
                     "--format", "prom"]) == 2

    def test_annotate_rejects_render_formats(self, tmp_path, capsys):
        assert main(["annotate", "--format", "prom"]) == 2
        assert "sink format" in capsys.readouterr().err


class TestCliHttp:
    """``serve-http``/``loadgen`` commands and the ``serve`` signal fix."""

    TRAINING = TestCliServe.TRAINING

    def _conventions_file(self, tmp_path, capsys):
        training = tmp_path / "train.txt"
        training.write_text(self.TRAINING, encoding="utf-8")
        saved = tmp_path / "conv.json"
        assert main(["learn", "--hostnames", str(training),
                     "--save", str(saved)]) == 0
        capsys.readouterr()
        return saved

    def _cli_env(self):
        import os
        from pathlib import Path
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    _CLI = "from repro.cli import main; import sys; " \
           "sys.exit(main(sys.argv[1:]))"

    def test_serve_sigterm_flushes_metrics_out(self, tmp_path, capsys):
        """Regression: an interrupted ``serve`` session must not lose
        its ``--metrics-out`` snapshot (it used to flush only at EOF)."""
        import json
        import signal
        import subprocess
        import sys
        import time
        saved = self._conventions_file(tmp_path, capsys)
        metrics = tmp_path / "metrics.json"
        process = subprocess.Popen(
            [sys.executable, "-c", self._CLI, "serve",
             "--conventions", str(saved), "--metrics-out", str(metrics)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=self._cli_env(), text=True)
        try:
            process.stdin.write("as8075.ams9.example.com\n")
            process.stdin.flush()
            # The echoed annotation proves the loop is live (and the
            # request is in the registry) before the kill.
            assert process.stdout.readline() \
                == "as8075.ams9.example.com\t8075\n"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        assert snapshot["counters"]["requests"] == 1
        assert snapshot["counters"]["annotated"] == 1

    def test_serve_http_serves_and_drains_via_cli(self, tmp_path,
                                                  capsys):
        """End to end through the console entry point: boot a pre-fork
        ``serve-http``, drive it with the ``loadgen`` command, SIGTERM
        it, and check the drained parent wrote merged metrics."""
        import json
        import re
        import signal
        import subprocess
        import sys
        from repro.serve.http import wait_ready
        saved = self._conventions_file(tmp_path, capsys)
        targets = tmp_path / "targets.txt"
        targets.write_text("".join(
            "as%d.pop%d.example.com\n" % (100 + i, i % 4)
            for i in range(30)), encoding="utf-8")
        metrics = tmp_path / "merged.json"
        process = subprocess.Popen(
            [sys.executable, "-c", self._CLI, "serve-http",
             "--conventions", str(saved), "--port", "0",
             "--workers", "2", "--metrics-out", str(metrics)],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            env=self._cli_env(), text=True)
        try:
            ready = process.stderr.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", ready)
            assert match, "no ready line: %r" % ready
            port = int(match.group(1))
            assert wait_ready("127.0.0.1", port, timeout=15)
            assert main(["loadgen", "--port", str(port),
                         "--hostnames", str(targets),
                         "--requests", "40", "--concurrency", "2"]) == 0
            report = json.loads(capsys.readouterr().out)
            assert report["ok"] == 40
            assert report["errors"] == 0
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=20) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        merged = json.loads(metrics.read_text(encoding="utf-8"))
        assert merged["counters"]["http_requests"] >= 40
        assert merged["counters"]["requests"] >= 40

    def test_serve_http_requires_conventions(self, capsys):
        assert main(["serve-http"]) == 2

    def test_serve_http_rejects_bad_flags(self, tmp_path, capsys):
        saved = self._conventions_file(tmp_path, capsys)
        assert main(["serve-http", "--conventions", str(saved),
                     "--workers", "0"]) == 2
        assert main(["serve-http", "--conventions", str(saved),
                     "--max-inflight", "0"]) == 2

    def test_loadgen_rejects_bad_flags(self, capsys, tmp_path):
        assert main(["loadgen", "--batch-size", "0"]) == 2
        empty = tmp_path / "empty.txt"
        empty.write_text("", encoding="utf-8")
        assert main(["loadgen", "--hostnames", str(empty)]) == 2

    def test_serve_stats_merges_repeated_metrics_files(self, tmp_path,
                                                       capsys):
        import json
        first = tmp_path / "w0.json"
        second = tmp_path / "w1.json"
        first.write_text(json.dumps(
            {"counters": {"requests": 3, "annotated": 2},
             "memo": {"size": 1}}), encoding="utf-8")
        second.write_text(json.dumps(
            {"counters": {"requests": 4, "misses": 1}}),
            encoding="utf-8")
        assert main(["serve-stats", "--metrics", str(first),
                     "--metrics", str(second), "--json"]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["counters"]["requests"] == 7
        assert merged["counters"]["annotated"] == 2
        assert merged["counters"]["misses"] == 1

    def test_serve_stats_merge_rejects_mismatched_bounds(self, tmp_path,
                                                         capsys):
        import json
        first = tmp_path / "w0.json"
        second = tmp_path / "w1.json"
        first.write_text(json.dumps({"histograms": {"latency_seconds": {
            "bounds": [1.0, 2.0], "buckets": [1, 0], "overflow": 0,
            "count": 1, "sum": 0.5, "min": 0.5, "max": 0.5}}}),
            encoding="utf-8")
        second.write_text(json.dumps({"histograms": {"latency_seconds": {
            "bounds": [1.0, 4.0], "buckets": [1, 0], "overflow": 0,
            "count": 1, "sum": 0.5, "min": 0.5, "max": 0.5}}}),
            encoding="utf-8")
        assert main(["serve-stats", "--metrics", str(first),
                     "--metrics", str(second)]) == 2
        assert "cannot merge" in capsys.readouterr().err


class TestCliShadow:
    """``serve --shadow`` and the ``shadow-report`` command."""

    def _world(self, tmp_path):
        from repro.bench import shadow_divergence_case
        from repro.core.io import conventions_to_json
        primary, candidate, hostnames, expected = \
            shadow_divergence_case(n=50)
        primary_path = tmp_path / "primary.json"
        candidate_path = tmp_path / "candidate.json"
        primary_path.write_text(conventions_to_json(primary),
                                encoding="utf-8")
        candidate_path.write_text(conventions_to_json(candidate),
                                  encoding="utf-8")
        return primary_path, candidate_path, hostnames, expected

    def test_serve_shadow_answers_primary_and_reports(
            self, tmp_path, capsys, monkeypatch):
        import io
        import json
        from repro.serve.service import AnnotationService
        primary_path, candidate_path, hostnames, expected = \
            self._world(tmp_path)
        oracle = AnnotationService.from_json_file(str(primary_path))
        metrics = tmp_path / "metrics.json"
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("".join(h + "\n"
                                                for h in hostnames)))
        assert main(["serve", "--conventions", str(primary_path),
                     "--shadow", str(candidate_path),
                     "--metrics-out", str(metrics)]) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert len(lines) == len(hostnames)
        for hostname, asn, line in zip(hostnames,
                                       oracle.annotate_batch(hostnames),
                                       lines):
            assert line == "%s\t%s" % (hostname,
                                       asn if asn is not None else "-")
        assert "# shadowing" in captured.err
        assert "shadow disagreement report" in captured.err
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        assert snapshot["counters"]["shadow_requests"] == len(hostnames)
        assert snapshot["shadow"]["active"] is True

    def test_shadow_report_merges_metrics_files(self, tmp_path, capsys,
                                                monkeypatch):
        import io
        import json
        primary_path, candidate_path, hostnames, expected = \
            self._world(tmp_path)
        metrics = tmp_path / "metrics.json"
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("".join(h + "\n"
                                                for h in hostnames)))
        assert main(["serve", "--conventions", str(primary_path),
                     "--shadow", str(candidate_path),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        # Same file twice = two identical workers; counts double.
        assert main(["shadow-report", "--metrics", str(metrics),
                     "--metrics", str(metrics), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["requests"] == 2 * len(hostnames)
        for cls, count in expected.items():
            assert report[cls] == 2 * count
        assert main(["shadow-report", "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "shadow disagreement report" in out
        assert "confl-bench.org" in out

    def test_shadow_report_unreachable_server(self, capsys):
        assert main(["shadow-report", "--port", "1"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_shadow_report_unreadable_metrics(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["shadow-report", "--metrics", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err
