"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_appendix_a(self, capsys):
        assert main(["appendix-a", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "NC #7" in out

    def test_learn_from_file(self, tmp_path, capsys):
        path = tmp_path / "hostnames.txt"
        path.write_text(
            "# hostname asn\n"
            "as3356.lon1.example.com 3356\n"
            "as1299.lon2.example.com 1299\n"
            "as174.fra1.example.com 174\n"
            "as2914.fra2.example.com 2914\n"
            "as6453.ams1.example.com 6453\n",
            encoding="utf-8")
        assert main(["learn", "--hostnames", str(path)]) == 0
        out = capsys.readouterr().out
        assert "example.com" in out
        assert "as(\\d+)" in out

    def test_learn_requires_file(self, capsys):
        assert main(["learn"]) == 2

    def test_learn_skips_malformed_lines(self, tmp_path, capsys):
        path = tmp_path / "hostnames.txt"
        path.write_text("onlyonefield\n", encoding="utf-8")
        assert main(["learn", "--hostnames", str(path)]) == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_learn_save_then_apply(self, tmp_path, capsys):
        training = tmp_path / "train.txt"
        training.write_text(
            "as3356.lon1.example.com 3356\n"
            "as1299.lon2.example.com 1299\n"
            "as174.fra1.example.com 174\n"
            "as2914.fra2.example.com 2914\n"
            "as6453.ams1.example.com 6453\n",
            encoding="utf-8")
        saved = tmp_path / "conv.json"
        assert main(["learn", "--hostnames", str(training),
                     "--save", str(saved)]) == 0
        assert saved.exists()
        capsys.readouterr()

        targets = tmp_path / "targets.txt"
        targets.write_text("as8075.ams9.example.com\n"
                           "unknown.other.net\n", encoding="utf-8")
        assert main(["apply", "--conventions", str(saved),
                     "--hostnames", str(targets)]) == 0
        out = capsys.readouterr().out
        assert "as8075.ams9.example.com\t8075" in out
        assert "unknown.other.net\t-" in out

    def test_apply_requires_both_files(self, capsys):
        assert main(["apply"]) == 2

    def test_report(self, tmp_path, capsys):
        training = tmp_path / "train.txt"
        training.write_text(
            "as3356.lon1.example.com 3356\n"
            "as1299.lon2.example.com 1299\n"
            "as174.fra1.example.com 174\n"
            "as2914.fra2.example.com 2914\n",
            encoding="utf-8")
        assert main(["report", "--hostnames", str(training)]) == 0
        out = capsys.readouterr().out
        assert "[TP]" in out
        assert "suffix: example.com" in out

    def test_report_requires_file(self, capsys):
        assert main(["report"]) == 2
