"""Unit tests for the ITDK snapshot model and serialization."""

import pytest

from repro.alias.midar import AliasResolution, InferredNode
from repro.itdk.snapshot import ITDKSnapshot
from repro.util.ipaddr import ip_to_int


@pytest.fixture
def snapshot():
    resolution = AliasResolution()
    n1 = InferredNode(node_id="N1",
                      addresses=[ip_to_int("4.0.0.1"), ip_to_int("4.0.0.2")])
    n2 = InferredNode(node_id="N2", addresses=[ip_to_int("4.1.0.1")])
    for node in (n1, n2):
        resolution.nodes[node.node_id] = node
        for address in node.addresses:
            resolution.node_of_address[address] = node.node_id
    snap = ITDKSnapshot(label="2020-01", resolution=resolution)
    snap.hostnames[ip_to_int("4.0.0.1")] = "as64500-fra1.example.net"
    snap.set_annotations({"N1": 64500, "N2": 3356}, "bdrmapit")
    return snap


class TestAccessors:
    def test_nodes_sorted(self, snapshot):
        assert [n.node_id for n in snapshot.nodes()] == ["N1", "N2"]

    def test_hostname(self, snapshot):
        assert snapshot.hostname(ip_to_int("4.0.0.1")) == \
            "as64500-fra1.example.net"
        assert snapshot.hostname(ip_to_int("4.9.9.9")) is None

    def test_annotation(self, snapshot):
        assert snapshot.annotation("N1") == 64500
        assert snapshot.annotation("N9") is None

    def test_annotation_of_address(self, snapshot):
        assert snapshot.annotation_of_address(ip_to_int("4.0.0.2")) == 64500
        assert snapshot.annotation_of_address(ip_to_int("9.9.9.9")) is None

    def test_named_addresses_sorted(self, snapshot):
        assert list(snapshot.named_addresses()) == [
            (ip_to_int("4.0.0.1"), "as64500-fra1.example.net")]


class TestSerialization:
    def test_round_trip(self, snapshot):
        parsed = ITDKSnapshot.from_lines(
            "2020-01",
            snapshot.nodes_lines(),
            snapshot.node_as_lines(),
            snapshot.dns_lines())
        assert parsed.annotation("N1") == 64500
        assert parsed.hostname(ip_to_int("4.0.0.1")) == \
            "as64500-fra1.example.net"
        assert parsed.method == "bdrmapit"
        assert [n.node_id for n in parsed.nodes()] == ["N1", "N2"]
        assert parsed.resolution.node_of_address[ip_to_int("4.0.0.2")] \
            == "N1"

    def test_nodes_format(self, snapshot):
        lines = list(snapshot.nodes_lines())
        assert lines[1].startswith("node N1:")
        assert "4.0.0.1" in lines[1]

    def test_node_as_format(self, snapshot):
        lines = list(snapshot.node_as_lines())
        assert "node.AS N1 64500 bdrmapit" in lines

    def test_malformed_nodes_rejected(self):
        with pytest.raises(ValueError):
            ITDKSnapshot.from_lines("x", ["bogus line"], [], [])

    def test_malformed_annotation_rejected(self):
        with pytest.raises(ValueError):
            ITDKSnapshot.from_lines("x", [], ["node.AS N1"], [])

    def test_malformed_dns_rejected(self):
        with pytest.raises(ValueError):
            ITDKSnapshot.from_lines("x", [], [], ["no tabs here"])
