"""Unit tests for ITDK assembly from campaigns."""

import pytest

from repro.itdk.builder import BuildConfig, build_snapshot
from repro.naming.assigner import NamingConfig, assign_hostnames
from repro.topology.world import WorldConfig, generate_world
from repro.traceroute.campaign import CampaignConfig
from repro.traceroute.routing import RoutingModel


@pytest.fixture(scope="module")
def built():
    world = generate_world(42, WorldConfig.tiny())
    naming = assign_hostnames(world, 7, NamingConfig(year=2020.0))
    routing = RoutingModel(world.graph)
    result = build_snapshot(world, naming, 7, "test", routing=routing,
                            config=BuildConfig(
                                campaign=CampaignConfig(n_vps=5)))
    return world, naming, result


class TestBuild:
    def test_observed_addresses_have_nodes(self, built):
        _, _, result = built
        observed = {h for t in result.traces for h in t.responsive_hops()}
        for address in observed:
            assert address in result.snapshot.resolution.node_of_address

    def test_hostnames_attached(self, built):
        world, naming, result = built
        for address, hostname in result.snapshot.named_addresses():
            record = naming.record(address)
            assert record is not None
            assert record.hostname == hostname

    def test_unnamed_addresses_absent(self, built):
        world, naming, result = built
        snapshot = result.snapshot
        for address in snapshot.resolution.node_of_address:
            if naming.record(address) is None:
                assert snapshot.hostname(address) is None

    def test_augmented_addresses_get_hostnames(self, built):
        """Alias augmentation pulls in unobserved own-AS addresses; they
        too must be named (their PTR records exist regardless)."""
        world, naming, result = built
        observed = {h for t in result.traces for h in t.responsive_hops()}
        augmented = [a for a in result.snapshot.resolution.node_of_address
                     if a not in observed]
        named_aug = [a for a in augmented
                     if result.snapshot.hostname(a) is not None]
        assert named_aug, "expected some augmented named addresses"

    def test_reuses_supplied_traces(self, built):
        world, naming, result = built
        again = build_snapshot(world, naming, 7, "again",
                               traces=result.traces)
        assert set(again.snapshot.resolution.node_of_address) == \
            set(result.snapshot.resolution.node_of_address)
