"""Tests for the HTTP load generator (:mod:`repro.serve.loadgen`)."""

import socket
import threading
import time

import pytest

import repro.serve.loadgen as loadgen

from repro.bench import serve_conventions, zipf_hostnames
from repro.core.io import conventions_to_json
from repro.serve.http import AnnotationHTTPServer, HttpConfig, \
    create_listener
from repro.serve.loadgen import (
    LOADGEN_LATENCY_BOUNDS,
    LoadGenConfig,
    _Client,
    _request_payloads,
    run_loadgen,
    workload_fingerprint,
)
from repro.serve.service import AnnotationService


@pytest.fixture(scope="module")
def server_port():
    service = AnnotationService.from_json(
        conventions_to_json(serve_conventions()))
    service.warm()
    config = HttpConfig(port=0)
    sock = create_listener(config.host, 0)
    server = AnnotationHTTPServer(service, config, sock=sock)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.01},
                              daemon=True)
    thread.start()
    yield server.server_port
    server.shutdown()
    server.server_close()
    thread.join(5)


class TestFingerprint:
    def test_deterministic_for_the_seeded_zipf_stream(self):
        assert workload_fingerprint(zipf_hostnames()) == \
            workload_fingerprint(zipf_hostnames())

    def test_order_sensitive(self):
        assert workload_fingerprint(["a", "b"]) != \
            workload_fingerprint(["b", "a"])

    def test_boundary_sensitive(self):
        # Joining without a separator would alias these two streams.
        assert workload_fingerprint(["ab", "c"]) != \
            workload_fingerprint(["a", "bc"])


class TestPayloads:
    def test_single_mode_cycles_hostnames(self):
        payloads = _request_payloads(["a", "b"], requests=3,
                                     batch_size=1)
        assert payloads == [{"hostname": "a"}, {"hostname": "b"},
                            {"hostname": "a"}]

    def test_batch_mode_slices_without_gaps(self):
        payloads = _request_payloads(["a", "b", "c"], requests=2,
                                     batch_size=2)
        assert payloads == [{"hostnames": ["a", "b"]},
                            {"hostnames": ["c", "a"]}]


class TestConfig:
    def test_validate_rejects_bad_values(self):
        for bad in (LoadGenConfig(mode="sideways"),
                    LoadGenConfig(requests=0),
                    LoadGenConfig(concurrency=0),
                    LoadGenConfig(batch_size=0),
                    LoadGenConfig(mode="open", rate=0.0)):
            with pytest.raises(ValueError):
                bad.validate()

    def test_empty_hostname_stream_rejected(self):
        with pytest.raises(ValueError):
            run_loadgen(LoadGenConfig(), [])


class TestClosedLoop:
    def test_report_shape_and_counts(self, server_port):
        hostnames = zipf_hostnames(n=100, universe=30)
        config = LoadGenConfig(port=server_port, mode="closed",
                               requests=60, concurrency=3)
        report = run_loadgen(config, hostnames)
        assert report["mode"] == "closed"
        assert report["requests"] == 60
        assert report["ok"] == 60
        assert report["errors"] == 0
        assert report["status"] == {"200": 60}
        assert report["rate"] is None
        assert report["throughput_rps"] > 0
        assert 0 < report["latency_p50_s"] <= report["latency_p99_s"]
        assert report["workload_fingerprint"] == \
            workload_fingerprint(hostnames)

    def test_batch_mode_counts_hostnames(self, server_port):
        hostnames = zipf_hostnames(n=200, universe=30)
        config = LoadGenConfig(port=server_port, mode="closed",
                               requests=10, concurrency=2,
                               batch_size=50)
        report = run_loadgen(config, hostnames)
        assert report["ok"] == 10
        assert report["hostnames_per_s"] == \
            pytest.approx(50 * report["throughput_rps"])

    def test_garbage_response_is_a_transport_error_not_a_crash(self):
        # Regression: a server that answers with non-HTTP bytes (or
        # closes mid-response) raises http.client protocol errors such
        # as BadStatusLine -- HTTPException, not OSError.  post() must
        # map the whole family to status 0; letting it escape killed
        # the worker thread and silently under-issued the run.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def _garbage_server():
            conn, _ = listener.accept()
            conn.recv(4096)
            conn.sendall(b"definitely not http\r\n")
            conn.close()

        thread = threading.Thread(target=_garbage_server, daemon=True)
        thread.start()
        client = _Client(LoadGenConfig(port=port, timeout=5.0))
        try:
            assert client.post("/annotate",
                               {"hostname": "a.example.com"}) == 0
        finally:
            client.close()
            listener.close()
            thread.join(5)

    def test_dead_worker_raises_instead_of_underreporting(self,
                                                          monkeypatch):
        # Regression: a worker dying on an unmapped exception used to
        # leave its share of requests unissued while run_loadgen
        # returned a clean-looking partial report.
        def _boom(self, path, payload):
            raise ValueError("injected worker bug")

        monkeypatch.setattr(loadgen._Client, "post", _boom)
        config = LoadGenConfig(port=1, mode="closed", requests=6,
                               concurrency=2)
        with pytest.raises(RuntimeError, match="unissued"):
            run_loadgen(config, ["a.example.com"])

    def test_unreachable_server_reports_errors_not_raises(self):
        # A port from the ephemeral range with nothing listening.
        config = LoadGenConfig(port=1, mode="closed", requests=4,
                               concurrency=2, timeout=2.0)
        report = run_loadgen(config, ["a.example.com"])
        assert report["ok"] == 0
        assert report["errors"] == 4
        assert report["status"] == {"error": 4}


class TestOpenLoop:
    def test_holds_the_offered_rate(self, server_port):
        hostnames = zipf_hostnames(n=100, universe=30)
        config = LoadGenConfig(port=server_port, mode="open",
                               requests=50, concurrency=4, rate=200.0)
        report = run_loadgen(config, hostnames)
        assert report["mode"] == "open"
        assert report["rate"] == 200.0
        assert report["ok"] == 50
        # 50 requests at 200/s is scheduled over 0.245s; the run must
        # take at least the schedule's span (an open loop never
        # finishes early) and, on a healthy server, not wildly longer.
        assert report["duration_s"] >= 0.24
        assert report["throughput_rps"] <= 220.0

    def test_epoch_stamped_after_all_senders_are_up(self, monkeypatch):
        # Regression: the schedule epoch used to be captured before the
        # sender threads started, charging thread/connection startup to
        # the first requests' coordinated-omission-corrected latency.
        # With clients that take 250ms to come up but serve instantly,
        # measured latency must stay far below the startup cost.
        class _SlowStartClient:
            def __init__(self, config):
                time.sleep(0.25)

            def post(self, path, payload):
                return 200

            def close(self):
                pass

        monkeypatch.setattr(loadgen, "_Client", _SlowStartClient)
        config = LoadGenConfig(port=1, mode="open", requests=20,
                               concurrency=2, rate=2000.0)
        report = run_loadgen(config, ["a.example.com"])
        assert report["ok"] == 20
        assert report["latency_p99_s"] < 0.2

    def test_latency_bounds_cover_queueing_delays(self):
        # The open loop charges queueing delay to the request; the
        # histogram must be able to resolve multi-second waits.
        assert LOADGEN_LATENCY_BOUNDS[-1] >= 30.0
