"""Property-based API contract tests for :mod:`repro.serve.http`.

Modeled on schemathesis-style API fuzzing: whatever bytes arrive --
random hostname payloads, malformed JSON, non-UTF-8 bodies, oversized
bodies, junk paths -- the server must answer every request with valid
JSON (or a well-formed 4xx) and keep serving afterwards; no input may
crash a worker.  And the semantic contract: ``POST /annotate/batch``
is result-identical to ``AnnotationService.annotate_batch`` on the
same list, including across a live ``/admin/reload``.

One in-thread server (module scope) serves every example: that is the
point -- hundreds of adversarial requests against the *same* worker
prove none of them wedged or killed it.
"""

import http.client
import json
import socket
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import serve_conventions
from repro.core.io import conventions_to_json
from repro.serve.http import AnnotationHTTPServer, HttpConfig, \
    create_listener
from repro.serve.service import AnnotationService

MAX_BODY = 4096

label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-.",
                min_size=0, max_size=24)
#: Hostname-ish and hostile strings alike: the service must shrug at
#: both, so the HTTP layer must too.
hostname_like = st.one_of(
    label,
    st.builds(lambda asn, pop: "as%d-et1.pop%d.svc01-bench.org"
              % (asn, pop),
              st.integers(0, 99999), st.integers(0, 9)),
    st.text(max_size=24),
)


@pytest.fixture(scope="module")
def server_port(tmp_path_factory):
    path = tmp_path_factory.mktemp("props") / "conventions.json"
    path.write_text(conventions_to_json(serve_conventions()),
                    encoding="utf-8")
    service = AnnotationService.from_json_file(str(path))
    service.warm()
    config = HttpConfig(port=0, conventions=str(path),
                        max_body=MAX_BODY)
    sock = create_listener(config.host, 0)
    server = AnnotationHTTPServer(service, config, sock=sock)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.01},
                              daemon=True)
    thread.start()
    yield server, server.server_port
    server.shutdown()
    server.server_close()
    thread.join(5)


def post_raw(port, path, body):
    """POST arbitrary bytes (correct Content-Length); parse the reply.

    Returns ``(status, payload)`` where payload is the decoded JSON
    body (the contract says every response is JSON).
    """
    with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
        head = ("POST %s HTTP/1.1\r\nHost: t\r\n"
                "Content-Length: %d\r\nConnection: close\r\n\r\n"
                % (path, len(body))).encode("ascii")
        s.sendall(head + body)
        reply = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            reply += chunk
    headers, _, payload = reply.partition(b"\r\n\r\n")
    status = int(headers.split(b" ", 2)[1])
    return status, json.loads(payload)


def post_json(port, path, payload):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("POST", path, body=json.dumps(payload))
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def assert_alive(port):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        response.read()
        assert response.status == 200
    finally:
        conn.close()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(body=st.binary(max_size=200),
       path=st.sampled_from(["/annotate", "/annotate/batch",
                             "/admin/reload", "/junk"]))
def test_arbitrary_bytes_never_crash_and_always_json(server_port, body,
                                                     path):
    server, port = server_port
    status, payload = post_raw(port, path, body)
    assert status in (200, 202, 400, 404, 409, 413)
    assert isinstance(payload, dict)
    if status >= 400:
        assert "error" in payload
    assert_alive(port)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(hostname=hostname_like)
def test_single_annotate_matches_service_exactly(server_port, hostname):
    server, port = server_port
    status, payload = post_json(port, "/annotate",
                                {"hostname": hostname})
    assert status == 200
    assert payload["hostname"] == hostname
    assert payload["asn"] == server.service.annotate_one(hostname)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(hostnames=st.lists(hostname_like, max_size=20))
def test_batch_is_result_identical_to_service(server_port, hostnames):
    server, port = server_port
    status, payload = post_json(port, "/annotate/batch",
                                {"hostnames": hostnames})
    assert status == 200
    assert payload["count"] == len(hostnames)
    assert payload["asns"] == server.service.annotate_batch(hostnames)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(payload=st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(), st.floats(),
              st.text(max_size=10)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4)),
    max_leaves=8))
def test_wrong_shaped_json_is_4xx_not_crash(server_port, payload):
    server, port = server_port
    status, body = post_json(port, "/annotate", payload)
    if isinstance(payload, dict) and "hostname" in payload:
        assert status == 200
    else:
        assert status == 400
        assert "error" in body
    assert_alive(port)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(hostnames=st.lists(hostname_like, min_size=1, max_size=12),
       n_suffixes=st.sampled_from([8, 16, 24]))
def test_batch_identity_holds_across_live_reload(tmp_path_factory,
                                                 hostnames, n_suffixes):
    """Reload mid-stream: HTTP answers must track the service's own.

    A private server per example (reload mutates global state), but
    few examples -- the cheap identity properties above carry the
    volume; this one carries the reload axis.
    """
    path = tmp_path_factory.mktemp("reload") / "conventions.json"
    path.write_text(conventions_to_json(serve_conventions()),
                    encoding="utf-8")
    service = AnnotationService.from_json_file(str(path))
    config = HttpConfig(port=0, conventions=str(path))
    sock = create_listener(config.host, 0)
    server = AnnotationHTTPServer(service, config, sock=sock)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.01},
                              daemon=True)
    thread.start()
    try:
        port = server.server_port
        status, before = post_json(port, "/annotate/batch",
                                   {"hostnames": hostnames})
        assert status == 200
        assert before["asns"] == service.annotate_batch(hostnames)
        path.write_text(
            conventions_to_json(serve_conventions(n_suffixes=n_suffixes)),
            encoding="utf-8")
        status, reloaded = post_json(port, "/admin/reload", {})
        assert (status, reloaded["suffixes"]) == (200, n_suffixes)
        status, after = post_json(port, "/annotate/batch",
                                  {"hostnames": hostnames})
        assert status == 200
        assert after["asns"] == service.annotate_batch(hostnames)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(5)
