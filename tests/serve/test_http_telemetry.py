"""Telemetry tests for the serving stack: access log + request ids,
trace sampling, ``/admin/status`` windows, snapshot-age gauge,
structured diagnostics, and the watch / shadow-report --history CLIs.

Endpoint mechanics live in ``test_http.py``; everything here is about
what the server *tells you* while serving.
"""

import http.client
import io
import json
import threading
import time
from contextlib import contextmanager

import pytest

from repro.bench import serve_conventions
from repro.cli import main
from repro.core.io import conventions_to_json
from repro.obs.logjson import JsonLogger
from repro.obs.timeseries import HistoryStore
from repro.serve.http import (
    AnnotationHTTPServer,
    HttpConfig,
    MetricsDir,
    ServerProcess,
    create_listener,
)
from repro.serve.service import AnnotationService


@pytest.fixture(scope="module")
def conventions_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("telemetry") / "conventions.json"
    path.write_text(conventions_to_json(serve_conventions()),
                    encoding="utf-8")
    return str(path)


@contextmanager
def live_server(conventions_path, metrics_dir=None, **overrides):
    """An in-thread server on an ephemeral port; yields (server, port)."""
    service = AnnotationService.from_json_file(conventions_path)
    service.warm()
    config = HttpConfig(port=0, conventions=conventions_path,
                        **overrides)
    config.validate()
    sock = create_listener(config.host, 0)
    server = AnnotationHTTPServer(service, config, sock=sock,
                                  metrics_dir=metrics_dir)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.01},
                              daemon=True)
    thread.start()
    try:
        yield server, server.server_port
    finally:
        server.shutdown()
        server.server_close()
        thread.join(5)


def request(port, method, path, payload=None, headers=None,
            host="127.0.0.1"):
    """One request on a fresh connection: (status, headers, body)."""
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        sent = {"Content-Type": "application/json"}
        sent.update(headers or {})
        conn.request(method, path, body=body, headers=sent)
        response = conn.getresponse()
        raw = response.read()
        got = dict(response.getheaders())
        if "application/json" in got.get("Content-Type", ""):
            return response.status, got, json.loads(raw)
        return response.status, got, raw.decode("utf-8", "replace")
    finally:
        conn.close()


def read_jsonl(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def wait_for_access_lines(server, path, count, timeout=5.0):
    """Poll until ``count`` access lines hit disk.

    The access line is emitted after the response bytes, so the client
    can observe its reply before the handler has enqueued the record.
    """
    deadline = time.time() + timeout
    while True:
        server.access_log.flush()
        records = read_jsonl(path) if path.exists() else []
        if len(records) >= count or time.time() > deadline:
            return records
        time.sleep(0.01)


class TestAccessLog:
    def test_one_line_per_request_with_echoed_id(self, conventions_path,
                                                 tmp_path):
        log_path = tmp_path / "access.jsonl"
        with live_server(conventions_path,
                         access_log=str(log_path)) as (server, port):
            status, headers, _ = request(
                port, "POST", "/annotate",
                {"hostname": "as3356.lon1.example.com"})
            assert status == 200
            echoed = headers["X-Request-Id"]
            assert len(echoed) == 16
            request(port, "GET", "/healthz")
            records = wait_for_access_lines(server, log_path, 2)
        by_path = {record["path"]: record for record in records
                   if record["event"] == "access"}
        annotate = by_path["/annotate"]
        assert annotate["method"] == "POST"
        assert annotate["status"] == 200
        assert annotate["bytes"] > 0
        assert annotate["latency_seconds"] > 0
        assert annotate["request_id"] == echoed
        assert by_path["/healthz"]["method"] == "GET"

    def test_client_supplied_request_id_threads_through(
            self, conventions_path, tmp_path):
        log_path = tmp_path / "access.jsonl"
        with live_server(conventions_path,
                         access_log=str(log_path)) as (server, port):
            _, headers, _ = request(
                port, "GET", "/healthz",
                headers={"X-Request-Id": "proxy-id-042"})
            records = wait_for_access_lines(server, log_path, 1)
        assert headers["X-Request-Id"] == "proxy-id-042"
        assert records[-1]["request_id"] == "proxy-id-042"

    def test_unknown_routes_are_logged_too(self, conventions_path,
                                           tmp_path):
        log_path = tmp_path / "access.jsonl"
        with live_server(conventions_path,
                         access_log=str(log_path)) as (server, port):
            status, _, _ = request(port, "GET", "/nope")
            assert status == 404
            records = wait_for_access_lines(server, log_path, 1)
        assert records[-1]["path"] == "/nope"
        assert records[-1]["status"] == 404

    def test_disabled_by_default(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            request(port, "GET", "/healthz")
            assert server.access_log.enabled is False


class TestTraceSampling:
    def test_sample_every_request(self, conventions_path, tmp_path):
        trace_out = tmp_path / "spans.jsonl"
        with live_server(conventions_path, trace_sample=1,
                         trace_out=str(trace_out)) as (server, port):
            for _ in range(3):
                request(port, "GET", "/healthz")
        spans = [record for record in read_jsonl(trace_out)
                 if record.get("name") == "http.request"]
        assert len(spans) == 3
        for span in spans:
            attrs = span["attrs"]
            assert attrs["method"] == "GET"
            assert attrs["path"] == "/healthz"
            assert attrs["status"] == 200
            assert attrs["request_id"]

    def test_one_in_n_sampling(self, conventions_path, tmp_path):
        trace_out = tmp_path / "spans.jsonl"
        with live_server(conventions_path, trace_sample=3,
                         trace_out=str(trace_out)) as (server, port):
            for _ in range(9):
                request(port, "GET", "/healthz")
        spans = [record for record in read_jsonl(trace_out)
                 if record.get("name") == "http.request"]
        assert len(spans) == 3

    def test_trace_sample_requires_sink(self, conventions_path):
        with pytest.raises(ValueError, match="--trace-out"):
            HttpConfig(port=0, conventions=conventions_path,
                       trace_sample=2).validate()


class TestAdminStatus:
    def test_status_reports_windowed_traffic(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            for _ in range(5):
                request(port, "POST", "/annotate",
                        {"hostname": "as3356.lon1.example.com"})
            # A request is counted after its response bytes go out, so
            # the last annotate may not be windowed yet: poll briefly.
            deadline = time.time() + 5.0
            while True:
                status, _, payload = request(port, "GET",
                                             "/admin/status")
                if payload["window"]["requests"] >= 5 or \
                        time.time() > deadline:
                    break
                time.sleep(0.01)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workers"] == 1
        assert payload["uptime_seconds"] >= 0
        window = payload["window"]
        assert window["width_seconds"] == server.config.window_seconds
        assert window["count"] == server.config.window_count
        # The 5 annotations (and the status request itself) all land
        # inside the ten-minute horizon.
        assert window["requests"] >= 5
        assert window["requests_per_second"] > 0
        assert window["errors"] == 0
        assert window["error_rate"] == 0.0
        assert set(window["latency"]) == {"p50", "p90", "p99"}
        assert all(value >= 0 for value in window["latency"].values())

    def test_idle_server_answers_with_empty_window(self,
                                                   conventions_path):
        with live_server(conventions_path) as (server, port):
            status, _, payload = request(port, "GET", "/admin/status")
        assert status == 200
        # The status request itself may already be windowed; rates and
        # errors must still be well-formed numbers.
        assert payload["window"]["errors"] == 0
        assert payload["window"]["requests_per_second"] >= 0


class TestSnapshotAgeGauge:
    def test_metrics_dir_stamps_ts_and_worker(self, tmp_path):
        metrics_dir = MetricsDir(str(tmp_path))
        before = time.time()
        metrics_dir.flush(3, {"counters": {"c": 1}})
        payload = json.loads((tmp_path / "worker-3.json").read_text())
        assert payload["worker_id"] == 3
        assert before <= payload["ts"] <= time.time()
        ages = metrics_dir.ages()
        assert set(ages) == {3}
        assert 0.0 <= ages[3] < 5.0

    def test_unstamped_snapshots_have_no_age(self, tmp_path):
        (tmp_path / "worker-9.json").write_text(
            json.dumps({"counters": {}}))
        assert MetricsDir(str(tmp_path)).ages() == {}

    def test_metrics_endpoint_exposes_age_gauge(self, conventions_path,
                                                tmp_path):
        metrics_dir = MetricsDir(str(tmp_path))
        with live_server(conventions_path,
                         metrics_dir=metrics_dir) as (server, port):
            status, _, prom = request(port, "GET", "/metrics")
        assert status == 200
        lines = [line for line in prom.splitlines()
                 if line.startswith("repro_snapshot_age_seconds")]
        assert any('worker="0"' in line for line in lines)
        assert "# TYPE repro_snapshot_age_seconds gauge" in prom

    def test_status_reports_snapshot_ages(self, conventions_path,
                                          tmp_path):
        metrics_dir = MetricsDir(str(tmp_path))
        with live_server(conventions_path,
                         metrics_dir=metrics_dir) as (server, port):
            status, _, payload = request(port, "GET", "/admin/status")
        assert status == 200
        assert "0" in payload["snapshot_age_seconds"]


class TestStructuredDiagnostics:
    def test_reload_failure_is_an_event(self, conventions_path,
                                        tmp_path):
        with live_server(conventions_path) as (server, port):
            stream = io.StringIO()
            server.log = JsonLogger(stream=stream, worker_id=0)
            server.config.conventions = str(tmp_path / "missing.json")
            server._reload_from_signal()  # must not raise
            (record,) = read_stream(stream)
        assert record["event"] == "reload_failed"
        assert record["level"] == "error"
        assert "missing.json" in record["conventions"]

    def test_shadow_load_failure_is_an_event(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            stream = io.StringIO()
            server.log = JsonLogger(stream=stream, worker_id=0)
            server._shadow_load_from_signal()  # not in shadow mode
            (record,) = read_stream(stream)
        assert record["event"] == "shadow_load_failed"
        assert record["level"] == "error"

    def test_shadow_promote_failure_is_an_event(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            stream = io.StringIO()
            server.log = JsonLogger(stream=stream, worker_id=0)
            server._shadow_promote_from_signal()
            (record,) = read_stream(stream)
        assert record["event"] == "shadow_promote_failed"


def read_stream(stream: io.StringIO):
    return [json.loads(line) for line in
            stream.getvalue().splitlines()]


class TestWorkerExitEvent:
    def test_parent_logs_structured_worker_exit(self, capfd):
        config = HttpConfig(port=0, workers=2, flush_interval=0.0)
        with ServerProcess(conventions_to_json(serve_conventions()),
                           config) as server:
            status, _, _ = request(server.port, "GET", "/healthz")
            assert status == 200
        err = capfd.readouterr().err
        exits = [json.loads(line) for line in err.splitlines()
                 if line.startswith("{") and "worker_exit" in line]
        assert len(exits) == 2, \
            "expected a worker_exit per worker on stderr:\n%s" % err
        for record in exits:
            assert record["event"] == "worker_exit"
            assert record["exit_code"] == 0
            assert record["level"] == "info"
            assert record["pid"] > 0


class TestWatchCli:
    def test_watch_renders_frames_and_exits(self, conventions_path,
                                            capsys):
        with live_server(conventions_path) as (server, port):
            request(port, "GET", "/healthz")
            assert main(["watch", "--port", str(port),
                         "--iterations", "2", "--interval", "0"]) == 0
        out = capsys.readouterr().out
        assert "repro-hoiho watch" in out
        assert "frame 2" in out
        assert "window" in out

    def test_watch_fails_cleanly_when_unreachable(self, capsys):
        sock = create_listener("127.0.0.1", 0)
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        assert main(["watch", "--port", str(port),
                     "--iterations", "1"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestShadowReportHistoryCli:
    def test_history_rows_render(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        store = HistoryStore(str(history))
        snapshot = {"counters": {"http_requests": 10},
                    "shadow": {"active": True, "requests": 10,
                               "disagreements": 1}}
        store.append(snapshot, ts=1700000000.0)
        store.append(snapshot, ts=1700000600.0)
        assert main(["shadow-report", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "shadow history: 2 entries" in out
        assert "disagree" in out

    def test_empty_history_exits_one(self, tmp_path, capsys):
        history = tmp_path / "none.jsonl"
        assert main(["shadow-report", "--history", str(history)]) == 1


class TestHistoryLoop:
    def test_single_process_server_appends_history(self,
                                                   conventions_path,
                                                   tmp_path):
        history = tmp_path / "history.jsonl"
        with live_server(conventions_path,
                         history=str(history),
                         history_interval=0.05) as (server, port):
            server.history = HistoryStore(str(history))
            server.start_history_loop()
            request(port, "POST", "/annotate",
                    {"hostname": "as3356.lon1.example.com"})
            deadline = time.time() + 5.0
            while time.time() < deadline:
                if HistoryStore(str(history)).entries():
                    break
                time.sleep(0.05)
        entries = HistoryStore(str(history)).entries()
        assert entries
        snapshot = entries[-1]["snapshot"]
        assert snapshot["counters"]["http_requests"] >= 1
