"""Tests for shadow deployment (:mod:`repro.serve.shadow`): the
divergence ledger, the AnnotationService-compatible wrapper, the
promote lifecycle, report building/merging, and the acceptance
properties (shadow-mode answers byte-identical to a plain primary;
post-promote answers byte-identical to a plain candidate)."""

import json
import threading

import pytest

from repro.bench import shadow_divergence_case, zipf_hostnames
from repro.core.hoiho import Hoiho
from repro.core.types import TrainingItem
from repro.obs.metrics import MetricsRegistry
from repro.serve.service import AnnotationService
from repro.serve.shadow import (
    CLASS_AGREE,
    CLASS_CANDIDATE_ONLY,
    CLASS_CONFLICT,
    CLASS_PRIMARY_ONLY,
    DIVERGENCE_CLASSES,
    EXAMPLE_CAP,
    MISS_LABEL,
    ShadowLedger,
    ShadowService,
    merge_shadow_reports,
    render_shadow_report,
    shadow_report_from_snapshot,
)


def learned(suffix="example.com"):
    return Hoiho().run([
        TrainingItem("as%d.pop%d.%s" % (asn, i % 3, suffix), asn)
        for i, asn in enumerate([3356, 1299, 174, 2914, 6453])])


def shadowed(primary_result, candidate_result):
    service = ShadowService(AnnotationService(primary_result))
    service.load_candidate(candidate_result)
    service.warm()
    return service


class TestLedger:
    def _ledger(self):
        return ShadowLedger(MetricsRegistry())

    def test_classifies_every_divergence_class(self):
        ledger = self._ledger()
        ledger.observe_one("h1", (100, "a.com"), (100, "a.com"))
        ledger.observe_one("h2", (None, None), (None, None))
        ledger.observe_one("h3", (100, "a.com"), (None, None))
        ledger.observe_one("h4", (None, None), (100, "b.com"))
        ledger.observe_one("h5", (100, "a.com"), (200, "a.com"))
        report = shadow_report_from_snapshot(ledger.metrics.snapshot())
        assert report["requests"] == 5
        assert report["agree"] == 2
        assert report["primary_only"] == 1
        assert report["candidate_only"] == 1
        assert report["conflict"] == 1
        assert report["disagreements"] == 3
        assert report["disagreement_fraction"] == pytest.approx(0.6)

    def test_agreeing_miss_uses_the_miss_label(self):
        ledger = self._ledger()
        ledger.observe_one("nope.net", (None, None), (None, None))
        labelled = ledger.metrics.snapshot()["labelled"]
        assert labelled["shadow_agree"] == {MISS_LABEL: 1}

    def test_same_asn_from_different_suffixes_is_agreement(self):
        ledger = self._ledger()
        ledger.observe_one("h", (100, "a.com"), (100, "b.com"))
        report = shadow_report_from_snapshot(ledger.metrics.snapshot())
        assert report["agree"] == 1
        assert report["disagreements"] == 0

    def test_divergence_labelled_by_the_annotating_side(self):
        ledger = self._ledger()
        ledger.observe_one("h1", (100, "p.com"), (None, None))
        ledger.observe_one("h2", (None, None), (100, "c.com"))
        ledger.observe_one("h3", (100, "p.com"), (200, "x.com"))
        labelled = ledger.metrics.snapshot()["labelled"]
        assert labelled["shadow_primary_only"] == {"p.com": 1}
        assert labelled["shadow_candidate_only"] == {"c.com": 1}
        # Conflicts are filed under the primary's suffix.
        assert labelled["shadow_conflict"] == {"p.com": 1}

    def test_examples_capped_and_stringified(self):
        ledger = self._ledger()
        for i in range(EXAMPLE_CAP + 3):
            ledger.observe_one("host%d.p.com" % i,
                               (100 + i, "p.com"), (None, None))
        ledger.observe_one(42, (1, "p.com"), (None, None))
        examples = ledger.examples()
        assert examples[CLASS_PRIMARY_ONLY] == \
            ["host%d.p.com" % i for i in range(EXAMPLE_CAP)]
        assert examples[CLASS_CANDIDATE_ONLY] == []
        ledger2 = self._ledger()
        ledger2.observe_one(42, (1, "p.com"), (None, None))
        assert ledger2.examples()[CLASS_PRIMARY_ONLY] == ["42"]

    def test_clear_resets_counts_and_examples(self):
        ledger = self._ledger()
        ledger.observe_one("h", (100, "p.com"), (None, None))
        ledger.clear()
        assert ledger.disagreement_fraction() == 0.0
        assert ledger.examples() == {cls: []
                                     for cls in DIVERGENCE_CLASSES}
        report = shadow_report_from_snapshot(ledger.metrics.snapshot())
        assert report["requests"] == 0
        assert report["disagreements"] == 0


class TestShadowService:
    def test_passthrough_without_candidate(self):
        result = learned()
        plain = AnnotationService(result)
        shadow = ShadowService(AnnotationService(result))
        hostnames = ["as100.pop1.example.com", "miss.example.org", ""]
        assert shadow.annotate_batch(hostnames) == \
            plain.annotate_batch(hostnames)
        assert shadow.candidate is None
        assert shadow.report()["requests"] == 0
        assert shadow.report()["active"] is False

    def test_ledger_exact_on_constructed_divergence(self):
        primary, candidate, hostnames, expected = \
            shadow_divergence_case(n=200)
        service = shadowed(primary, candidate)
        service.annotate_batch(hostnames)
        report = service.report()
        observed = {cls: report[cls]
                    for cls in ("agree",) + DIVERGENCE_CLASSES}
        assert observed == expected
        assert report["requests"] == 200
        assert report["disagreement_fraction"] == pytest.approx(0.4)
        assert report["active"] is True
        for cls in DIVERGENCE_CLASSES:
            assert len(report["examples"][cls]) == EXAMPLE_CAP

    def test_shadow_answers_identical_to_plain_primary(self):
        # Acceptance property: with any candidate riding shotgun, the
        # caller-visible entries are byte-identical to a plain service
        # over the primary set -- the candidate never leaks.
        primary, candidate, hostnames, _ = shadow_divergence_case(n=100)
        hostnames += ["", "  .  ", "AS100.POP1.Svc00-Bench.ORG."]
        service = shadowed(primary, candidate)
        oracle = AnnotationService(primary)
        oracle.warm()
        assert service.annotate_batch_entries(hostnames) == \
            oracle.annotate_batch_entries(hostnames)
        for hostname in hostnames[:10]:
            assert service.annotate_outcome(hostname) == \
                oracle.annotate_outcome(hostname)

    def test_primary_metrics_identical_to_plain_service(self):
        # The candidate annotates into its own registry; the primary's
        # request accounting must match a plain service exactly.
        primary, candidate, hostnames, _ = shadow_divergence_case(n=100)
        service = shadowed(primary, candidate)
        oracle = AnnotationService(primary)
        oracle.warm()
        service.annotate_batch(hostnames)
        oracle.annotate_batch(hostnames)
        ours = service.stats()
        theirs = oracle.stats()
        assert ours["counters"]["requests"] == \
            theirs["counters"]["requests"]
        assert ours["counters"]["annotated"] == \
            theirs["counters"]["annotated"]
        assert ours["counters"]["misses"] == theirs["counters"]["misses"]
        assert ours["labelled"]["extracted"] == \
            theirs["labelled"]["extracted"]

    def test_promote_swaps_and_answers_match_plain_candidate(self):
        # Acceptance property: after promote, answers are byte-identical
        # to a plain service over the candidate set.
        primary, candidate, hostnames, _ = shadow_divergence_case(n=100)
        service = shadowed(primary, candidate)
        service.annotate_batch(hostnames)
        count = service.promote()
        oracle = AnnotationService(candidate)
        oracle.warm()
        assert count == len(oracle.index)
        assert service.candidate is None
        assert service.annotate_batch_entries(hostnames) == \
            oracle.annotate_batch_entries(hostnames)
        report = service.report()
        assert report["active"] is False

    def test_promote_clears_the_ledger(self):
        primary, candidate, hostnames, _ = shadow_divergence_case(n=100)
        service = shadowed(primary, candidate)
        service.annotate_batch(hostnames)
        assert service.disagreement_fraction() > 0
        service.promote()
        assert service.disagreement_fraction() == 0.0
        assert service.report()["requests"] == 0

    def test_promote_without_candidate_raises(self):
        service = ShadowService(AnnotationService(learned()))
        with pytest.raises(LookupError):
            service.promote()

    def test_load_candidate_starts_a_fresh_epoch(self):
        primary, candidate, hostnames, _ = shadow_divergence_case(n=100)
        service = shadowed(primary, candidate)
        service.annotate_batch(hostnames)
        assert service.report()["requests"] == 100
        service.load_candidate(candidate)
        assert service.report()["requests"] == 0

    def test_reload_primary_clears_ledger_and_keeps_candidate(self):
        primary, candidate, hostnames, _ = shadow_divergence_case(n=100)
        service = shadowed(primary, candidate)
        service.annotate_batch(hostnames)
        service.reload_result(primary)
        assert service.report()["requests"] == 0
        assert service.candidate is not None

    def test_to_json_serializes_the_primary_only(self):
        com, org = learned("example.com"), learned("example.org")
        service = shadowed(com, org)
        plain = AnnotationService(com)
        assert service.to_json() == plain.to_json()

    def test_stats_carry_the_shadow_extra_and_serialize(self):
        com, org = learned("example.com"), learned("example.org")
        service = shadowed(com, org)
        service.annotate_one("as100.pop1.example.com")
        snapshot = service.stats()
        assert snapshot["shadow"]["active"] is True
        assert snapshot["shadow"]["candidate_suffixes"] == 1
        json.dumps(snapshot)

    def test_repr_mentions_both_sides(self):
        service = shadowed(learned("example.com"),
                           learned("example.org"))
        assert "candidate=1" in repr(service)


class TestReports:
    def test_merge_adds_counts_and_caps_examples(self):
        primary, candidate, hostnames, expected = \
            shadow_divergence_case(n=100)
        workers = [shadowed(primary, candidate) for _ in range(2)]
        for worker in workers:
            worker.annotate_batch(hostnames)
        merged = merge_shadow_reports(w.stats() for w in workers)
        assert merged["requests"] == 200
        for cls in ("agree",) + DIVERGENCE_CLASSES:
            assert merged[cls] == 2 * expected[cls]
        assert merged["active"] is True
        for cls in DIVERGENCE_CLASSES:
            assert len(merged["examples"][cls]) == EXAMPLE_CAP

    def test_merge_of_inactive_workers_is_inactive(self):
        services = [ShadowService(AnnotationService(learned()))
                    for _ in range(2)]
        merged = merge_shadow_reports(s.stats() for s in services)
        assert merged["active"] is False
        assert merged["requests"] == 0

    def test_report_per_suffix_rows_have_every_class(self):
        primary, candidate, hostnames, _ = shadow_divergence_case(n=100)
        service = shadowed(primary, candidate)
        service.annotate_batch(hostnames)
        for row in service.report()["per_suffix"].values():
            assert sorted(row) == sorted(("agree",) + DIVERGENCE_CLASSES)

    def test_render_names_disagreeing_suffixes(self):
        primary, candidate, hostnames, _ = shadow_divergence_case(n=100)
        service = shadowed(primary, candidate)
        service.annotate_batch(hostnames)
        text = render_shadow_report(service.report())
        assert "shadow disagreement report" in text
        assert "svc07-bench.org" in text
        assert "extra-bench.org" in text
        assert "confl-bench.org" in text

    def test_render_without_candidate_says_so(self):
        service = ShadowService(AnnotationService(learned()))
        assert "(no candidate loaded)" in \
            render_shadow_report(service.report())


class TestZipfPropertyIdentity:
    def test_shadow_is_invisible_on_the_bench_workload(self):
        # The bench's own workload, end to end: identical answers with
        # the shadow active, and again after promoting an identical
        # candidate (promote must be a no-op for callers here).
        from repro.bench import serve_conventions
        result = serve_conventions(n_suffixes=8)
        hostnames = zipf_hostnames(n=2000, universe=300)
        plain = AnnotationService(result)
        plain.warm()
        service = shadowed(result, result)
        expected = plain.annotate_batch(hostnames)
        assert service.annotate_batch(hostnames) == expected
        assert service.disagreement_fraction() == 0.0
        service.promote()
        assert service.annotate_batch(hostnames) == expected


class TestConcurrency:
    """Thread-stress for the shadow seams (satellite: concurrent
    swap/promote must never corrupt caller-visible answers)."""

    def test_candidate_swaps_never_change_primary_answers(self):
        com, org, net = (learned("example.com"), learned("example.org"),
                         learned("example.net"))
        service = shadowed(com, org)
        stop = threading.Event()
        errors = []

        def _swapper():
            try:
                while not stop.is_set():
                    service.load_candidate(net)
                    service.load_candidate(org)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        swapper = threading.Thread(target=_swapper, daemon=True)
        swapper.start()
        hostnames = ["as100.pop1.example.com", "as100.pop1.example.org",
                     "as100.pop1.example.net"]
        try:
            for _ in range(200):
                assert service.annotate_batch(hostnames) == \
                    [100, None, None]
        finally:
            stop.set()
            swapper.join(10)
        assert not errors

    def test_promote_cycle_vs_annotate_batch(self):
        # A promote flips every answer from com to org (and back); a
        # batch reads one primary state, so each batch must agree with
        # exactly one of the two sets -- never a mix.
        com, org = learned("example.com"), learned("example.org")
        service = shadowed(com, org)
        stop = threading.Event()
        errors = []

        def _promoter():
            try:
                while not stop.is_set():
                    service.promote()          # -> org primary
                    service.load_candidate(com)
                    service.promote()          # -> com primary
                    service.load_candidate(org)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        promoter = threading.Thread(target=_promoter, daemon=True)
        promoter.start()
        pair = ["as100.pop1.example.com", "as100.pop1.example.org"]
        try:
            for _ in range(200):
                batch = service.annotate_batch(pair)
                assert batch in ([100, None], [None, 100])
        finally:
            stop.set()
            promoter.join(10)
        assert not errors

    def test_stats_stay_consistent_under_swaps(self):
        com, org, net = (learned("example.com"), learned("example.org"),
                         learned("example.net"))
        service = shadowed(com, org)
        stop = threading.Event()
        errors = []

        def _swapper():
            try:
                while not stop.is_set():
                    service.load_candidate(net)
                    service.load_candidate(org)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        swapper = threading.Thread(target=_swapper, daemon=True)
        swapper.start()
        try:
            for _ in range(200):
                service.annotate_one("as100.pop1.example.com")
                snapshot = service.stats()
                json.dumps(snapshot)
                assert snapshot["shadow"]["active"] is True
                assert snapshot["shadow"]["candidate_suffixes"] == 1
                report = shadow_report_from_snapshot(snapshot)
                assert report["disagreements"] <= report["requests"]
        finally:
            stop.set()
            swapper.join(10)
        assert not errors
