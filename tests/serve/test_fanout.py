"""Tests for the cheap fan-out machinery: packed chunk IPC, the worker
protocol and its fallbacks, fork-inherited dispatch indexes, and
adaptive chunking through the engine."""

from array import array

import pytest

import repro.serve.engine as engine_module
from repro.core.hoiho import Hoiho
from repro.core.io import conventions_to_json
from repro.core.parallel import ParallelConfig
from repro.core.types import TrainingItem
from repro.serve.engine import (
    BulkAnnotator,
    _annotate_chunk,
    _init_annotation_worker,
    _pack_chunk,
    _unpack_item,
)
from repro.serve.index import DispatchIndex
from repro.serve.service import AnnotationService


def learned_result():
    return Hoiho().run([
        TrainingItem("as%d.pop%d.example.com" % (asn, i % 3), asn)
        for i, asn in enumerate([3356, 1299, 174, 2914, 6453])])


def workload(n=100):
    hostnames = []
    for i in range(n):
        if i % 4 == 3:
            hostnames.append("miss%d.unknown.net" % i)
        else:
            hostnames.append("as%d.pop%d.example.com" % (100 + i, i % 3))
    return hostnames


@pytest.fixture
def worker_state():
    """Initialize module-level worker state, restoring it afterwards."""
    saved = engine_module._WORKER_STATE
    _init_annotation_worker(conventions_to_json(learned_result()))
    yield engine_module._WORKER_STATE
    engine_module._WORKER_STATE = saved


class TestPacking:
    def test_round_trip(self):
        chunk = ["as100.pop0.example.com", "miss.unknown.net"]
        packed = _pack_chunk(chunk)
        assert isinstance(packed, bytes)
        assert _unpack_item(packed) == chunk

    def test_non_string_item_falls_back_to_list(self):
        chunk = ["a.example.com", 42]
        assert _pack_chunk(chunk) is chunk

    def test_embedded_newline_falls_back_to_list(self):
        chunk = ["a.example.com", "evil\nhost.example.com"]
        assert _pack_chunk(chunk) is chunk

    def test_unencodable_surrogate_falls_back_to_list(self):
        chunk = ["a.example.com", "bad\udc80host"]
        assert _pack_chunk(chunk) is chunk

    def test_unpack_list_copies(self):
        chunk = ["a.example.com"]
        unpacked = _unpack_item(chunk)
        assert unpacked == chunk
        assert unpacked is not chunk

    def test_unicode_hostnames_survive(self):
        chunk = ["xn--bcher-kva.example.com", "bücher.example.com"]
        assert _unpack_item(_pack_chunk(chunk)) == chunk


class TestWorkerProtocol:
    def test_packed_payload_returns_asn_array(self, worker_state):
        chunk = ["as100.pop0.example.com", "miss.unknown.net",
                 "as101.pop1.example.com"]
        result = _annotate_chunk(_pack_chunk(chunk))
        assert isinstance(result, array)
        assert result.typecode == "q"
        assert list(result) == [100, -1, 101]

    def test_list_payload_returns_pairs(self, worker_state):
        chunk = ["as100.pop0.example.com", "miss.unknown.net"]
        result = _annotate_chunk(chunk)
        assert result == [("as100.pop0.example.com", 100),
                          ("miss.unknown.net", None)]

    def test_worker_memo_caches_repeats(self, worker_state):
        index, memo = worker_state
        _annotate_chunk(_pack_chunk(["as100.pop0.example.com"] * 5))
        assert memo is not None
        assert memo.data["as100.pop0.example.com"] == 100
        assert len(memo.data) == 1

    def test_memo_size_zero_disables_worker_memo(self):
        saved = engine_module._WORKER_STATE
        try:
            _init_annotation_worker(conventions_to_json(learned_result()),
                                    memo_size=0)
            index, memo = engine_module._WORKER_STATE
            assert memo is None
            result = _annotate_chunk(_pack_chunk(["as100.pop0.example.com"]))
            assert list(result) == [100]
        finally:
            engine_module._WORKER_STATE = saved

    def test_oversized_asn_falls_back_to_list(self, worker_state):
        index, memo = worker_state
        # Poison the memo with an ASN beyond the signed-64-bit range so
        # the packed array overflows and the worker ships a plain list.
        memo.put("huge.example.com", 2 ** 70)
        result = _annotate_chunk(_pack_chunk(["huge.example.com",
                                              "as100.pop0.example.com"]))
        assert isinstance(result, list)
        assert result == [2 ** 70, 100]


class TestForkInheritance:
    def test_initializer_adopts_parked_index_on_token_match(self):
        saved = (engine_module._WORKER_STATE, engine_module._FORK_TOKEN,
                 engine_module._FORK_INDEX)
        try:
            parked = DispatchIndex.from_result(learned_result())
            token = (1234, 1)
            engine_module._FORK_INDEX = parked
            engine_module._FORK_TOKEN = token
            _init_annotation_worker("{}", fork_token=token)
            index, _ = engine_module._WORKER_STATE
            assert index is parked
        finally:
            (engine_module._WORKER_STATE, engine_module._FORK_TOKEN,
             engine_module._FORK_INDEX) = saved

    def test_initializer_parses_json_on_token_mismatch(self):
        saved = (engine_module._WORKER_STATE, engine_module._FORK_TOKEN,
                 engine_module._FORK_INDEX)
        try:
            parked = DispatchIndex.from_result(learned_result())
            engine_module._FORK_INDEX = parked
            engine_module._FORK_TOKEN = (1234, 1)
            _init_annotation_worker(conventions_to_json(learned_result()),
                                    fork_token=(1234, 2))
            index, _ = engine_module._WORKER_STATE
            assert index is not parked
            assert index.suffixes() == parked.suffixes()
        finally:
            (engine_module._WORKER_STATE, engine_module._FORK_TOKEN,
             engine_module._FORK_INDEX) = saved

    def test_parking_spot_cleared_after_parallel_run(self):
        service = AnnotationService(learned_result())
        annotator = BulkAnnotator(service,
                                  parallel=ParallelConfig.from_jobs(2),
                                  chunk_size=16)
        list(annotator.annotate(workload(64)))
        assert engine_module._FORK_TOKEN is None
        assert engine_module._FORK_INDEX is None


class TestParallelIdentity:
    def test_packed_parallel_identical_to_serial(self):
        hostnames = workload(200)
        serial = list(BulkAnnotator(
            AnnotationService(learned_result())).annotate(hostnames))
        parallel = list(BulkAnnotator(
            AnnotationService(learned_result()),
            parallel=ParallelConfig.from_jobs(2),
            chunk_size=32).annotate(hostnames))
        assert parallel == serial

    def test_adaptive_chunks_parallel_identical_to_serial(self):
        hostnames = workload(300)
        serial = list(BulkAnnotator(
            AnnotationService(learned_result())).annotate(hostnames))
        parallel = list(BulkAnnotator(
            AnnotationService(learned_result()),
            parallel=ParallelConfig.from_jobs(2)).annotate(hostnames))
        assert parallel == serial

    def test_unpackable_chunk_still_correct_in_parallel(self):
        # A non-string item forces the legacy list payload for its
        # chunk; results must match the serial path item for item.
        hostnames = workload(40) + [None, 42] + workload(8)
        serial = list(BulkAnnotator(
            AnnotationService(learned_result())).annotate(hostnames))
        parallel = list(BulkAnnotator(
            AnnotationService(learned_result()),
            parallel=ParallelConfig.from_jobs(2),
            chunk_size=8).annotate(hostnames))
        assert parallel == serial

    def test_default_chunk_size_is_adaptive(self):
        annotator = BulkAnnotator(AnnotationService(learned_result()))
        assert annotator.chunk_size is None

    def test_zero_chunk_size_still_rejected(self):
        with pytest.raises(ValueError):
            BulkAnnotator(AnnotationService(learned_result()),
                          chunk_size=0)
