"""Tests for the AnnotationService façade: lifecycle, per-request API,
malformed input handling, and metrics accounting."""

import json

import pytest

from repro.core.hoiho import Hoiho, HoihoResult
from repro.core.io import conventions_to_json
from repro.core.types import TrainingItem
from repro.serve.service import AnnotationService
from repro.store import KIND_HOIHO, ArtifactStore


def learned_result(suffix="example.com"):
    return Hoiho().run([
        TrainingItem("as%d.pop%d.%s" % (asn, i % 3, suffix), asn)
        for i, asn in enumerate([3356, 1299, 174, 2914, 6453])])


class TestLifecycle:
    def test_from_json_round_trip(self):
        result = learned_result()
        service = AnnotationService.from_json(conventions_to_json(result))
        assert service.annotate_one("as8075.pop9.example.com") == 8075

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "conv.json"
        path.write_text(conventions_to_json(learned_result()),
                        encoding="utf-8")
        service = AnnotationService.from_json_file(str(path))
        assert service.annotate_one("as8075.pop9.example.com") == 8075

    def test_to_json_is_faithful(self):
        result = learned_result()
        service = AnnotationService(result)
        assert service.to_json() == conventions_to_json(result)

    def test_from_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        payload = {"kind": "test-serve", "seed": 1}
        store.put(KIND_HOIHO, payload, learned_result())
        service = AnnotationService.from_store(store, payload)
        assert service.annotate_one("as8075.pop9.example.com") == 8075

    def test_from_store_missing_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        with pytest.raises(LookupError):
            AnnotationService.from_store(store, {"kind": "absent"})

    def test_warm_returns_plan_count(self):
        service = AnnotationService(learned_result())
        assert service.warm() == 1

    def test_reload_swaps_conventions(self):
        service = AnnotationService(learned_result("example.com"))
        assert service.annotate_one("as100.pop1.example.com") == 100
        assert service.reload_result(learned_result("example.org")) == 1
        assert service.annotate_one("as100.pop1.example.com") is None
        assert service.annotate_one("as100.pop1.example.org") == 100

    def test_reload_json_file(self, tmp_path):
        path = tmp_path / "conv.json"
        path.write_text(conventions_to_json(learned_result("example.org")),
                        encoding="utf-8")
        service = AnnotationService(learned_result("example.com"))
        service.reload_json_file(str(path))
        assert service.index.suffixes() == ["example.org"]

    def test_reload_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        payload = {"kind": "test-serve-reload"}
        store.put(KIND_HOIHO, payload, learned_result("example.org"))
        service = AnnotationService(learned_result("example.com"))
        assert service.reload_store(store, payload) == 1
        assert service.index.suffixes() == ["example.org"]
        with pytest.raises(LookupError):
            service.reload_store(store, {"kind": "absent"})

    def test_usable_only_respected_across_reload(self):
        result = learned_result()
        service = AnnotationService(result, usable_only=True)
        assert len(service.index) == 1    # learned convention is usable
        empty = HoihoResult()
        assert service.reload_result(empty) == 0


class TestAnnotateApi:
    def test_batch_preserves_order(self):
        service = AnnotationService(learned_result())
        hostnames = ["as100.pop0.example.com", "miss.example.net",
                     "as200.pop1.example.com"]
        assert service.annotate_batch(hostnames) == [100, None, 200]

    def test_pairs_is_lazy_and_ordered(self):
        service = AnnotationService(learned_result())
        pairs = service.annotate_pairs(iter(["as7.pop0.example.com",
                                             "nope.net"]))
        assert next(pairs) == ("as7.pop0.example.com", 7)
        assert next(pairs) == ("nope.net", None)

    def test_malformed_inputs_never_raise(self):
        service = AnnotationService(learned_result())
        assert service.annotate_batch(
            ["", ".", None, 17, b"as1.example.com"]) == [None] * 5
        assert service.metrics.counter("malformed").value == 5


class TestMetricsAccounting:
    def test_counters_partition_requests(self):
        service = AnnotationService(learned_result())
        service.annotate_batch([
            "as100.pop0.example.com",    # annotated
            "lo0.cr1.example.com",       # known suffix, miss
            "x.unknown.net",             # unknown suffix, miss
            "",                          # malformed (also a miss)
        ])
        counters = service.stats()["counters"]
        assert counters["requests"] == 4
        assert counters["annotated"] == 1
        assert counters["misses"] == 3
        assert counters["malformed"] == 1
        assert counters["annotated"] + counters["misses"] == \
            counters["requests"]

    def test_per_suffix_extraction_counts(self):
        service = AnnotationService(learned_result())
        service.annotate_batch(["as1.pop0.example.com",
                                "as2.pop1.example.com",
                                "miss.example.org"])
        assert service.stats()["labelled"]["extracted"] == \
            {"example.com": 2}

    def test_latency_histogram_records_every_request(self):
        service = AnnotationService(learned_result())
        service.annotate_batch(["as1.pop0.example.com", "", "x.net"])
        hist = service.stats()["histograms"]["latency_seconds"]
        assert hist["count"] == 3
        assert hist["percentiles"]["p50"] >= 0.0

    def test_stats_include_index_size(self):
        service = AnnotationService(learned_result())
        assert service.stats()["suffixes_indexed"] == 1

    def test_stats_json_serializable(self):
        service = AnnotationService(learned_result())
        service.annotate_one("as1.pop0.example.com")
        json.dumps(service.stats())


def _two_suffix_result():
    items = []
    for suffix in ("example.org", "example.net"):
        items.extend(
            TrainingItem("as%d.pop%d.%s" % (asn, i % 3, suffix), asn)
            for i, asn in enumerate([3356, 1299, 174, 2914, 6453]))
    return Hoiho().run(items)


class TestStatsStateConsistency:
    def test_stats_describe_one_state_under_racing_reload(self):
        # Regression: stats() used to read self._state more than once
        # (once inside _sync_memo_counters, once for the index/memo
        # fields), so a reload landing between the reads paired one
        # state's counters with another state's memo and index.
        # Reproduce the interleaving deterministically: the first
        # _state read inside stats() triggers the swap a concurrent
        # reload would perform; every snapshot field must still
        # describe the pre-swap state.
        other = AnnotationService(_two_suffix_result(), memo_size=0)

        class _RacyService(AnnotationService):
            armed = False

            @property
            def _state(self):
                state = self.__dict__["_state_box"]
                if self.armed:
                    self.armed = False
                    self._state = other._state
                return state

            @_state.setter
            def _state(self, value):
                self.__dict__["_state_box"] = value

        service = _RacyService(learned_result())
        service.annotate_one("as100.pop1.example.com")
        service.armed = True
        snapshot = service.stats()
        assert snapshot["suffixes_indexed"] == 1
        assert snapshot["memo"] is not None


class TestConcurrentReload:
    """Thread-stress for the reload seam: annotate and stats must see
    complete states only, never a half-swapped mix."""

    def test_reload_vs_annotate_batch(self):
        import threading as _threading
        com = learned_result("example.com")
        org = learned_result("example.org")
        service = AnnotationService(com)
        stop = _threading.Event()
        errors = []

        def _flipper():
            try:
                while not stop.is_set():
                    service.reload_result(org)
                    service.reload_result(com)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        flipper = _threading.Thread(target=_flipper, daemon=True)
        flipper.start()
        pair = ["as100.pop1.example.com", "as100.pop1.example.org"]
        try:
            for _ in range(300):
                entries = service.annotate_batch(pair)
                # One batch reads one state: exactly one side resolves.
                assert sorted(entries, key=lambda x: (x is None, x)) \
                    == [100, None]
        finally:
            stop.set()
            flipper.join(10)
        assert not errors

    def test_reload_vs_stats(self):
        import threading as _threading
        small = learned_result("example.com")
        large = _two_suffix_result()
        service = AnnotationService(small)
        stop = _threading.Event()
        errors = []

        def _flipper():
            try:
                while not stop.is_set():
                    service.reload_result(large)
                    service.reload_result(small)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        flipper = _threading.Thread(target=_flipper, daemon=True)
        flipper.start()
        try:
            for _ in range(200):
                service.annotate_one("as100.pop1.example.com")
                snapshot = service.stats()
                # Whatever state the snapshot caught, it must be one of
                # the two complete ones, memo included, and serialize.
                assert snapshot["suffixes_indexed"] in (1, 2)
                assert snapshot["memo"] is not None
                json.dumps(snapshot)
        finally:
            stop.set()
            flipper.join(10)
        assert not errors
