"""Tests for the AnnotationService façade: lifecycle, per-request API,
malformed input handling, and metrics accounting."""

import json

import pytest

from repro.core.hoiho import Hoiho, HoihoResult
from repro.core.io import conventions_to_json
from repro.core.types import TrainingItem
from repro.serve.service import AnnotationService
from repro.store import KIND_HOIHO, ArtifactStore


def learned_result(suffix="example.com"):
    return Hoiho().run([
        TrainingItem("as%d.pop%d.%s" % (asn, i % 3, suffix), asn)
        for i, asn in enumerate([3356, 1299, 174, 2914, 6453])])


class TestLifecycle:
    def test_from_json_round_trip(self):
        result = learned_result()
        service = AnnotationService.from_json(conventions_to_json(result))
        assert service.annotate_one("as8075.pop9.example.com") == 8075

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "conv.json"
        path.write_text(conventions_to_json(learned_result()),
                        encoding="utf-8")
        service = AnnotationService.from_json_file(str(path))
        assert service.annotate_one("as8075.pop9.example.com") == 8075

    def test_to_json_is_faithful(self):
        result = learned_result()
        service = AnnotationService(result)
        assert service.to_json() == conventions_to_json(result)

    def test_from_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        payload = {"kind": "test-serve", "seed": 1}
        store.put(KIND_HOIHO, payload, learned_result())
        service = AnnotationService.from_store(store, payload)
        assert service.annotate_one("as8075.pop9.example.com") == 8075

    def test_from_store_missing_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        with pytest.raises(LookupError):
            AnnotationService.from_store(store, {"kind": "absent"})

    def test_warm_returns_plan_count(self):
        service = AnnotationService(learned_result())
        assert service.warm() == 1

    def test_reload_swaps_conventions(self):
        service = AnnotationService(learned_result("example.com"))
        assert service.annotate_one("as100.pop1.example.com") == 100
        assert service.reload_result(learned_result("example.org")) == 1
        assert service.annotate_one("as100.pop1.example.com") is None
        assert service.annotate_one("as100.pop1.example.org") == 100

    def test_reload_json_file(self, tmp_path):
        path = tmp_path / "conv.json"
        path.write_text(conventions_to_json(learned_result("example.org")),
                        encoding="utf-8")
        service = AnnotationService(learned_result("example.com"))
        service.reload_json_file(str(path))
        assert service.index.suffixes() == ["example.org"]

    def test_reload_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        payload = {"kind": "test-serve-reload"}
        store.put(KIND_HOIHO, payload, learned_result("example.org"))
        service = AnnotationService(learned_result("example.com"))
        assert service.reload_store(store, payload) == 1
        assert service.index.suffixes() == ["example.org"]
        with pytest.raises(LookupError):
            service.reload_store(store, {"kind": "absent"})

    def test_usable_only_respected_across_reload(self):
        result = learned_result()
        service = AnnotationService(result, usable_only=True)
        assert len(service.index) == 1    # learned convention is usable
        empty = HoihoResult()
        assert service.reload_result(empty) == 0


class TestAnnotateApi:
    def test_batch_preserves_order(self):
        service = AnnotationService(learned_result())
        hostnames = ["as100.pop0.example.com", "miss.example.net",
                     "as200.pop1.example.com"]
        assert service.annotate_batch(hostnames) == [100, None, 200]

    def test_pairs_is_lazy_and_ordered(self):
        service = AnnotationService(learned_result())
        pairs = service.annotate_pairs(iter(["as7.pop0.example.com",
                                             "nope.net"]))
        assert next(pairs) == ("as7.pop0.example.com", 7)
        assert next(pairs) == ("nope.net", None)

    def test_malformed_inputs_never_raise(self):
        service = AnnotationService(learned_result())
        assert service.annotate_batch(
            ["", ".", None, 17, b"as1.example.com"]) == [None] * 5
        assert service.metrics.counter("malformed").value == 5


class TestMetricsAccounting:
    def test_counters_partition_requests(self):
        service = AnnotationService(learned_result())
        service.annotate_batch([
            "as100.pop0.example.com",    # annotated
            "lo0.cr1.example.com",       # known suffix, miss
            "x.unknown.net",             # unknown suffix, miss
            "",                          # malformed (also a miss)
        ])
        counters = service.stats()["counters"]
        assert counters["requests"] == 4
        assert counters["annotated"] == 1
        assert counters["misses"] == 3
        assert counters["malformed"] == 1
        assert counters["annotated"] + counters["misses"] == \
            counters["requests"]

    def test_per_suffix_extraction_counts(self):
        service = AnnotationService(learned_result())
        service.annotate_batch(["as1.pop0.example.com",
                                "as2.pop1.example.com",
                                "miss.example.org"])
        assert service.stats()["labelled"]["extracted"] == \
            {"example.com": 2}

    def test_latency_histogram_records_every_request(self):
        service = AnnotationService(learned_result())
        service.annotate_batch(["as1.pop0.example.com", "", "x.net"])
        hist = service.stats()["histograms"]["latency_seconds"]
        assert hist["count"] == 3
        assert hist["percentiles"]["p50"] >= 0.0

    def test_stats_include_index_size(self):
        service = AnnotationService(learned_result())
        assert service.stats()["suffixes_indexed"] == 1

    def test_stats_json_serializable(self):
        service = AnnotationService(learned_result())
        service.annotate_one("as1.pop0.example.com")
        json.dumps(service.stats())
