"""Tests for the bulk annotation engine: streaming parsing, chunked
fan-out, order preservation, serial/parallel identity, and sinks."""

import io
import json

import pytest

from repro.core.hoiho import Hoiho
from repro.core.parallel import ParallelConfig, stream_map
from repro.core.types import TrainingItem
from repro.serve.engine import (
    BulkAnnotator,
    _chunked,
    iter_hostnames,
    jsonl_line,
    tsv_line,
)
from repro.serve.service import AnnotationService


def learned_result():
    return Hoiho().run([
        TrainingItem("as%d.pop%d.example.com" % (asn, i % 3), asn)
        for i, asn in enumerate([3356, 1299, 174, 2914, 6453])])


def workload(n=100):
    hostnames = []
    for i in range(n):
        if i % 4 == 3:
            hostnames.append("miss%d.unknown.net" % i)
        else:
            hostnames.append("as%d.pop%d.example.com" % (100 + i, i % 3))
    return hostnames


class TestInputParsing:
    def test_iter_hostnames_skips_blank_and_comments(self):
        lines = ["# header\n", "\n", "  \n", "host1.example.com\n",
                 "host2.example.com extra fields\n", "   host3.net  \n"]
        assert list(iter_hostnames(lines)) == [
            "host1.example.com", "host2.example.com", "host3.net"]

    def test_iter_hostnames_is_lazy(self):
        def lines():
            yield "a.example.com\n"
            raise AssertionError("consumed too far")
        iterator = iter_hostnames(lines())
        assert next(iterator) == "a.example.com"

    def test_chunked_sizes(self):
        chunks = list(_chunked(iter(range(10)), 4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert list(_chunked(iter([]), 4)) == []


class TestStreamMap:
    def test_serial_matches_builtin_map(self):
        config = ParallelConfig.serial()
        assert list(stream_map(str, range(5), config)) == \
            list(map(str, range(5)))

    def test_serial_runs_initializer_in_process(self):
        seen = []
        config = ParallelConfig.serial()
        list(stream_map(str, [1], config,
                        initializer=seen.append, initargs=("init",)))
        assert seen == ["init"]

    def test_parallel_preserves_order(self):
        config = ParallelConfig(workers=2, backend="process")
        assert list(stream_map(abs, [3, -1, 4, -1, -5, 9], config,
                               window=2)) == [3, 1, 4, 1, 5, 9]

    def test_lazy_consumption_of_unbounded_input(self):
        # A serial stream over an infinite generator must not hang.
        def naturals():
            i = 0
            while True:
                yield i
                i += 1
        stream = stream_map(lambda x: x * x, naturals(),
                            ParallelConfig.serial())
        assert [next(stream) for _ in range(4)] == [0, 1, 4, 9]


class TestBulkAnnotator:
    def test_serial_order_and_values(self):
        service = AnnotationService(learned_result())
        hostnames = workload(40)
        pairs = list(BulkAnnotator(service).annotate(hostnames))
        assert [h for h, _ in pairs] == hostnames
        assert pairs[0] == ("as100.pop0.example.com", 100)
        assert pairs[3] == ("miss3.unknown.net", None)

    def test_parallel_output_identical_to_serial(self):
        result = learned_result()
        hostnames = workload(300)
        serial = list(BulkAnnotator(
            AnnotationService(result), chunk_size=7).annotate(hostnames))
        parallel = list(BulkAnnotator(
            AnnotationService(result),
            parallel=ParallelConfig(workers=2, backend="process"),
            chunk_size=7).annotate(hostnames))
        assert serial == parallel

    def test_parallel_sink_bytes_identical_to_serial(self):
        result = learned_result()
        hostnames = workload(120)
        for fmt in ("tsv", "jsonl"):
            serial_out, parallel_out = io.StringIO(), io.StringIO()
            BulkAnnotator(AnnotationService(result), chunk_size=11) \
                .annotate_to(hostnames, serial_out, fmt=fmt)
            BulkAnnotator(
                AnnotationService(result),
                parallel=ParallelConfig(workers=2, backend="process"),
                chunk_size=11).annotate_to(hostnames, parallel_out, fmt=fmt)
            assert serial_out.getvalue() == parallel_out.getvalue()

    def test_parallel_metrics_aggregated_in_parent(self):
        service = AnnotationService(learned_result())
        hostnames = workload(40)    # 30 hits, 10 unknown-suffix misses
        list(BulkAnnotator(
            service, parallel=ParallelConfig(workers=2, backend="process"),
            chunk_size=8).annotate(hostnames))
        counters = service.stats()["counters"]
        assert counters["requests"] == 40
        assert counters["annotated"] == 30
        assert counters["misses"] == 10

    def test_annotate_lines_parses_first(self):
        service = AnnotationService(learned_result())
        lines = ["# comment\n", "as101.pop2.example.com trailing junk\n"]
        assert list(BulkAnnotator(service).annotate_lines(lines)) == \
            [("as101.pop2.example.com", 101)]

    def test_streaming_is_lazy_in_serial_mode(self):
        service = AnnotationService(learned_result())

        def hostnames():
            yield "as100.pop0.example.com"
            raise AssertionError("pulled past the first hostname")

        stream = BulkAnnotator(service).annotate(hostnames())
        assert next(stream) == ("as100.pop0.example.com", 100)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            BulkAnnotator(AnnotationService(learned_result()),
                          chunk_size=0)


class TestSinks:
    def test_tsv_line(self):
        assert tsv_line("h.example.com", 42) == "h.example.com\t42"
        assert tsv_line("h.example.com", None) == "h.example.com\t-"

    def test_jsonl_line(self):
        record = json.loads(jsonl_line("h.example.com", 42))
        assert record == {"hostname": "h.example.com", "asn": 42}
        assert json.loads(jsonl_line("x.net", None))["asn"] is None

    def test_annotate_to_tsv_and_summary(self):
        service = AnnotationService(learned_result())
        out = io.StringIO()
        summary = BulkAnnotator(service).annotate_to(
            ["as100.pop0.example.com", "miss.unknown.net"], out)
        assert out.getvalue() == \
            "as100.pop0.example.com\t100\nmiss.unknown.net\t-\n"
        assert summary == {"requests": 2, "annotated": 1, "misses": 1,
                           "errors": 0}

    def test_annotate_to_rejects_unknown_format(self):
        service = AnnotationService(learned_result())
        with pytest.raises(ValueError):
            BulkAnnotator(service).annotate_to([], io.StringIO(),
                                               fmt="xml")
