"""Tests for the Zipf-aware annotation memo: the bounded LRU itself,
its integration with :class:`AnnotationService`, and the
invalidate-on-reload contract."""

import pytest

from repro.core.hoiho import Hoiho
from repro.core.types import TrainingItem
from repro.serve.memo import ABSENT, DEFAULT_MEMO_SIZE, AnnotationMemo
from repro.serve.service import AnnotationService


def learned_result(suffix="example.com"):
    return Hoiho().run([
        TrainingItem("as%d.pop%d.%s" % (asn, i % 3, suffix), asn)
        for i, asn in enumerate([3356, 1299, 174, 2914, 6453])])


class TestAnnotationMemo:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AnnotationMemo(0)
        with pytest.raises(ValueError):
            AnnotationMemo(-1)

    def test_get_put_round_trip(self):
        memo = AnnotationMemo(4)
        assert memo.get("a.example.com") is ABSENT
        memo.put("a.example.com", (3356, "example.com"))
        assert memo.get("a.example.com") == (3356, "example.com")
        assert memo.hits == 1
        assert memo.misses == 1

    def test_negative_caching(self):
        # Misses are cached too: (None, None) is a first-class entry,
        # distinct from ABSENT.
        memo = AnnotationMemo(4)
        memo.put("www.unknown.net", (None, None))
        assert memo.get("www.unknown.net") == (None, None)
        assert memo.hits == 1

    def test_lru_eviction_order(self):
        memo = AnnotationMemo(2)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.get("a")              # refresh a; b is now LRU
        memo.put("c", 3)           # evicts b
        assert memo.get("b") is ABSENT
        assert memo.get("a") == 1
        assert memo.get("c") == 3
        assert memo.evictions == 1
        assert len(memo) == 2

    def test_put_existing_key_refreshes_without_eviction(self):
        memo = AnnotationMemo(2)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.put("a", 10)          # update, not insert
        memo.put("c", 3)           # evicts b, not a
        assert memo.get("a") == 10
        assert memo.get("b") is ABSENT
        assert memo.evictions == 1

    def test_clear_resets_entries_not_counters(self):
        memo = AnnotationMemo(2)
        memo.put("a", 1)
        memo.get("a")
        memo.clear()
        assert len(memo) == 0
        assert memo.hits == 1      # counters are cumulative

    def test_stats_shape(self):
        memo = AnnotationMemo(8)
        memo.put("a", 1)
        memo.get("a")
        memo.get("b")
        stats = memo.stats()
        assert stats["size"] == 1
        assert stats["capacity"] == 8
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["hit_rate"] == 0.5


class TestServiceMemo:
    def test_default_service_has_memo(self):
        service = AnnotationService(learned_result())
        assert service.memo is not None
        assert service.memo.capacity == DEFAULT_MEMO_SIZE

    def test_memo_size_zero_disables(self):
        service = AnnotationService(learned_result(), memo_size=0)
        assert service.memo is None
        assert service.annotate_one("as8075.pop9.example.com") == 8075
        assert service.stats()["memo"] is None
        assert service.stats()["counters"]["memo_hits"] == 0

    def test_repeat_annotate_one_hits_memo(self):
        service = AnnotationService(learned_result())
        for _ in range(3):
            assert service.annotate_one("as8075.pop9.example.com") == 8075
        stats = service.stats()
        assert stats["counters"]["memo_hits"] == 2
        assert stats["counters"]["memo_misses"] == 1
        assert stats["memo"]["size"] == 1
        # Hits still count as annotated + extracted.
        assert stats["counters"]["annotated"] == 3
        assert stats["labelled"]["extracted"]["example.com"] == 3

    def test_batch_hits_memo(self):
        service = AnnotationService(learned_result())
        hostnames = ["as8075.pop9.example.com", "www.unknown.net"] * 5
        results = service.annotate_batch(hostnames)
        assert results == [8075, None] * 5
        stats = service.stats()
        assert stats["counters"]["memo_hits"] == 8
        assert stats["counters"]["memo_misses"] == 2
        assert stats["counters"]["annotated"] == 5
        assert stats["counters"]["misses"] == 5

    def test_malformed_inputs_never_reach_memo(self):
        service = AnnotationService(learned_result())
        assert service.annotate_batch([None, "", "..", 42]) == [None] * 4
        stats = service.stats()
        assert stats["counters"]["malformed"] == 4
        assert stats["memo"]["size"] == 0

    def test_memo_entries_key_on_normalized_hostname(self):
        service = AnnotationService(learned_result())
        assert service.annotate_one("as8075.pop9.example.com") == 8075
        assert service.annotate_one("AS8075.pop9.Example.COM.") == 8075
        stats = service.stats()
        assert stats["memo"]["size"] == 1
        assert stats["counters"]["memo_hits"] == 1

    def test_tiny_memo_evicts(self):
        service = AnnotationService(learned_result(), memo_size=2)
        for i in range(5):
            service.annotate_one("as%d.pop0.example.com" % (100 + i))
        stats = service.stats()
        assert stats["memo"]["size"] == 2
        assert stats["counters"]["memo_evictions"] == 3

    def test_reload_invalidates_memo(self):
        service = AnnotationService(learned_result("example.com"))
        assert service.annotate_one("as100.pop1.example.com") == 100
        old_memo = service.memo
        service.reload_result(learned_result("example.org"))
        # Fresh memo: the stale cached answer cannot survive the swap.
        assert service.memo is not old_memo
        assert len(service.memo) == 0
        assert service.annotate_one("as100.pop1.example.com") is None
        assert service.annotate_one("as100.pop1.example.org") == 100

    def test_reload_keeps_counters_cumulative(self):
        service = AnnotationService(learned_result())
        for _ in range(3):
            service.annotate_one("as8075.pop9.example.com")
        before = service.stats()["counters"]
        assert before["memo_hits"] == 2
        service.reload_result(learned_result())
        after = service.stats()["counters"]
        # Retired totals survive the memo swap; counters never regress.
        assert after["memo_hits"] == 2
        assert after["memo_misses"] == 1
        for _ in range(2):
            service.annotate_one("as8075.pop9.example.com")
        final = service.stats()["counters"]
        assert final["memo_hits"] == 3      # 2 retired + 1 fresh
        assert final["memo_misses"] == 2    # 1 retired + 1 fresh

    def test_stats_reports_fused_plans(self):
        service = AnnotationService(learned_result())
        stats = service.stats()
        assert stats["suffixes_indexed"] == 1
        assert stats["fused_plans"] in (0, 1)
        assert stats["fused_plans"] == service.index.fused_plans()
