"""Tests for the network annotation server (:mod:`repro.serve.http`).

Two tiers: fast in-thread servers (an :class:`AnnotationHTTPServer`
running on a background thread inside this process) exercise the
endpoint contract -- routing, guards, keep-alive, backpressure, drain
state, inline reload -- and a handful of real-process tests boot the
whole pre-fork tree through :class:`ServerProcess` to verify fork
inheritance, merged ``/metrics``, SIGHUP reload broadcast, and the
graceful SIGTERM drain actually exiting 0.
"""

import http.client
import json
import os
import signal
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.bench import serve_conventions, zipf_hostnames
from repro.core.io import conventions_to_json
from repro.serve.http import (
    AnnotationHTTPServer,
    HttpConfig,
    MetricsDir,
    ServerProcess,
    create_listener,
    wait_ready,
)
from repro.serve.service import AnnotationService


@pytest.fixture(scope="module")
def conventions_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("http") / "conventions.json"
    path.write_text(conventions_to_json(serve_conventions()),
                    encoding="utf-8")
    return str(path)


@contextmanager
def live_server(conventions_path, **overrides):
    """An in-thread server on an ephemeral port; yields (server, port)."""
    service = AnnotationService.from_json_file(conventions_path)
    service.warm()
    config = HttpConfig(port=0, conventions=conventions_path,
                        **overrides)
    sock = create_listener(config.host, 0)
    server = AnnotationHTTPServer(service, config, sock=sock)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.01},
                              daemon=True)
    thread.start()
    try:
        yield server, server.server_port
    finally:
        server.shutdown()
        server.server_close()
        thread.join(5)


def request(port, method, path, payload=None, host="127.0.0.1"):
    """One request on a fresh connection; returns (status, headers, body).

    ``body`` is parsed JSON when the response claims JSON, else text.
    """
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        headers = dict(response.getheaders())
        if "application/json" in headers.get("Content-Type", ""):
            return response.status, headers, json.loads(raw)
        return response.status, headers, raw.decode("utf-8", "replace")
    finally:
        conn.close()


def raw_request(port, data, host="127.0.0.1"):
    """Send raw bytes; return the status line's code (0 on no reply)."""
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(data)
        sock.shutdown(socket.SHUT_WR)
        reply = b""
        while b"\r\n" not in reply:
            chunk = sock.recv(4096)
            if not chunk:
                break
            reply += chunk
        if not reply.startswith(b"HTTP/"):
            return 0
        return int(reply.split(b" ", 2)[1])


class TestEndpoints:
    def test_single_annotate_matches_service(self, conventions_path):
        service = AnnotationService.from_json_file(conventions_path)
        with live_server(conventions_path) as (server, port):
            for hostname in zipf_hostnames(n=20, universe=10):
                status, _, body = request(port, "POST", "/annotate",
                                          {"hostname": hostname})
                assert status == 200
                assert body["hostname"] == hostname
                assert body["asn"] == service.annotate_one(hostname)

    def test_batch_matches_annotate_batch(self, conventions_path):
        hostnames = zipf_hostnames(n=200, universe=40)
        service = AnnotationService.from_json_file(conventions_path)
        with live_server(conventions_path) as (server, port):
            status, _, body = request(port, "POST", "/annotate/batch",
                                      {"hostnames": hostnames})
        assert status == 200
        assert body["count"] == len(hostnames)
        assert body["asns"] == service.annotate_batch(hostnames)

    def test_keep_alive_reuses_one_connection(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            conn = http.client.HTTPConnection("127.0.0.1", port,
                                              timeout=10)
            try:
                for hostname in zipf_hostnames(n=5, universe=5):
                    conn.request("POST", "/annotate",
                                 body=json.dumps({"hostname": hostname}))
                    response = conn.getresponse()
                    response.read()
                    assert response.status == 200
                    assert not response.will_close
            finally:
                conn.close()

    def test_healthz_and_readyz(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            status, _, body = request(port, "GET", "/healthz")
            assert (status, body["status"]) == (200, "ok")
            status, _, body = request(port, "GET", "/readyz")
            assert (status, body["status"]) == (200, "ready")

    def test_metrics_exposes_prometheus_counters(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            request(port, "POST", "/annotate",
                    {"hostname": "svc01-bench.org"})
            # The http_* instruments are updated *after* the annotate
            # response hits the wire (latency includes the send), so a
            # scrape racing that finally-block may miss them once.
            deadline = time.monotonic() + 5.0
            while True:
                status, headers, body = request(port, "GET", "/metrics")
                if ("repro_http_request_seconds_bucket" in body
                        or time.monotonic() >= deadline):
                    break
                time.sleep(0.01)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_requests" in body
        assert "repro_http_requests" in body
        assert "repro_http_request_seconds_bucket" in body


class TestGuards:
    def test_unknown_path_is_404(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            status, _, _ = request(port, "GET", "/nope")
            assert status == 404

    def test_wrong_method_is_405_with_allow(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            status, headers, _ = request(port, "GET", "/annotate")
            assert status == 405
            assert "POST" in headers["Allow"]
            status, _, _ = request(port, "POST", "/healthz",
                                   {"x": 1})
            assert status == 405

    def test_missing_content_length_is_411(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            status = raw_request(
                port, b"POST /annotate HTTP/1.1\r\n"
                      b"Host: t\r\nConnection: close\r\n\r\n")
            assert status == 411

    def test_bad_json_and_bad_shape_are_400(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            status = raw_request(
                port, b"POST /annotate HTTP/1.1\r\nHost: t\r\n"
                      b"Content-Length: 3\r\n\r\n{{{")
            assert status == 400
            status, _, _ = request(port, "POST", "/annotate",
                                   {"host": "wrong-key"})
            assert status == 400
            status, _, _ = request(port, "POST", "/annotate/batch",
                                   {"hostnames": "not-a-list"})
            assert status == 400

    def test_non_utf8_body_is_400(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            status = raw_request(
                port, b"POST /annotate HTTP/1.1\r\nHost: t\r\n"
                      b"Content-Length: 4\r\n\r\n\xff\xfe\xfd\xfc")
            assert status == 400

    def test_oversized_body_is_413_and_closes(self, conventions_path):
        with live_server(conventions_path, max_body=64) as (server, port):
            conn = http.client.HTTPConnection("127.0.0.1", port,
                                              timeout=10)
            try:
                conn.request("POST", "/annotate/batch", body=json.dumps(
                    {"hostnames": ["x" * 40] * 10}))
                response = conn.getresponse()
                body = json.loads(response.read())
                assert response.status == 413
                assert body["max_body"] == 64
                assert response.will_close
            finally:
                conn.close()

    def test_inflight_budget_gives_429(self, conventions_path):
        with live_server(conventions_path, max_inflight=1) as \
                (server, port):
            assert server.try_begin_request()  # hold the only slot
            try:
                status, headers, _ = request(
                    port, "POST", "/annotate", {"hostname": "a.b"})
                assert status == 429
                assert headers["Retry-After"] == "1"
            finally:
                server.end_request()
            status, _, _ = request(port, "POST", "/annotate",
                                   {"hostname": "a.b"})
            assert status == 200

    def test_health_endpoints_ignore_inflight_budget(self,
                                                     conventions_path):
        with live_server(conventions_path, max_inflight=1) as \
                (server, port):
            assert server.try_begin_request()
            try:
                status, _, _ = request(port, "GET", "/healthz")
                assert status == 200
            finally:
                server.end_request()


class TestDrainState:
    def test_draining_flips_readyz_and_closes_connections(
            self, conventions_path):
        with live_server(conventions_path) as (server, port):
            server.draining.set()
            status, headers, _ = request(port, "GET", "/readyz")
            assert status == 503
            assert headers["Connection"] == "close"
            status, _, body = request(port, "GET", "/healthz")
            assert status == 200
            assert body["draining"] is True
            status, _, _ = request(port, "POST", "/annotate",
                                   {"hostname": "a.b"})
            assert status == 200  # in-flight-style work still answers


class TestReload:
    def test_inline_reload_reflects_new_conventions(self, tmp_path):
        path = tmp_path / "conv.json"
        path.write_text(conventions_to_json(serve_conventions()),
                        encoding="utf-8")
        with live_server(str(path)) as (server, port):
            _, _, before = request(port, "POST", "/annotate",
                                   {"hostname": "svc01-bench.org"})
            path.write_text(
                conventions_to_json(serve_conventions(n_suffixes=8)),
                encoding="utf-8")
            status, _, body = request(port, "POST", "/admin/reload", {})
            assert status == 200
            assert body["reloaded"] is True
            assert body["suffixes"] == 8
            assert server.service.metrics.counter("reloads").value == 1

    def test_reload_with_other_path_is_400(self, conventions_path):
        with live_server(conventions_path) as (server, port):
            status, _, body = request(port, "POST", "/admin/reload",
                                      {"conventions": "/elsewhere.json"})
            assert status == 400
            assert body["conventions"] == conventions_path

    def test_reload_failure_keeps_old_conventions(self, tmp_path):
        path = tmp_path / "conv.json"
        path.write_text(conventions_to_json(serve_conventions()),
                        encoding="utf-8")
        with live_server(str(path)) as (server, port):
            hostname = "svc01-bench.org"
            _, _, before = request(port, "POST", "/annotate",
                                   {"hostname": hostname})
            path.write_text("not json at all", encoding="utf-8")
            status, _, _ = request(port, "POST", "/admin/reload", {})
            assert status == 500
            _, _, after = request(port, "POST", "/annotate",
                                  {"hostname": hostname})
            assert after == before


class TestMetricsDir:
    def test_flush_and_merge(self, tmp_path):
        metrics = MetricsDir(str(tmp_path))
        metrics.flush(0, {"counters": {"requests": 3},
                          "memo": {"size": 1}})
        metrics.flush(1, {"counters": {"requests": 4}})
        metrics.flush(1, {"counters": {"requests": 5}})  # overwrites
        merged = metrics.merged()
        assert merged["counters"]["requests"] == 8

    def test_unreadable_snapshots_are_skipped(self, tmp_path):
        metrics = MetricsDir(str(tmp_path))
        metrics.flush(0, {"counters": {"requests": 2}})
        (tmp_path / "worker-1.json").write_text("{torn",
                                                encoding="utf-8")
        assert metrics.merged()["counters"]["requests"] == 2


class TestConfig:
    def test_validate_rejects_bad_values(self):
        for bad in (HttpConfig(workers=0), HttpConfig(port=70000),
                    HttpConfig(max_body=0), HttpConfig(max_inflight=0),
                    HttpConfig(drain_grace=-1.0)):
            with pytest.raises(ValueError):
                bad.validate()


class TestPreFork:
    """The real process tree: fork, merge, reload, drain."""

    def test_prefork_serves_merges_reloads_and_drains(
            self, conventions_path, tmp_path):
        metrics_out = tmp_path / "merged.json"
        config = HttpConfig(port=0, workers=2,
                            conventions=conventions_path,
                            metrics_out=str(metrics_out),
                            flush_interval=0.0)
        hostnames = zipf_hostnames(n=60, universe=20)
        service = AnnotationService.from_json_file(conventions_path)
        expected = service.annotate_batch(hostnames)
        with ServerProcess(conventions_to_json(serve_conventions()),
                           config) as server:
            # Every worker answers identically (kernel picks which).
            for _ in range(4):
                status, _, body = request(server.port, "POST",
                                          "/annotate/batch",
                                          {"hostnames": hostnames})
                assert status == 200
                assert body["asns"] == expected
            # /metrics merges both workers' registries: whichever
            # worker answers, the merged requests counter covers all
            # four batches above.
            status, _, prom = request(server.port, "GET", "/metrics")
            assert status == 200
            merged_requests = [
                line for line in prom.splitlines()
                if line.startswith("repro_requests ")]
            assert merged_requests
            assert int(float(merged_requests[0].split()[1])) \
                >= 4 * len(hostnames)
            # Reload over HTTP broadcasts via the parent: 202.
            status, _, body = request(server.port, "POST",
                                      "/admin/reload", {})
            assert status == 202
            assert body["workers"] == 2
            code = server.stop()
        assert code == 0
        merged = json.loads(metrics_out.read_text(encoding="utf-8"))
        assert merged["counters"]["requests"] >= 4 * len(hostnames)

    def test_sigterm_drain_grace_keeps_healthz_up(self, conventions_path):
        config = HttpConfig(port=0, workers=2, drain_grace=2.0,
                            drain_timeout=8.0,
                            conventions=conventions_path)
        with ServerProcess(conventions_to_json(serve_conventions()),
                           config) as server:
            assert request(server.port, "GET", "/readyz")[0] == 200
            server.signal(signal.SIGTERM)
            # Within the grace window the workers still accept:
            # readiness reports draining, liveness stays green.
            saw_draining = False
            for _ in range(50):
                try:
                    status, _, _ = request(server.port, "GET", "/readyz")
                except OSError:
                    break
                if status == 503:
                    saw_draining = True
                    health, _, body = request(server.port, "GET",
                                              "/healthz")
                    assert health == 200
                    assert body["draining"] is True
                    break
            assert saw_draining
            assert server.stop() == 0

    def test_single_worker_process_drains_cleanly(self, conventions_path):
        config = HttpConfig(port=0, workers=1,
                            conventions=conventions_path)
        with ServerProcess(conventions_to_json(serve_conventions()),
                           config) as server:
            status, _, body = request(server.port, "POST", "/annotate",
                                      {"hostname": "svc01-bench.org"})
            assert status == 200
            assert server.stop() == 0


# -- shadow deployment over HTTP --------------------------------------------


from repro.bench import shadow_divergence_case  # noqa: E402
from repro.serve.shadow import ShadowService  # noqa: E402


@pytest.fixture(scope="module")
def divergent_world(tmp_path_factory):
    """(primary_path, candidate_path, hostnames, expected) on disk."""
    primary, candidate, hostnames, expected = shadow_divergence_case(n=100)
    root = tmp_path_factory.mktemp("shadow")
    primary_path = root / "primary.json"
    candidate_path = root / "candidate.json"
    primary_path.write_text(conventions_to_json(primary),
                            encoding="utf-8")
    candidate_path.write_text(conventions_to_json(candidate),
                              encoding="utf-8")
    return str(primary_path), str(candidate_path), hostnames, expected


@contextmanager
def live_shadow_server(primary_path, candidate_path, **overrides):
    """An in-thread *shadow-mode* server, wrapped and loaded the same
    way ``_server_process_entry`` does it."""
    service = AnnotationService.from_json_file(primary_path)
    service.warm()
    shadow = ShadowService(service)
    shadow.load_candidate_file(candidate_path)
    config = HttpConfig(port=0, conventions=primary_path,
                        shadow=candidate_path, **overrides)
    sock = create_listener(config.host, 0)
    server = AnnotationHTTPServer(shadow, config, sock=sock)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.01},
                              daemon=True)
    thread.start()
    try:
        yield server, server.server_port
    finally:
        server.shutdown()
        server.server_close()
        thread.join(5)


class TestShadowEndpoints:
    """Single-process shadow sequence: traffic -> report -> promote."""

    def test_load_report_promote_sequence(self, divergent_world):
        primary_path, candidate_path, hostnames, expected = \
            divergent_world
        primary_oracle = AnnotationService.from_json_file(primary_path)
        candidate_oracle = AnnotationService.from_json_file(
            candidate_path)
        with live_shadow_server(primary_path, candidate_path) as \
                (_server, port):
            # Shadowed traffic answers from the primary, byte-identical.
            status, _, body = request(port, "POST", "/annotate/batch",
                                      {"hostnames": hostnames})
            assert status == 200
            assert body["asns"] == primary_oracle.annotate_batch(
                hostnames)
            # The report carries the exact constructed divergence.
            status, _, report = request(port, "GET",
                                        "/admin/shadow/report")
            assert status == 200
            assert report["requests"] == len(hostnames)
            for cls, count in expected.items():
                assert report[cls] == count
            assert report["active"] is True
            assert report["promote_threshold"] is None
            # Promote: inline (single process) -> 200, and answers now
            # match a plain service over the candidate set.
            status, _, body = request(port, "POST",
                                      "/admin/shadow/promote", {})
            assert status == 200
            assert body["promoted"] is True
            assert body["suffixes"] == len(candidate_oracle.index)
            status, _, body = request(port, "POST", "/annotate/batch",
                                      {"hostnames": hostnames})
            assert status == 200
            assert body["asns"] == candidate_oracle.annotate_batch(
                hostnames)
            # The candidate slot is empty now: nothing left to promote.
            status, _, body = request(port, "POST",
                                      "/admin/shadow/promote", {})
            assert status == 409

    def test_promote_gate_refuses_above_threshold(self, divergent_world):
        primary_path, candidate_path, hostnames, _ = divergent_world
        primary_oracle = AnnotationService.from_json_file(primary_path)
        with live_shadow_server(primary_path, candidate_path,
                                promote_threshold=0.01) as (_server,
                                                            port):
            request(port, "POST", "/annotate/batch",
                    {"hostnames": hostnames})
            status, _, body = request(port, "POST",
                                      "/admin/shadow/promote", {})
            assert status == 409
            assert body["disagreement_fraction"] == pytest.approx(0.4)
            assert body["promote_threshold"] == 0.01
            # The refused promote changed nothing.
            status, _, body = request(port, "POST", "/annotate/batch",
                                      {"hostnames": hostnames})
            assert body["asns"] == primary_oracle.annotate_batch(
                hostnames)

    def test_shadow_reload_clears_the_ledger(self, divergent_world):
        primary_path, candidate_path, hostnames, _ = divergent_world
        with live_shadow_server(primary_path, candidate_path) as \
                (_server, port):
            request(port, "POST", "/annotate/batch",
                    {"hostnames": hostnames})
            status, _, body = request(port, "POST", "/admin/shadow", {})
            assert status == 200
            assert body["shadow"] is True
            status, _, report = request(port, "GET",
                                        "/admin/shadow/report")
            assert report["requests"] == 0

    def test_shadow_load_with_other_path_is_400(self, divergent_world):
        primary_path, candidate_path, _, _ = divergent_world
        with live_shadow_server(primary_path, candidate_path) as \
                (_server, port):
            status, _, body = request(port, "POST", "/admin/shadow",
                                      {"candidate": "/elsewhere.json"})
            assert status == 400
            assert body["candidate"] == candidate_path

    def test_shadow_verbs_409_without_shadow_mode(self,
                                                  conventions_path):
        with live_server(conventions_path) as (_server, port):
            assert request(port, "POST", "/admin/shadow", {})[0] == 409
            assert request(port, "POST", "/admin/shadow/promote",
                           {})[0] == 409
            # The report endpoint still answers (inactive, empty).
            status, _, report = request(port, "GET",
                                        "/admin/shadow/report")
            assert status == 200
            assert report["active"] is False


class TestShadowPreFork:
    """The real tree: per-worker ledgers merged, signal-broadcast
    load/promote, post-promote answers identical across workers."""

    def test_shadow_sequence_across_workers(self, divergent_world,
                                            tmp_path):
        primary_path, candidate_path, hostnames, expected = \
            divergent_world
        primary_oracle = AnnotationService.from_json_file(primary_path)
        candidate_oracle = AnnotationService.from_json_file(
            candidate_path)
        primary_json = open(primary_path, encoding="utf-8").read()
        config = HttpConfig(port=0, workers=2,
                            conventions=primary_path,
                            shadow=candidate_path,
                            flush_interval=0.0,
                            metrics_out=str(tmp_path / "merged.json"))
        with ServerProcess(primary_json, config) as server:
            expected_asns = primary_oracle.annotate_batch(hostnames)
            for _ in range(2):
                status, _, body = request(server.port, "POST",
                                          "/annotate/batch",
                                          {"hostnames": hostnames})
                assert status == 200
                assert body["asns"] == expected_asns
            # The merged report sums both workers' ledgers exactly
            # (whichever workers served, 2 batches were shadowed).
            # Workers flush *after* responding, so poll until the
            # sibling's last flush lands (bounded by the flush loop).
            deadline = time.time() + 10
            report = None
            while time.time() < deadline:
                status, _, report = request(server.port, "GET",
                                            "/admin/shadow/report")
                assert status == 200
                assert report["active"] is True
                if report["requests"] == 2 * len(hostnames):
                    break
                time.sleep(0.1)
            assert report["requests"] == 2 * len(hostnames)
            for cls, count in expected.items():
                assert report[cls] == 2 * count
            # Promote broadcasts via the parent: 202, then every
            # worker converges on the candidate set.
            status, _, body = request(server.port, "POST",
                                      "/admin/shadow/promote", {})
            assert status == 202
            assert body["workers"] == 2
            want = candidate_oracle.annotate_batch(hostnames)
            deadline = time.time() + 15
            promoted = 0
            while time.time() < deadline:
                status, _, body = request(server.port, "POST",
                                          "/annotate/batch",
                                          {"hostnames": hostnames})
                if status == 200 and body["asns"] == want:
                    promoted += 1
                    if promoted >= 6:
                        break
                else:
                    promoted = 0
                time.sleep(0.1)
            assert promoted >= 6, "workers never converged on promote"
            assert server.stop() == 0

    def test_prefork_promote_gate_refuses(self, divergent_world):
        primary_path, candidate_path, hostnames, _ = divergent_world
        primary_json = open(primary_path, encoding="utf-8").read()
        config = HttpConfig(port=0, workers=2,
                            conventions=primary_path,
                            shadow=candidate_path,
                            flush_interval=0.0,
                            promote_threshold=0.05)
        with ServerProcess(primary_json, config) as server:
            request(server.port, "POST", "/annotate/batch",
                    {"hostnames": hostnames})
            # Wait for the serving worker's post-response flush to
            # land so the merged gate sees a non-empty ledger.
            deadline = time.time() + 10
            while time.time() < deadline:
                _, _, report = request(server.port, "GET",
                                       "/admin/shadow/report")
                if report["requests"] >= len(hostnames):
                    break
                time.sleep(0.1)
            status, _, body = request(server.port, "POST",
                                      "/admin/shadow/promote", {})
            assert status == 409
            assert body["disagreement_fraction"] > 0.05
            assert server.stop() == 0
