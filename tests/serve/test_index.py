"""Tests for suffix-trie dispatch: plans, trie walk, edge cases, and
equivalence with the PSL-based ``HoihoResult.extract`` path."""

import pytest

from repro.core.evaluate import NCScore
from repro.core.hoiho import Hoiho, HoihoResult
from repro.core.regex_model import Regex
from repro.core.select import LearnedConvention, NCClass
from repro.core.types import TrainingItem
from repro.serve.index import (
    AnnotationPlan,
    DispatchIndex,
    normalize_hostname,
)


def _convention(suffix, patterns, nc_class=NCClass.GOOD):
    return LearnedConvention(
        suffix=suffix, regexes=tuple(Regex.raw(p) for p in patterns),
        score=NCScore(tp=4, matches=4), nc_class=nc_class)


def _index(*conventions):
    return DispatchIndex(AnnotationPlan.from_convention(c)
                         for c in conventions)


EXAMPLE = _convention("example.com",
                      [r"^as(\d+)\.[a-z\d]+\.example\.com$"])


class TestNormalize:
    def test_lowercases_and_strips_dots(self):
        assert normalize_hostname("AS3356.Lon.Example.COM.") == \
            "as3356.lon.example.com"
        assert normalize_hostname("  host.example.com\n") == \
            "host.example.com"

    def test_malformed_inputs_are_none(self):
        assert normalize_hostname("") is None
        assert normalize_hostname(".") is None
        assert normalize_hostname("...") is None
        assert normalize_hostname("   ") is None
        assert normalize_hostname(None) is None
        assert normalize_hostname(42) is None
        assert normalize_hostname(b"example.com") is None

    def test_interleaved_dots_and_whitespace_strip_to_fixpoint(self):
        # Regression: a single strip().strip(".") pass leaves residue
        # when whitespace and dots alternate ("foo.com ." -> "foo.com ")
        # and that residue then poisons memo keys and dispatch lookups.
        assert normalize_hostname("foo.com .") == "foo.com"
        assert normalize_hostname(". .foo.com. .") == "foo.com"
        assert normalize_hostname("\t. host.example.com .\n.") == \
            "host.example.com"

    def test_interleaved_junk_only_is_malformed(self):
        assert normalize_hostname(" . . ") is None
        assert normalize_hostname(". \t.\n. ") is None


class TestAnnotationPlan:
    def test_first_match_wins(self):
        plan = AnnotationPlan("example.com",
                              [r"^as(\d+)\.example\.com$",
                               r"^as(\d+)x?\.example\.com$"])
        assert plan.extract("as100.example.com") == 100

    def test_no_match_is_none(self):
        plan = AnnotationPlan.from_convention(EXAMPLE)
        assert plan.extract("lo0.cr1.example.com") is None

    def test_lazy_compile_and_warm(self):
        plan = AnnotationPlan.from_convention(EXAMPLE)
        assert plan._compiled is None
        plan.warm()
        assert plan._compiled is not None
        assert plan.extract("as64500.lon.example.com") == 64500

    def test_usable_follows_class(self):
        assert AnnotationPlan("a.com", [], NCClass.GOOD).usable
        assert AnnotationPlan("a.com", [], NCClass.PROMISING).usable
        assert not AnnotationPlan("a.com", [], NCClass.POOR).usable


class TestDispatch:
    def test_known_suffix_hits(self):
        index = _index(EXAMPLE)
        assert index.annotate("as3356.lon.example.com") == 3356
        assert index.lookup("as3356.lon.example.com").suffix == \
            "example.com"

    def test_unknown_suffix_misses(self):
        index = _index(EXAMPLE)
        assert index.lookup("as3356.lon.example.net") is None
        assert index.annotate("as3356.lon.example.net") is None
        # Sibling of an indexed label, one level short.
        assert index.lookup("example.com") is not None
        assert index.lookup("com") is None

    def test_trailing_dots_resolve(self):
        index = _index(EXAMPLE)
        assert index.annotate("as3356.lon.example.com.") == 3356
        assert index.annotate("as3356.lon.example.com...") == 3356

    def test_uppercase_labels_resolve(self):
        index = _index(EXAMPLE)
        assert index.annotate("AS3356.LON.EXAMPLE.COM") == 3356
        assert index.annotate("As3356.Lon.Example.Com.") == 3356

    def test_malformed_hostnames_are_misses_not_errors(self):
        index = _index(EXAMPLE)
        for bad in ("", ".", "...", "   ", None, 42, b"x"):
            assert index.annotate(bad) is None
            assert index.lookup(bad) is None

    def test_deepest_suffix_wins(self):
        shallow = _convention("example.com", [r"^h(\d+)\.example\.com$"])
        deep = _convention("sub.example.com",
                           [r"^h(\d+)\.sub\.example\.com$"])
        index = _index(shallow, deep)
        assert index.lookup("h1.sub.example.com").suffix == \
            "sub.example.com"
        assert index.lookup("h1.other.example.com").suffix == "example.com"

    def test_add_replaces_existing_plan(self):
        index = _index(EXAMPLE)
        replacement = AnnotationPlan("example.com",
                                     [r"^x(\d+)\.example\.com$"])
        index.add(replacement)
        assert len(index) == 1
        assert index.lookup("x9.example.com") is replacement

    def test_add_rejects_unindexable_suffix(self):
        with pytest.raises(ValueError):
            DispatchIndex().add(AnnotationPlan("", []))

    def test_suffixes_and_plan_for(self):
        index = _index(EXAMPLE, _convention("nts.ch", [r"^as(\d+)\.nts\.ch$"]))
        assert index.suffixes() == ["example.com", "nts.ch"]
        assert index.plan_for("NTS.CH").suffix == "nts.ch"
        assert index.plan_for("other.org") is None

    def test_warm_compiles_every_plan(self):
        index = _index(EXAMPLE, _convention("nts.ch", [r"^as(\d+)\.nts\.ch$"]))
        assert index.warm() == 2
        for suffix in index.suffixes():
            assert index.plan_for(suffix)._compiled is not None

    def test_from_result_usable_only_drops_poor(self):
        result = HoihoResult()
        result.conventions["good.com"] = EXAMPLE
        result.conventions["poor.com"] = _convention(
            "poor.com", [r"^(\d+)\.poor\.com$"], NCClass.POOR)
        assert len(DispatchIndex.from_result(result)) == 2
        index = DispatchIndex.from_result(result, usable_only=True)
        assert index.suffixes() == ["example.com"]


class TestPslExceptionRules:
    """PSL wildcard/exception (``!``) semantics must survive dispatch.

    The embedded PSL has ``*.ck`` with the exception ``!www.ck``:
    ``www.ck`` is registerable (a learnable suffix) while any other
    ``x.ck`` is itself a public suffix (so ``foo.x.ck`` registers
    ``foo.x.ck``, not ``x.ck``).
    """

    def test_exception_suffix_dispatches(self):
        conv = _convention("www.ck", [r"^as(\d+)\.[a-z]+\.www\.ck$"])
        index = _index(conv)
        assert index.annotate("as64500.gw.www.ck") == 64500
        # Other *.ck domains walk past the www node without matching.
        assert index.lookup("as64500.gw.foo.ck") is None
        assert index.lookup("www.ck").suffix == "www.ck"

    def test_learner_keys_under_exception_rule_reach_service(self):
        # Training names under www.ck group under the exception's
        # registered domain; the resulting convention must dispatch.
        items = [TrainingItem("as%d.pop%d.www.ck" % (asn, i % 3), asn)
                 for i, asn in enumerate([3356, 1299, 174, 2914, 6453])]
        result = Hoiho().run(items)
        assert "www.ck" in result.conventions
        index = DispatchIndex.from_result(result)
        assert index.annotate("as8075.pop7.www.ck") == 8075
        assert index.annotate("as8075.pop7.other.ck") is None


class TestEquivalenceWithPslPath:
    """For learner-produced conventions, trie dispatch must agree with
    the linear ``HoihoResult.extract`` path on normalised hostnames."""

    def _learned_result(self):
        items = []
        for i, asn in enumerate([3356, 1299, 174, 2914, 6453]):
            items.append(TrainingItem(
                "as%d.lon%d.example.com" % (asn, i % 3), asn))
            items.append(TrainingItem(
                "r%d.as%d.example.co.uk" % (i % 2, asn), asn))
            items.append(TrainingItem(
                "as%d.pop%d.www.ck" % (asn, i % 3), asn))
        return Hoiho().run(items)

    def test_agreement_on_probe_hostnames(self):
        result = self._learned_result()
        assert len(result.conventions) == 3
        index = DispatchIndex.from_result(result)
        probes = [
            "as8075.lon9.example.com",      # hit
            "lo0.cr1.example.com",          # known suffix, no match
            "r1.as8075.example.co.uk",      # hit under multi-label PSL
            "as8075.pop1.www.ck",           # hit under !-exception
            "as8075.pop1.foo.ck",           # *.ck wildcard: not www.ck
            "as8075.lon1.example.net",      # unknown suffix
            "example.com",                  # bare registered domain
            "com",                          # bare public suffix
        ]
        for hostname in probes:
            assert index.annotate(hostname) == result.extract(hostname), \
                hostname

    def test_trie_beats_psl_path_on_unnormalised_forms(self):
        # The service normalises; the historical path does not.  The
        # trie answer for the FQDN form equals the PSL answer for the
        # canonical form.
        result = self._learned_result()
        index = DispatchIndex.from_result(result)
        assert index.annotate("AS8075.LON9.EXAMPLE.COM.") == \
            result.extract("as8075.lon9.example.com")
