"""Fault-injection acceptance suite for resumable bulk annotation.

Proves the three end-to-end robustness claims:

a. a worker crash mid-annotate is absorbed and the output is
   byte-identical to an unfaulted serial run;
b. a poison chunk is dead-lettered (annotated as misses, counted in the
   ``errors`` counter) without aborting the stream;
c. a run killed mid-flight and rerun with the same ``--checkpoint``
   resumes and produces byte-identical output.

Pool-backed tests are marked slow (CI's fault-injection job and
``pytest -m slow`` run them); the checkpoint tests run in tier 1.
"""

import io
import json

import pytest

from repro.cli import main
from repro.core.hoiho import Hoiho
from repro.core.parallel import ParallelConfig
from repro.core.resilience import ENV_FAULT_INJECT, RetryPolicy
from repro.core.types import TrainingItem
from repro.serve.engine import SITE_BULK_ANNOTATE, Checkpoint
from repro.serve.service import AnnotationService
from repro.serve import BulkAnnotator

TWO_WORKERS = ParallelConfig(workers=2, backend="process")
FAST_RETRY = RetryPolicy(backoff_base=0.0)


def learned_result():
    return Hoiho().run([
        TrainingItem("as%d.pop%d.example.com" % (asn, i % 3), asn)
        for i, asn in enumerate([3356, 1299, 174, 2914, 6453])])


def workload(n=48):
    hostnames = []
    for i in range(n):
        if i % 4 == 3:
            hostnames.append("miss%d.unknown.net" % i)
        else:
            hostnames.append("as%d.pop%d.example.com" % (100 + i, i % 3))
    return hostnames


def serial_baseline(result, hostnames, fmt="tsv"):
    out = io.StringIO()
    summary = BulkAnnotator(AnnotationService(result),
                            chunk_size=8).annotate_to(
        iter(hostnames), out, fmt=fmt)
    return out.getvalue(), summary


@pytest.mark.slow
class TestCrashRecovery:
    def test_crash_mid_annotate_is_byte_identical(self, monkeypatch):
        # Acceptance (a): kill the worker handling chunk 2 on its first
        # attempt; the pool is rebuilt, the chunk replayed, and the
        # output matches the unfaulted serial run byte for byte.
        result = learned_result()
        hostnames = workload()
        baseline, base_summary = serial_baseline(result, hostnames)
        monkeypatch.setenv(ENV_FAULT_INJECT,
                           "%s:2:crash:0" % SITE_BULK_ANNOTATE)
        service = AnnotationService(result)
        annotator = BulkAnnotator(service, parallel=TWO_WORKERS,
                                  chunk_size=8, retry=FAST_RETRY)
        out = io.StringIO()
        summary = annotator.annotate_to(iter(hostnames), out)
        assert out.getvalue() == baseline
        assert summary == base_summary
        assert annotator.dead_letters == []
        assert service.metrics.counter("errors").value == 0
        assert service.metrics.counter("retries").value >= 1

    def test_unfaulted_parallel_matches_serial(self):
        result = learned_result()
        hostnames = workload()
        baseline, base_summary = serial_baseline(result, hostnames,
                                                 fmt="jsonl")
        out = io.StringIO()
        summary = BulkAnnotator(
            AnnotationService(result), parallel=TWO_WORKERS, chunk_size=8,
            retry=FAST_RETRY).annotate_to(iter(hostnames), out, fmt="jsonl")
        assert out.getvalue() == baseline
        assert summary == base_summary


@pytest.mark.slow
class TestDeadLetters:
    def test_poison_chunk_dead_lettered_not_fatal(self, monkeypatch):
        # Acceptance (b): chunk 1 fails on every attempt; it must be
        # recorded, annotated as misses, and counted in ``errors``
        # while every other chunk annotates normally.
        monkeypatch.setenv(ENV_FAULT_INJECT,
                           "%s:1:raise" % SITE_BULK_ANNOTATE)
        result = learned_result()
        hostnames = workload()
        service = AnnotationService(result)
        annotator = BulkAnnotator(service, parallel=TWO_WORKERS,
                                  chunk_size=8, retry=FAST_RETRY)
        out = io.StringIO()
        summary = annotator.annotate_to(iter(hostnames), out)
        assert summary["requests"] == len(hostnames)
        assert summary["errors"] == 8
        assert len(annotator.dead_letters) == 1
        dead = annotator.dead_letters[0]
        assert dead.index == 1
        assert dead.hostnames == hostnames[8:16]
        assert dead.attempts == FAST_RETRY.max_attempts
        assert "InjectedFault" in dead.error
        lines = out.getvalue().splitlines()
        assert len(lines) == len(hostnames)       # stream completed
        assert all(line.endswith("\t-") for line in lines[8:16])
        # metrics: dead-lettered hostnames count as requests + misses
        # + errors, retried dispatches show up in ``retries``
        counters = service.metrics
        assert counters.counter("errors").value == 8
        assert counters.counter("requests").value == len(hostnames)
        assert counters.counter("retries").value == \
            FAST_RETRY.max_attempts - 1


class TestCheckpointResume:
    def test_interrupted_run_resumes_byte_identically(self, tmp_path):
        # Acceptance (c): a run killed after three chunks -- with a
        # torn line from a mid-write kill -- resumes from the sidecar
        # and converges on the exact serial bytes.
        result = learned_result()
        hostnames = workload()
        baseline, base_summary = serial_baseline(result, hostnames)
        out_path = tmp_path / "out.tsv"
        checkpoint = Checkpoint(tmp_path / "progress.json")

        lines = baseline.splitlines(True)
        annotated_24 = sum(1 for line in lines[:24]
                           if not line.rstrip("\n").endswith("\t-"))
        checkpoint.record(requests=24, annotated=annotated_24, errors=0,
                          fmt="tsv", chunk_size=8)
        out_path.write_text("".join(lines[:24]) + "as1",  # torn tail
                            encoding="utf-8")

        with open(out_path, "r+", encoding="utf-8") as out:
            summary = BulkAnnotator(
                AnnotationService(result), chunk_size=8).annotate_to(
                iter(hostnames), out, checkpoint=checkpoint)
        assert out_path.read_text(encoding="utf-8") == baseline
        assert summary == base_summary
        state = json.loads(checkpoint.path.read_text(encoding="utf-8"))
        assert state["complete"] is True
        assert state["requests"] == len(hostnames)

    def test_complete_run_resumes_as_noop(self, tmp_path):
        result = learned_result()
        hostnames = workload()
        out_path = tmp_path / "out.tsv"
        checkpoint = Checkpoint(tmp_path / "progress.json")
        with open(out_path, "w", encoding="utf-8") as out:
            first = BulkAnnotator(
                AnnotationService(result), chunk_size=8).annotate_to(
                iter(hostnames), out, checkpoint=checkpoint)
        baseline = out_path.read_text(encoding="utf-8")
        with open(out_path, "r+", encoding="utf-8") as out:
            second = BulkAnnotator(
                AnnotationService(result), chunk_size=8).annotate_to(
                iter(hostnames), out, checkpoint=checkpoint)
        assert out_path.read_text(encoding="utf-8") == baseline
        assert second == first

    def test_format_mismatch_rejected(self, tmp_path):
        result = learned_result()
        checkpoint = Checkpoint(tmp_path / "progress.json")
        checkpoint.record(requests=0, annotated=0, errors=0,
                          fmt="tsv", chunk_size=8)
        with pytest.raises(ValueError, match="cannot resume"):
            BulkAnnotator(AnnotationService(result)).annotate_to(
                [], io.StringIO(), fmt="jsonl", checkpoint=checkpoint)

    def test_truncated_sidecar_is_an_error(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "progress.json")
        checkpoint.path.write_text('{"requests": 4}', encoding="utf-8")
        with pytest.raises(ValueError, match="missing"):
            checkpoint.load()

    def test_output_shorter_than_checkpoint_rejected(self, tmp_path):
        result = learned_result()
        checkpoint = Checkpoint(tmp_path / "progress.json")
        checkpoint.record(requests=99, annotated=99, errors=0,
                          fmt="tsv", chunk_size=8)
        out_path = tmp_path / "out.tsv"
        out_path.write_text("one.line\t-\n", encoding="utf-8")
        with open(out_path, "r+", encoding="utf-8") as out:
            with pytest.raises(ValueError, match="fewer lines"):
                BulkAnnotator(AnnotationService(result)).annotate_to(
                    workload(), out, checkpoint=checkpoint)

    def test_unseekable_output_rejected(self, tmp_path):
        result = learned_result()
        checkpoint = Checkpoint(tmp_path / "progress.json")
        checkpoint.record(requests=1, annotated=1, errors=0,
                          fmt="tsv", chunk_size=8)

        class Pipe(io.StringIO):
            def seekable(self):
                return False
        with pytest.raises(ValueError, match="seekable"):
            BulkAnnotator(AnnotationService(result)).annotate_to(
                workload(), Pipe(), checkpoint=checkpoint)


class TestCliFaultFlags:
    def _conventions_file(self, tmp_path, capsys):
        training = tmp_path / "train.txt"
        training.write_text(
            "as3356.lon1.example.com 3356\n"
            "as1299.lon2.example.com 1299\n"
            "as174.fra1.example.com 174\n"
            "as2914.fra2.example.com 2914\n"
            "as6453.ams1.example.com 6453\n", encoding="utf-8")
        saved = tmp_path / "conv.json"
        assert main(["learn", "--hostnames", str(training),
                     "--save", str(saved)]) == 0
        capsys.readouterr()
        return saved

    def test_negative_jobs_rejected(self, tmp_path, capsys):
        # Regression (satellite): --jobs -1 used to silently run
        # serially; now it is a usage error.
        saved = self._conventions_file(tmp_path, capsys)
        targets = tmp_path / "targets.txt"
        targets.write_text("as1.ams1.example.com\n", encoding="utf-8")
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", str(targets), "--jobs", "-1"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_negative_retries_rejected(self, tmp_path, capsys):
        saved = self._conventions_file(tmp_path, capsys)
        targets = tmp_path / "targets.txt"
        targets.write_text("as1.ams1.example.com\n", encoding="utf-8")
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", str(targets), "--retries", "-1"]) == 2
        assert "retries" in capsys.readouterr().err

    def test_checkpoint_requires_out_file(self, tmp_path, capsys):
        saved = self._conventions_file(tmp_path, capsys)
        targets = tmp_path / "targets.txt"
        targets.write_text("as1.ams1.example.com\n", encoding="utf-8")
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", str(targets),
                     "--checkpoint", str(tmp_path / "ck.json")]) == 2
        assert "--out" in capsys.readouterr().err

    def test_checkpoint_round_trip(self, tmp_path, capsys):
        saved = self._conventions_file(tmp_path, capsys)
        targets = tmp_path / "targets.txt"
        targets.write_text(
            "".join("as%d.ams%d.example.com\n" % (100 + i, i % 4)
                    for i in range(20)), encoding="utf-8")
        base = tmp_path / "base.tsv"
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", str(targets), "--chunk-size", "4",
                     "--out", str(base)]) == 0
        capsys.readouterr()

        # interrupted run: two durable chunks plus a torn third line
        out = tmp_path / "resumed.tsv"
        checkpoint = tmp_path / "ck.json"
        lines = base.read_text(encoding="utf-8").splitlines(True)
        out.write_text("".join(lines[:8]) + "as10", encoding="utf-8")
        Checkpoint(checkpoint).record(requests=8, annotated=8, errors=0,
                                      fmt="tsv", chunk_size=4)
        assert main(["annotate", "--conventions", str(saved),
                     "--hostnames", str(targets), "--chunk-size", "4",
                     "--out", str(out),
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert out.read_text(encoding="utf-8") == \
            base.read_text(encoding="utf-8")
        assert json.loads(checkpoint.read_text(
            encoding="utf-8"))["complete"] is True
