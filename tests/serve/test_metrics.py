"""Tests for the serving metrics primitives."""

import pytest

from repro.serve.metrics import (
    Counter,
    Histogram,
    LabelledCounter,
    MetricsRegistry,
    merge_outcomes,
    render_snapshot,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("requests").inc(-1)


class TestLabelledCounter:
    def test_per_label_counts(self):
        family = LabelledCounter("extracted")
        family.inc("example.com")
        family.inc("example.com")
        family.inc("nts.ch")
        assert family.values == {"example.com": 2, "nts.ch": 1}

    def test_top_orders_by_count_then_name(self):
        family = LabelledCounter("extracted")
        family.inc("b.net", 3)
        family.inc("a.net", 3)
        family.inc("c.net", 9)
        assert family.top(2) == [("c.net", 9), ("a.net", 3)]

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            LabelledCounter("extracted").inc("x", -2)


class TestHistogram:
    def test_mean_and_count(self):
        hist = Histogram("latency", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(5.0 / 3.0)
        assert hist.minimum == 0.5
        assert hist.maximum == 3.0

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("latency", bounds=(1.0, 2.0))
        for _ in range(100):
            hist.observe(1.5)        # all in the (1.0, 2.0] bucket
        # The p50 estimate must land inside that bucket.
        assert 1.0 <= hist.percentile(0.50) <= 2.0
        assert 1.0 <= hist.percentile(0.99) <= 2.0

    def test_percentile_orders_across_buckets(self):
        hist = Histogram("latency", bounds=(1.0, 2.0, 4.0, 8.0))
        for _ in range(90):
            hist.observe(0.5)
        for _ in range(10):
            hist.observe(6.0)
        assert hist.percentile(0.50) <= 1.0
        assert hist.percentile(0.99) > 4.0

    def test_overflow_reports_observed_maximum(self):
        hist = Histogram("latency", bounds=(1.0,))
        hist.observe(50.0)
        assert hist.overflow == 1
        assert hist.percentile(0.99) == 50.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("latency").percentile(0.5) == 0.0

    def test_rejects_bad_fractions_and_bounds(self):
        with pytest.raises(ValueError):
            Histogram("latency").percentile(0.0)
        with pytest.raises(ValueError):
            Histogram("latency").percentile(1.5)
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))


class TestRegistry:
    def test_instruments_keep_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("requests") is registry.counter("requests")
        assert registry.histogram("lat") is registry.histogram("lat")
        assert registry.labelled("by") is registry.labelled("by")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.labelled("extracted").inc("example.com")
        registry.histogram("latency_seconds").observe(0.001)
        snap = registry.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["labelled"] == {"extracted": {"example.com": 1}}
        hist = snap["histograms"]["latency_seconds"]
        assert hist["count"] == 1
        assert set(hist["percentiles"]) == {"p50", "p90", "p99"}

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc(5)
        registry.labelled("extracted").inc("x.net")
        registry.histogram("latency_seconds").observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("requests") is counter
        assert registry.labelled("extracted").values == {}
        assert registry.histogram("latency_seconds").count == 0

    def test_render_round_trips_through_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(7)
        registry.labelled("extracted").inc("example.com", 4)
        registry.histogram("latency_seconds").observe(0.002)
        text = registry.render()
        assert text == render_snapshot(registry.snapshot())
        assert "requests" in text
        assert "example.com" in text
        assert "latency_seconds" in text

    def test_render_snapshot_handles_empty_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("latency_seconds")
        assert "(no samples)" in registry.render()


class TestMergeOutcomes:
    def test_aggregates_bulk_chunk(self):
        registry = MetricsRegistry()
        merge_outcomes(registry, requests=10, annotated=7)
        merge_outcomes(registry, requests=5, annotated=5)
        assert registry.counter("requests").value == 15
        assert registry.counter("annotated").value == 12
        assert registry.counter("misses").value == 3


class TestMergeSnapshot:
    def _observed(self, values, bounds=(1.0, 2.0, 4.0)):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", bounds)
        for value in values:
            hist.observe(value)
        return registry

    def test_counters_and_labels_add(self):
        left = MetricsRegistry()
        left.counter("requests").inc(10)
        left.labelled("extracted").inc("a.net", 3)
        right = MetricsRegistry()
        right.counter("requests").inc(5)
        right.counter("misses").inc(2)
        right.labelled("extracted").inc("a.net", 1)
        right.labelled("extracted").inc("b.net", 4)
        left.merge_snapshot(right.snapshot())
        assert left.counter("requests").value == 15
        assert left.counter("misses").value == 2
        assert left.labelled("extracted").values == {"a.net": 4,
                                                     "b.net": 4}

    def test_histogram_buckets_add_bucket_by_bucket(self):
        left = self._observed([0.5, 1.5])
        right = self._observed([1.0, 3.0, 2.5])
        left.merge_snapshot(right.snapshot())
        hist = left.histogram("latency_seconds", (1.0, 2.0, 4.0))
        # 0.5 and the *tie* 1.0 in bucket 0 (upper-inclusive edges),
        # 1.5 in bucket 1, 2.5 and 3.0 in bucket 2.
        assert hist.buckets == [2, 1, 2]
        assert hist.count == 5
        assert hist.total == pytest.approx(8.5)
        assert hist.minimum == 0.5
        assert hist.maximum == 3.0

    def test_bucket_edge_sample_stays_in_its_bucket(self):
        # A worker observed exactly bounds[1]; after the merge it must
        # still be in bucket 1, not pushed into bucket 2.
        left = self._observed([])
        right = self._observed([2.0])
        assert right.histogram("latency_seconds",
                               (1.0, 2.0, 4.0)).buckets == [0, 1, 0]
        left.merge_snapshot(right.snapshot())
        assert left.histogram("latency_seconds",
                              (1.0, 2.0, 4.0)).buckets == [0, 1, 0]

    def test_overflow_bin_aligns(self):
        left = self._observed([9.0])
        right = self._observed([7.0, 100.0])
        left.merge_snapshot(right.snapshot())
        hist = left.histogram("latency_seconds", (1.0, 2.0, 4.0))
        assert hist.overflow == 3
        assert hist.count == 3
        assert hist.maximum == 100.0
        # Percentiles past the last bound report the observed maximum.
        assert hist.percentile(0.99) == 100.0

    def test_merge_into_empty_registry_recreates_instruments(self):
        source = self._observed([0.5, 3.0])
        source.counter("requests").inc(2)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_is_additive_over_repeats(self):
        source = self._observed([1.5])
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        target.merge_snapshot(source.snapshot())
        hist = target.histogram("latency_seconds", (1.0, 2.0, 4.0))
        assert hist.count == 2
        assert hist.buckets == [0, 2, 0]

    def test_mismatched_bounds_raise(self):
        left = self._observed([0.5], bounds=(1.0, 2.0))
        right = self._observed([0.5], bounds=(1.0, 2.0, 4.0))
        with pytest.raises(ValueError):
            left.merge_snapshot(right.snapshot())

    def test_ignores_non_instrument_keys(self):
        registry = MetricsRegistry()
        registry.merge_snapshot({"counters": {"requests": 1},
                                 "memo": {"size": 3},
                                 "fused_plans": 7,
                                 "suffixes_indexed": 24})
        assert registry.counter("requests").value == 1
        assert "memo" not in registry.snapshot()

    def test_percentiles_survive_merge(self):
        shards = [self._observed([0.2 * i]) for i in range(1, 11)]
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge_snapshot(shard.snapshot())
        direct = self._observed([0.2 * i for i in range(1, 11)])
        hist = merged.histogram("latency_seconds", (1.0, 2.0, 4.0))
        expected = direct.histogram("latency_seconds", (1.0, 2.0, 4.0))
        assert hist.buckets == expected.buckets
        for fraction in (0.5, 0.9, 0.99):
            assert hist.percentile(fraction) == \
                pytest.approx(expected.percentile(fraction))
