"""Tests for fused-regex matchers: equivalence with the sequential
first-match loop, every fallback condition, and thread-safe lazy
compilation (complete-then-publish)."""

import re
import threading

from repro.core.hoiho import Hoiho
from repro.core.types import TrainingItem
from repro.serve.index import (
    MAX_FUSED_GROUPS,
    AnnotationPlan,
    DispatchIndex,
    _FusedMatcher,
    _SequentialMatcher,
    fuse_patterns,
)

PATTERNS = (
    r"^as(\d+)-et\d+\.pop\d+\.example\.com$",
    r"^(\d+)\.cr\d+\.example\.com$",
    r"^asn-(\d+)(-old)?\.example\.com$",
)

HOSTNAMES = [
    "as3356-et0.pop1.example.com",
    "1299.cr2.example.com",
    "asn-174.example.com",
    "asn-2914-old.example.com",
    "asn-2914-new.example.com",       # miss: suffix known, no match
    "www.example.com",                # miss
    "as3356-et0.pop1.example.net",    # wrong suffix
]


def plan_pair(patterns=PATTERNS):
    """The same plan compiled fused and pinned sequential."""
    return (AnnotationPlan("example.com", patterns, fuse=True),
            AnnotationPlan("example.com", patterns, fuse=False))


class TestFusion:
    def test_multi_pattern_plan_fuses(self):
        fused, sequential = plan_pair()
        assert fused.fused is True
        assert isinstance(fused.matcher, _FusedMatcher)
        assert sequential.fused is False
        assert isinstance(sequential.matcher, _SequentialMatcher)

    def test_fused_equals_sequential_on_corpus(self):
        fused, sequential = plan_pair()
        for hostname in HOSTNAMES:
            assert fused.extract(hostname) == sequential.extract(hostname), \
                hostname

    def test_first_match_wins_like_sequential(self):
        # Both patterns match "as11-22.example.com" but extract
        # different numbers; alternation order must preserve the
        # sequential first-match-wins semantics.
        patterns = (r"^as(\d+)-\d+\.example\.com$",
                    r"^as\d+-(\d+)\.example\.com$")
        fused, sequential = plan_pair(patterns)
        assert sequential.extract("as11-22.example.com") == 11
        assert fused.extract("as11-22.example.com") == 11
        assert fused.fused is True

    def test_later_branch_recovers_shifted_group(self):
        # The winning branch's ASN group sits at a shifted offset; a
        # match on the last alternative must read the right group.
        fused, _ = plan_pair()
        assert fused.extract("asn-2914-old.example.com") == 2914

    def test_miss_returns_none(self):
        fused, _ = plan_pair()
        assert fused.extract("no-such-host.example.com") is None

    def test_scoped_inline_flag_stays_fused(self):
        patterns = (r"^(?i:AS)(\d+)\.example\.com$",
                    r"^(\d+)\.cr\d+\.example\.com$")
        plan = AnnotationPlan("example.com", patterns)
        assert plan.fused is True
        assert plan.extract("as65000.example.com") == 65000


class TestFallbacks:
    """Every condition that pins a plan to the sequential loop."""

    def test_single_pattern_is_not_fused(self):
        plan = AnnotationPlan("example.com", PATTERNS[:1])
        assert plan.fused is False
        assert plan.extract("as3356-et0.pop1.example.com") == 3356

    def test_zero_group_pattern_falls_back(self):
        plan = AnnotationPlan("example.com",
                              (r"^as\d+\.example\.com$",) + PATTERNS[:1])
        assert plan.fused is False

    def test_global_inline_flag_falls_back(self):
        plan = AnnotationPlan("example.com",
                              (r"(?i)^as(\d+)\.example\.com$",) + PATTERNS[:1])
        assert plan.fused is False
        # Semantics preserved: the flagged pattern still matches.
        assert plan.extract("AS100.example.com".lower()) == 100

    def test_numbered_backref_falls_back(self):
        plan = AnnotationPlan(
            "example.com",
            (r"^(\d+)-\1\.example\.com$",) + PATTERNS[:1])
        assert plan.fused is False
        assert plan.extract("42-42.example.com") == 42

    def test_named_backref_falls_back(self):
        plan = AnnotationPlan(
            "example.com",
            (r"^(?P<a>\d+)x(?P=a)\.example\.com$",) + PATTERNS[:1])
        assert plan.fused is False

    def test_conditional_group_falls_back(self):
        plan = AnnotationPlan(
            "example.com",
            (r"^(\d+)(-)?(?(2)old)\.example\.com$",) + PATTERNS[:1])
        assert plan.fused is False

    def test_duplicate_named_groups_fall_back(self):
        # Each pattern alone is valid; fusing them would collide on the
        # group name, which only re.compile of the alternation catches.
        plan = AnnotationPlan(
            "example.com",
            (r"^as(?P<asn>\d+)\.example\.com$",
             r"^(?P<asn>\d+)\.cr\d+\.example\.com$"))
        assert plan.fused is False
        assert plan.extract("as7018.example.com") == 7018
        assert plan.extract("7018.cr1.example.com") == 7018

    def test_group_budget_falls_back(self):
        many = tuple(r"^p%d-(\d+)\.example\.com$" % i
                     for i in range(MAX_FUSED_GROUPS))
        assert fuse_patterns(many,
                             tuple(re.compile(p) for p in many)) is None
        plan = AnnotationPlan("example.com", many)
        assert plan.fused is False
        assert plan.extract("p61-3356.example.com") == 3356

    def test_fuse_flag_false_pins_sequential(self):
        plan = AnnotationPlan("example.com", PATTERNS, fuse=False)
        assert plan.fused is False
        assert isinstance(plan.matcher, _SequentialMatcher)

    def test_from_result_fuse_false_pins_every_plan(self):
        result = Hoiho().run([
            TrainingItem("as%d.pop%d.example.com" % (a, i % 3), a)
            for i, a in enumerate([3356, 1299, 174, 2914, 6453])])
        index = DispatchIndex.from_result(result, fuse=False)
        assert index.fused_plans() == 0
        for suffix in index.suffixes():
            assert index.plan_for(suffix).fused is False


class TestFusePatterns:
    def test_returns_none_below_two_patterns(self):
        assert fuse_patterns((), ()) is None
        assert fuse_patterns(PATTERNS[:1],
                             (re.compile(PATTERNS[0]),)) is None

    def test_fused_group_bases_are_original_group_ones(self):
        compiled = tuple(re.compile(p) for p in PATTERNS)
        matcher = fuse_patterns(PATTERNS, compiled)
        assert matcher is not None
        # p1 has 1 group, p2 has 1 group, p3 has 2 groups; each
        # alternative adds a wrapping group.
        assert matcher.bases == (1, 3, 5)
        assert matcher.regex.groups == 7


class TestLazyCompilation:
    def test_warm_compiles_matcher(self):
        plan = AnnotationPlan("example.com", PATTERNS)
        assert plan._matcher is None
        plan.warm()
        assert plan._matcher is not None
        assert plan._compiled is not None

    def test_index_warm_warms_all_plans(self):
        plans = [AnnotationPlan("example%d.com" % i, PATTERNS)
                 for i in range(3)]
        index = DispatchIndex(plans)
        assert index.warm() == 3
        assert all(plan._matcher is not None for plan in plans)

    def test_concurrent_first_access_is_safe(self):
        # Complete-then-publish: racing threads may each compile, but
        # every reader sees either None or a complete matcher and all
        # extractions agree.
        plan = AnnotationPlan("example.com", PATTERNS)
        barrier = threading.Barrier(8)
        results = []
        errors = []

        def hammer():
            barrier.wait()
            try:
                for _ in range(50):
                    results.append(plan.extract("1299.cr2.example.com"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert set(results) == {1299}
        assert plan.fused is True
