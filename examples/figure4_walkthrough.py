#!/usr/bin/env python3
"""Watch the four learning phases reproduce the paper's figure 4.

The paper's worked example shows how candidate regexes for equinix.com
gain specificity and coverage through four phases.  This example runs
the learner with tracing enabled and prints the same story: the base
regexes and their ATP scores, the phase-2 merge, the phase-3 character
classes, the candidate conventions, and the final selection.

Run:  python examples/figure4_walkthrough.py
"""

from repro.core.hoiho import learn_suffix_traced
from repro.core.types import SuffixDataset
from repro.paperdata import FIGURE4_ITEMS


def main() -> None:
    dataset = SuffixDataset("equinix.com", FIGURE4_ITEMS)
    convention, trace = learn_suffix_traced(dataset)
    assert convention is not None and trace is not None

    print("Phase 1: %d base regexes generated; best by ATP:"
          % trace.phase1_generated)
    for regex, score in trace.best_phase1(6):
        print("  ATP %+4d  TP %2d FP %d FN %d   %s"
              % (score.atp, score.tp, score.fp, score.fn, regex.pattern))

    print("\nPhase 2: merged regexes (or-groups over differing literals):")
    for regex, score in trace.phase2_added[:4]:
        print("  ATP %+4d  %s" % (score.atp, regex.pattern))

    print("\nPhase 3: character classes embedded:")
    for regex, score in trace.phase3_added[:4]:
        print("  ATP %+4d  %s" % (score.atp, regex.pattern))

    print("\nPhase 4: top candidate conventions (regex sets):")
    for regexes, score in trace.conventions[:4]:
        print("  ATP %+4d  matches %2d  %s"
              % (score.atp, score.matches,
                 "  |  ".join(r.pattern for r in regexes)))

    print("\nSelected (the paper's NC #7):")
    for pattern in convention.patterns():
        print("  %s" % pattern)
    print("score: TP=%d FP=%d FN=%d ATP=%d (figure 4 reports "
          "TP=11 FP=3 ATP=8)" % (convention.score.tp,
                                 convention.score.fp,
                                 convention.score.fn,
                                 convention.score.atp))


if __name__ == "__main__":
    main()
