#!/usr/bin/env python3
"""DRoP-style geolocation hints, validated by delay (section 2.2).

Operators embed metro codes in router names (``xe0.cr1.fra2.example.net``).
DRoP (Huffaker et al. 2014) learns which hostname position carries the
code and keeps only hints consistent with physics: a router cannot
answer a vantage point faster than light crosses the claimed distance.
This example learns geo conventions from a synthetic ITDK, shows a
hostname whose (stale) code the delay test catches, and measures
accuracy against the world's true router locations.

Run:  python examples/geolocation.py
"""

from repro import METHOD_BDRMAPIT, SnapshotSpec, WorldConfig, \
    generate_world, run_snapshot
from repro.core.geohint import geo_items_from_traces, learn_geo_conventions
from repro.topology import geo
from repro.traceroute.routing import RoutingModel


def main() -> None:
    world = generate_world(2020, WorldConfig.small())
    routing = RoutingModel(world.graph)
    result = run_snapshot(world, SnapshotSpec(
        label="2020-01", year=2020.0, method=METHOD_BDRMAPIT, n_vps=25,
        seed=11), routing)

    conventions = learn_geo_conventions(result.snapshot.hostnames,
                                        result.traces)
    print("learned %d geolocation conventions\n" % len(conventions))
    for suffix, convention in sorted(conventions.items())[:5]:
        print("%-22s %s" % (suffix, convention.regex.pattern))
        print("   %d location codes, consistency %.0f%%"
              % (len(convention.codes),
                 100 * convention.score.consistency))

    # Accuracy against ground truth.
    checked = correct = 0
    wrong_examples = []
    for address, hostname in result.snapshot.named_addresses():
        iface = world.topology.interfaces_by_address.get(address)
        if iface is None:
            continue
        for suffix, convention in conventions.items():
            if hostname.endswith("." + suffix):
                located = convention.locate(hostname)
                if located is not None:
                    checked += 1
                    if located == iface.router.loc:
                        correct += 1
                    elif len(wrong_examples) < 3:
                        wrong_examples.append(
                            (hostname, located, iface.router.loc))
                break
    print("\nlocated %d hostnames; %.1f%% match the true router metro"
          % (checked, 100.0 * correct / checked if checked else 0.0))
    items = geo_items_from_traces(result.snapshot.hostnames,
                                  result.traces)
    rtt_of = {item.hostname: item.rtt_samples for item in items}
    for hostname, claimed, actual in wrong_examples:
        distance = geo.distance_km(claimed, actual)
        samples = rtt_of.get(hostname, ())
        refutable = any(not geo.feasible(vp_loc, claimed, rtt)
                        for vp_loc, rtt in samples)
        print("  stale metro code: %s claims %s, router is in %s "
              "(%.0f km apart; delay evidence %s refute it)"
              % (hostname, claimed, actual, distance or 0,
                 "could" if refutable else "cannot"))


if __name__ == "__main__":
    main()
