#!/usr/bin/env python3
"""The paper's full pipeline over a synthetic Internet.

Stages (the production analog in brackets):

1. generate a synthetic Internet [the Internet];
2. assign hostnames per operator conventions, with stale/typo hazards
   [operators' reverse DNS];
3. run a traceroute campaign and build an ITDK snapshot with bdrmapIT
   router-ownership annotations [CAIDA Ark + ITDK];
4. learn ASN-extracting conventions from the snapshot [Hoiho, section 3];
5. feed extractions back into bdrmapIT and measure how agreement and
   ground-truth accuracy improve [section 5].

Run:  python examples/full_pipeline.py [seed]
"""

import sys

from repro import (
    METHOD_BDRMAPIT,
    Hoiho,
    SnapshotSpec,
    WorldConfig,
    generate_world,
    run_snapshot,
)
from repro.bdrmapit.hints import apply_hints, hints_from_conventions
from repro.bdrmapit.metrics import accuracy_against_truth, agreement_metrics
from repro.traceroute.routing import RoutingModel


def main(seed: int = 2020) -> None:
    print("== 1. generating world")
    world = generate_world(seed, WorldConfig.small())
    for key, value in world.stats().items():
        print("   %-18s %d" % (key, value))

    print("== 2-3. campaign + ITDK + bdrmapIT (January 2020 analog)")
    routing = RoutingModel(world.graph)
    spec = SnapshotSpec(label="2020-01", year=2020.0,
                        method=METHOD_BDRMAPIT, n_vps=30, seed=seed + 1)
    snapshot_result = run_snapshot(world, spec, routing)
    print("   %d traces -> %d inferred routers, %d named addresses"
          % (len(snapshot_result.training),
             len(snapshot_result.snapshot.resolution.nodes),
             len(snapshot_result.snapshot.hostnames)))

    print("== 4. learning conventions")
    learned = Hoiho().run(snapshot_result.training)
    counts = learned.class_counts()
    print("   %d suffixes examined; conventions: %d good, %d promising, "
          "%d poor" % (learned.suffixes_examined, counts["good"],
                       counts["promising"], counts["poor"]))
    for convention in learned.usable()[:6]:
        print("   %-20s %s" % (convention.suffix,
                               " | ".join(convention.patterns())))

    print("== 5. feeding extractions back into bdrmapIT")
    hints = hints_from_conventions(snapshot_result.snapshot,
                                   learned.conventions)
    before = agreement_metrics(snapshot_result.annotations, hints,
                               world.graph.orgs)
    outcome = apply_hints(snapshot_result.graph,
                          snapshot_result.annotations, hints,
                          world.graph.relationships, world.graph.orgs)
    after = agreement_metrics(outcome.annotations, hints, world.graph.orgs)
    print("   agreement: %s -> %s" % (before.describe(), after.describe()))

    labeled = {h.node_id for h in hints}
    acc_before = accuracy_against_truth(
        snapshot_result.annotations, snapshot_result.snapshot.resolution,
        world.graph.orgs, nodes=labeled)
    acc_after = accuracy_against_truth(
        outcome.annotations, snapshot_result.snapshot.resolution,
        world.graph.orgs, nodes=labeled)
    print("   ground truth accuracy on labelled routers: "
          "%.1f%% -> %.1f%%" % (100 * acc_before.rate,
                                100 * acc_after.rate))
    incongruent = outcome.incongruent()
    used = sum(1 for d in incongruent if d.used)
    print("   extraction != inference for %d interfaces; used %d"
          % (len(incongruent), used))
    for nc_class, (u, t) in sorted(outcome.used_rate_by_class().items()):
        print("     %-10s used %d/%d" % (nc_class, u, t))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2020)
