#!/usr/bin/env python3
"""Learning IXP naming conventions from PeeringDB-recorded ASNs.

The paper's second training source: operators record which ASN sits
behind each exchange-LAN port in PeeringDB.  This example builds a
synthetic PeeringDB snapshot, trains Hoiho on (hostname, recorded ASN)
pairs, and contrasts the exchange conventions it finds -- bare
equinix-style, as-prefixed, and member-assigned mixed formats.

Run:  python examples/peeringdb_ixp.py
"""

from repro import Hoiho, WorldConfig, generate_world
from repro.naming.assigner import NamingConfig, assign_hostnames
from repro.naming.conventions import ixp_mode_for
from repro.peeringdb.builder import PeeringDBConfig, build_peeringdb
from repro.pipeline import training_items_from_peeringdb


def main() -> None:
    world = generate_world(2020, WorldConfig.small())
    naming = assign_hostnames(world, 7, NamingConfig(year=2020.0))
    pdb = build_peeringdb(world, 7, "2020-02",
                          PeeringDBConfig(participation=0.9))
    print("synthetic PeeringDB: %d exchanges, %d netixlan records"
          % (len(pdb.ixes), len(pdb.netixlans)))

    items = training_items_from_peeringdb(pdb, naming)
    print("training items with PTR names: %d\n" % len(items))

    result = Hoiho().run(items)
    mode_by_domain = {ixp.domain: ixp_mode_for(world.seed, ixp).value
                      for ixp in world.graph.ixps}
    for suffix in sorted(result.conventions):
        convention = result.conventions[suffix]
        print("%s  [%s; LAN naming mode: %s]"
              % (suffix, convention.nc_class.value,
                 mode_by_domain.get(suffix, "?")))
        for pattern in convention.patterns():
            print("    %s" % pattern)
        print("    ATP %d, PPV %.0f%%, %d member ASNs extracted"
              % (convention.score.atp, 100 * convention.score.ppv,
                 convention.score.distinct))

    # Cross-check a few extractions against the PeeringDB records.
    print("\nspot-check against recorded ASNs:")
    shown = 0
    by_address = pdb.by_address()
    for address, record in sorted(by_address.items()):
        hostname = naming.hostname(address)
        if hostname is None:
            continue
        extracted = result.extract(hostname)
        if extracted is None:
            continue
        verdict = "match" if extracted == record.asn else \
            "MISMATCH (sibling or stale?)"
        print("  %-36s extracted %-7s recorded %-7s %s"
              % (hostname, extracted, record.asn, verdict))
        shown += 1
        if shown >= 8:
            break


if __name__ == "__main__":
    main()
