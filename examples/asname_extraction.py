#!/usr/bin/env python3
"""Section-7 future work: extracting AS *names* without a dictionary.

Figure 1 of the paper shows telia.net and seabone.net embedding the
neighbor's AS *name* rather than its number.  The paper's preliminary
investigation found at least 3x more suffixes embed names than numbers.
This example runs the dictionary-free name learner on a synthetic ITDK:
it finds, per suffix, a regex position whose alphabetic token
consistently identifies one training ASN, and derives the token-to-ASN
mapping from the data itself.

Run:  python examples/asname_extraction.py
"""

from repro import METHOD_BDRMAPIT, Hoiho, SnapshotSpec, WorldConfig, \
    generate_world, run_snapshot
from repro.core.asname import NameHoiho
from repro.traceroute.routing import RoutingModel


def main() -> None:
    world = generate_world(2020, WorldConfig.small())
    routing = RoutingModel(world.graph)
    snapshot_result = run_snapshot(
        world, SnapshotSpec(label="2020-01", year=2020.0,
                            method=METHOD_BDRMAPIT, n_vps=30, seed=11),
        routing)

    asn_result = Hoiho().run(snapshot_result.training)
    name_conventions = NameHoiho().run(snapshot_result.training)
    asn_suffixes = {c.suffix for c in asn_result.usable()}

    print("suffixes with ASN conventions:      %d" % len(asn_suffixes))
    print("suffixes with AS-name conventions:  %d (of which %d have no "
          "ASN convention)\n"
          % (len(name_conventions),
             len(set(name_conventions) - asn_suffixes)))

    slug_of = {node.asn: node.slug for node in world.graph.nodes.values()}
    for suffix, convention in sorted(name_conventions.items()):
        print("%s" % suffix)
        print("  regex: %s" % convention.regex.pattern)
        print("  learned mapping (token -> ASN [true operator name]):")
        for token, asn in sorted(convention.mapping.items()):
            print("    %-12s -> AS%-7d [%s]"
                  % (token, asn, slug_of.get(asn, "?")))
        print("  purity %.0f%%, %d distinct ASNs"
              % (100 * convention.score.purity,
                 convention.score.distinct_asns))

    # Apply a learned convention to hostnames from the snapshot.
    print("\nextraction demo:")
    shown = 0
    for item in snapshot_result.training:
        for suffix, convention in name_conventions.items():
            if item.hostname.endswith("." + suffix):
                extracted = convention.extract(item.hostname)
                if extracted is not None:
                    print("  %-44s -> AS%d" % (item.hostname, extracted))
                    shown += 1
                break
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
