#!/usr/bin/env python3
"""Distinguishing stale hostnames from wrong inferences (section 5).

When a hostname's embedded ASN disagrees with bdrmapIT, one of them is
wrong.  The modified bdrmapIT checks the extracted ASN against the
router's subsequent/destination ASN sets.  This example prints concrete
incongruent cases from a synthetic snapshot, with the ground truth the
synthetic world lets us reveal: whether each hostname really was stale,
and whether the topology test made the right call.

Run:  python examples/stale_hostnames.py
"""

from repro import (
    METHOD_BDRMAPIT,
    Hoiho,
    SnapshotSpec,
    WorldConfig,
    generate_world,
    run_snapshot,
)
from repro.bdrmapit.hints import apply_hints, hints_from_conventions
from repro.traceroute.routing import RoutingModel
from repro.util.ipaddr import int_to_ip


def main() -> None:
    world = generate_world(2021, WorldConfig.small())
    routing = RoutingModel(world.graph)
    snapshot_result = run_snapshot(
        world, SnapshotSpec(label="2020-01", year=2020.0,
                            method=METHOD_BDRMAPIT, n_vps=30, seed=9),
        routing)
    learned = Hoiho().run(snapshot_result.training)
    hints = hints_from_conventions(snapshot_result.snapshot,
                                   learned.conventions)
    outcome = apply_hints(snapshot_result.graph,
                          snapshot_result.annotations, hints,
                          world.graph.relationships, world.graph.orgs)

    correct_calls = total = 0
    rows = []
    for decision in outcome.incongruent():
        address = decision.hint.address
        truth = world.true_owner(address)
        record = snapshot_result.naming.record(address)
        if truth is None or record is None:
            continue
        hostname_correct = (decision.hint.extracted_asn == truth
                            or world.graph.orgs.are_siblings(
                                decision.hint.extracted_asn, truth))
        call_correct = decision.used == hostname_correct
        total += 1
        correct_calls += call_correct
        rows.append((decision, truth, record, hostname_correct,
                     call_correct))

    print("incongruent extraction decisions: %d "
          "(modified bdrmapIT correct for %.1f%%)\n"
          % (total, 100.0 * correct_calls / total if total else 0.0))

    shown_used = shown_stale = 0
    for decision, truth, record, hostname_correct, call_correct in rows:
        kind = "correct hostname" if hostname_correct else \
            ("stale hostname" if record.stale else "misleading hostname")
        if hostname_correct and shown_used >= 5:
            continue
        if not hostname_correct and shown_stale >= 5:
            continue
        print("%s (%s)" % (decision.hint.hostname,
                           int_to_ip(decision.hint.address)))
        print("   extracted AS%d | initial inference AS%s | true owner "
              "AS%d" % (decision.hint.extracted_asn, decision.initial_asn,
                        truth))
        print("   %s -> modified bdrmapIT %s the extraction [%s]"
              % (kind, "USED" if decision.used else "did not use",
                 "right call" if call_correct else "wrong call"))
        if hostname_correct:
            shown_used += 1
        else:
            shown_stale += 1
    print("\n(the paper's table 2 reports this decision matrix against "
          "operator ground truth and PeeringDB)")


if __name__ == "__main__":
    main()
