#!/usr/bin/env python3
"""Round-trip an ITDK snapshot through its on-disk formats.

CAIDA publishes ITDKs as text files (.nodes, .nodes.as, DNS names).
This example builds a synthetic snapshot, writes those files, reads
them back as a fresh snapshot, and runs the learner on the re-read
data -- the workflow of a researcher consuming a published ITDK rather
than the simulator's in-memory objects.

Run:  python examples/itdk_files.py [output-dir]
"""

import os
import sys
import tempfile

from repro import (
    METHOD_BDRMAPIT,
    Hoiho,
    SnapshotSpec,
    WorldConfig,
    generate_world,
    run_snapshot,
)
from repro.itdk.snapshot import ITDKSnapshot
from repro.pipeline import training_items_from_itdk


def main(out_dir=None) -> None:
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="itdk-")
    world = generate_world(2020, WorldConfig.small())
    result = run_snapshot(world, SnapshotSpec(
        label="2020-01", year=2020.0, method=METHOD_BDRMAPIT, n_vps=25,
        seed=11))
    snapshot = result.snapshot

    paths = {}
    for name, lines in (("itdk.nodes", snapshot.nodes_lines()),
                        ("itdk.nodes.as", snapshot.node_as_lines()),
                        ("itdk.addrs.dns", snapshot.dns_lines())):
        path = os.path.join(out_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        paths[name] = path
        print("wrote %-16s %8d bytes" % (name, os.path.getsize(path)))

    # A different process would start here, from the files alone.
    with open(paths["itdk.nodes"], encoding="utf-8") as nodes, \
            open(paths["itdk.nodes.as"], encoding="utf-8") as node_as, \
            open(paths["itdk.addrs.dns"], encoding="utf-8") as dns:
        reread = ITDKSnapshot.from_lines("2020-01", nodes, node_as, dns)

    print("\nre-read snapshot: %d nodes, %d annotations, %d hostnames"
          % (len(reread.resolution.nodes), len(reread.annotations),
             len(reread.hostnames)))

    items = training_items_from_itdk(reread)
    learned = Hoiho().run(items)
    counts = learned.class_counts()
    print("learned from files: %d good, %d promising, %d poor "
          "conventions" % (counts["good"], counts["promising"],
                           counts["poor"]))

    original = Hoiho().run(result.training)
    same = {s: c.patterns() for s, c in learned.conventions.items()} == \
        {s: c.patterns() for s, c in original.conventions.items()}
    print("identical to learning from in-memory objects: %s" % same)
    print("\nfiles left in %s" % out_dir)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
