#!/usr/bin/env python3
"""Quickstart: learn an ASN-extracting naming convention from hostnames.

This walks the paper's figure-4 worked example through the public API:
sixteen Equinix hostnames with training ASNs go in, the learned naming
convention (the paper's NC #7) comes out, and we use it to extract ASNs
from new hostnames.

Run:  python examples/quickstart.py
"""

from repro import Hoiho, TrainingItem

# Training data: (hostname, ASN believed to operate the router).  In
# production these pairs come from an ITDK snapshot or PeeringDB; here
# they are the paper's figure-4 rows.
TRAINING = [
    TrainingItem("109.sgw.equinix.com", 109),
    TrainingItem("714.os.equinix.com", 714),
    TrainingItem("714.me1.equinix.com", 714),
    TrainingItem("p714.sgw.equinix.com", 714),
    TrainingItem("s714.sgw.equinix.com", 714),
    TrainingItem("p24115.mel.equinix.com", 24115),
    TrainingItem("s24115.tyo.equinix.com", 24115),
    TrainingItem("22822-2.tyo.equinix.com", 22282),     # typo in PTR
    TrainingItem("24482-fr5-ix.equinix.com", 24482),
    TrainingItem("54827-dc5-ix2.equinix.com", 54827),
    TrainingItem("55247-ch3-ix.equinix.com", 55247),
    TrainingItem("netflix.zh2.corp.eu.equinix.com", 2906),
    TrainingItem("ipv4.dosarrest.eqix.equinix.com", 19324),
    TrainingItem("8069.tyo.equinix.com", 8075),         # sibling ASN
    TrainingItem("8074.hkg.equinix.com", 8075),         # sibling ASN
    TrainingItem("45437-sy1-ix.equinix.com", 55923),    # stale PTR
]


def main() -> None:
    hoiho = Hoiho()
    result = hoiho.run(TRAINING)

    for suffix, convention in sorted(result.conventions.items()):
        print("suffix %s -- %s convention (ATP %d, PPV %.0f%%, "
              "%d distinct ASNs)" % (suffix, convention.nc_class.value,
                                     convention.score.atp,
                                     100 * convention.score.ppv,
                                     convention.score.distinct))
        for pattern in convention.patterns():
            print("  regex: %s" % pattern)

    # Apply the learned convention to hostnames we have never seen.
    print("\nextractions on fresh hostnames:")
    for hostname in ("p64500.sv5.equinix.com",
                     "64500-sv5-ix.equinix.com",
                     "lo0.core1.equinix.com",
                     "as3356.some-other-domain.net"):
        print("  %-32s -> %s" % (hostname, result.extract(hostname)))


if __name__ == "__main__":
    main()
