"""Benchmark + reproduction of the section-5 headline numbers.

Prints agreement/error-rate/usage statistics and asserts the paper's
shape: feeding extracted ASNs back into bdrmapIT raises the agreement
between inferred and extracted ASNs (87.4% -> 97.1% in the paper),
reduces the error rate several-fold (1/7.9 -> 1/34.5), improves
ground-truth accuracy, and extractions from good conventions are used
at a higher rate than from poorer classes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import section5


def test_section5(benchmark, context):
    result = run_once(benchmark, section5.run, context)
    print()
    print(section5.render(result))

    before = result.agreement_before
    after = result.agreement_after
    assert before.total > 20

    # Initial agreement sits in the high-80s band; the feedback loop
    # pushes it well past it (paper: 87.4% -> 97.1%).
    assert 0.70 < before.rate < 0.97
    assert after.rate > before.rate
    assert after.rate > 0.93

    # Error rate improves by at least ~3x (paper: 7.9 -> 34.5).
    if before.error_ratio is not None and after.error_ratio is not None:
        assert after.error_ratio > 2.5 * before.error_ratio

    # Ground-truth accuracy on the labelled routers improves too: the
    # hostnames were right more often than the heuristic.
    assert result.accuracy_after.rate >= result.accuracy_before.rate

    # Usage ordering by convention class (paper: 82.5/44.0/18.2%).
    # Poor conventions contribute very few incongruent extractions in
    # small worlds, so only assert the ordering with a real sample.
    used = result.used_by_class
    if "good" in used and "poor" in used and used["poor"][1] >= 8:
        good_rate = used["good"][0] / used["good"][1]
        poor_rate = used["poor"][0] / used["poor"][1]
        assert good_rate >= poor_rate
