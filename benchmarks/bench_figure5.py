"""Benchmark + reproduction of Figure 5 (NC classification over time).

Prints the per-training-set good/promising/poor series and asserts the
paper's shape: usable conventions grow over the study period, and the
late (bdrmapIT-era) snapshots find substantially more good conventions
than the early RouterToAsAssignment era.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import figure5


def test_figure5(benchmark, context):
    result = run_once(benchmark, figure5.run, context)
    print()
    print(figure5.render(result))

    itdk_rows = [row for row in result.rows if row.kind == "itdk"]
    assert len(itdk_rows) == 17
    pdb_rows = [row for row in result.rows if row.kind == "peeringdb"]
    assert len(pdb_rows) == 2

    # Shape: the usable count grows over time (paper: 12 -> 55 good).
    early = [row.usable for row in itdk_rows[:4]]
    late = [row.usable for row in itdk_rows[-4:]]
    assert sum(late) / len(late) > 1.5 * max(sum(early) / len(early), 1)

    # PeeringDB contributes its own usable conventions (paper: 55 good
    # for the Feb-2020 snapshot) and overlaps partially with the ITDK.
    assert all(row.usable > 0 for row in pdb_rows)
    assert result.total_usable_suffixes >= max(r.usable for r in result.rows)
    assert result.overlap_suffixes >= 1
    assert result.overlap_identical <= result.overlap_suffixes
