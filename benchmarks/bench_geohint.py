"""Benchmark + evaluation of the DRoP-style geolocation mode.

Runs the delay-validated location-hint learner on the latest synthetic
ITDK and checks DRoP's headline property: hints that survive the RTT
feasibility constraints identify the router's true location almost
always.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.geohint import learn_geo_conventions


def _geo_quality(context):
    training_set = context.latest_itdk()
    snapshot_result = training_set.snapshot
    assert snapshot_result is not None
    world = context.world

    conventions = learn_geo_conventions(
        snapshot_result.snapshot.hostnames, snapshot_result.traces)
    checked = correct = 0
    for address, hostname in snapshot_result.snapshot.named_addresses():
        iface = world.topology.interfaces_by_address.get(address)
        if iface is None:
            continue
        for suffix, convention in conventions.items():
            if hostname.endswith("." + suffix):
                located = convention.locate(hostname)
                if located is not None:
                    checked += 1
                    correct += located == iface.router.loc
                break
    return conventions, checked, correct


def test_geohint_accuracy(benchmark, context):
    conventions, checked, correct = run_once(benchmark, _geo_quality,
                                             context)
    accuracy = correct / checked if checked else 0.0
    print()
    print("geo conventions learned: %d" % len(conventions))
    print("hostnames located: %d, correct: %d (%.1f%%)"
          % (checked, correct, 100.0 * accuracy))
    for suffix, convention in sorted(conventions.items())[:5]:
        print("  %-22s %s (%d codes)"
              % (suffix, convention.regex.pattern, len(convention.codes)))

    assert len(conventions) >= 5
    assert checked >= 50
    assert accuracy > 0.9
