"""Benchmark-regression report: refresh ``BENCH_learner.json``.

Thin runner around :mod:`repro.bench` so the report can be produced
either from the benchmarks directory (``python benchmarks/bench_report.py``)
or via the console script (``repro-hoiho bench``) / ``make bench``.

The JSON report tracks, across PRs:

* suffix-learn wall time, cached and uncached, and the cache speedup;
* the cache work counters (vectors built, lookups served, ``re.match``
  calls performed, hit rate);
* ``evaluate_nc`` cold vs warm on a multi-regex set;
* serial vs parallel ``Hoiho.run_datasets`` and the fan-out speedup;
* the ``pipeline`` section: serial vs parallel timeline builds, eager
  vs lazy routing, and cold vs warm artifact-store runs
  (``--pipeline-only`` refreshes just this section, as
  ``make bench-pipeline`` does);
* the ``serve`` section: the linear apply loop vs fused-regex
  suffix-trie dispatch (cold and warm), the memoized Zipf hot path,
  and serial vs parallel bulk annotation (``--serve-only`` refreshes
  the whole section, as ``make annotate-bench`` does;
  ``--dispatch-only`` refreshes just the single-core kernels, keeping
  the fan-out numbers, as ``make dispatch-bench`` does);
* the ``obs`` section: tracer overhead with tracing disabled (the
  no-op span path, asserted under the 2% budget) and enabled
  (``--obs-only`` refreshes just this section, as ``make obs-bench``
  does);
* the ``incremental`` section: cold vs warm-repeat vs 5%-perturbed
  timeline learning through the per-suffix cache, with hit/miss
  counters and the byte-identity check (``--incremental-only``
  refreshes just this section, as ``make incremental-bench`` does);
* the ``http`` section: the pre-fork network server measured by the
  open/closed-loop load generator -- single and batch closed-loop
  throughput with latency percentiles, open-loop behaviour at a fixed
  offered rate, and the graceful-drain exit code (``--http-only``
  refreshes just this section, as ``make http-bench`` does);
* the ``shadow`` section: dual-annotation overhead of shadow
  deployment vs a single convention set on the Zipf workload
  (asserted under the 2.2x budget) and the per-suffix disagreement
  ledger checked exact against a constructed divergent world
  (``--shadow-only`` refreshes just this section, as
  ``make shadow-bench`` does);
* the ``obs_window`` section: windowed-telemetry cost on the serving
  hot path -- the per-request access-log line and the
  per-flush-interval rolling-window fold, summed and asserted under
  the 3% budget (``--obs-window-only`` refreshes just this section,
  as ``make obs-window-bench`` does).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import render_report, write_dispatch_section, \
    write_http_section, write_incremental_section, write_obs_section, \
    write_obs_window_section, write_pipeline_section, write_report, \
    write_serve_section, write_shadow_section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the learner benchmark suite and write "
                    "BENCH_learner.json")
    parser.add_argument("--output", default="BENCH_learner.json",
                        metavar="FILE", help="report destination")
    parser.add_argument("--rounds", type=int, default=5,
                        help="best-of rounds per timing")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel workers for the fan-out benchmark "
                             "(default: one per CPU)")
    parser.add_argument("--pipeline-only", action="store_true",
                        help="refresh only the pipeline section of an "
                             "existing report")
    parser.add_argument("--serve-only", action="store_true",
                        help="refresh only the serve section of an "
                             "existing report")
    parser.add_argument("--dispatch-only", action="store_true",
                        help="refresh only the single-core dispatch/"
                             "memo kernels of the serve section, "
                             "keeping the bulk fan-out numbers")
    parser.add_argument("--obs-only", action="store_true",
                        help="refresh only the obs (tracer overhead) "
                             "section of an existing report")
    parser.add_argument("--incremental-only", action="store_true",
                        help="refresh only the incremental "
                             "(delta-learning) section of an existing "
                             "report")
    parser.add_argument("--http-only", action="store_true",
                        help="refresh only the http (network serving) "
                             "section of an existing report")
    parser.add_argument("--http-workers", type=int, default=2,
                        metavar="N",
                        help="pre-fork workers for the http bench "
                             "(default 2)")
    parser.add_argument("--shadow-only", action="store_true",
                        help="refresh only the shadow (dual-"
                             "annotation) section of an existing "
                             "report")
    parser.add_argument("--obs-window-only", action="store_true",
                        help="refresh only the obs_window (windowed "
                             "telemetry) section of an existing "
                             "report")
    args = parser.parse_args(argv)
    if args.pipeline_only:
        report = write_pipeline_section(args.output, jobs=args.jobs)
    elif args.serve_only:
        report = write_serve_section(args.output, jobs=args.jobs)
    elif args.dispatch_only:
        report = write_dispatch_section(args.output, jobs=args.jobs)
    elif args.obs_only:
        report = write_obs_section(args.output)
    elif args.incremental_only:
        report = write_incremental_section(args.output, jobs=args.jobs)
    elif args.http_only:
        report = write_http_section(args.output,
                                    workers=args.http_workers)
    elif args.shadow_only:
        report = write_shadow_section(args.output, rounds=args.rounds)
    elif args.obs_window_only:
        report = write_obs_window_section(args.output)
    else:
        report = write_report(args.output, rounds=args.rounds,
                              jobs=args.jobs)
    print(render_report(report))
    print("# report written to %s" % args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
