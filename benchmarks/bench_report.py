"""Benchmark-regression report: refresh ``BENCH_learner.json``.

Thin runner around :mod:`repro.bench` so the report can be produced
either from the benchmarks directory (``python benchmarks/bench_report.py``)
or via the console script (``repro-hoiho bench``) / ``make bench``.

The JSON report tracks, across PRs:

* suffix-learn wall time, cached and uncached, and the cache speedup;
* the cache work counters (vectors built, lookups served, ``re.match``
  calls performed, hit rate);
* ``evaluate_nc`` cold vs warm on a multi-regex set;
* serial vs parallel ``Hoiho.run_datasets`` and the fan-out speedup.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import render_report, write_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the learner benchmark suite and write "
                    "BENCH_learner.json")
    parser.add_argument("--output", default="BENCH_learner.json",
                        metavar="FILE", help="report destination")
    parser.add_argument("--rounds", type=int, default=5,
                        help="best-of rounds per timing")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel workers for the fan-out benchmark "
                             "(default: one per CPU)")
    args = parser.parse_args(argv)
    report = write_report(args.output, rounds=args.rounds, jobs=args.jobs)
    print(render_report(report))
    print("# report written to %s" % args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
