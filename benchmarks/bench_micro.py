"""Microbenchmarks of the performance-critical kernels.

Unlike the experiment benchmarks (one timed run each), these use
pytest-benchmark's statistical timing: the learner on one suffix, the
congruence classifier, the Damerau-Levenshtein kernel, radix-trie
lookups, routing-model construction and traceroute expansion.
"""

import pytest

from repro.bench import bench_regex_set
from repro.core.evaluate import evaluate_nc, evaluate_regex
from repro.core.hoiho import HoihoConfig, learn_suffix
from repro.core.matchcache import MatchCache
from repro.core.regex_model import Regex
from repro.core.types import SuffixDataset, TrainingItem
from repro.topology.world import WorldConfig, generate_world
from repro.traceroute.campaign import CampaignConfig, run_campaign
from repro.traceroute.routing import RoutingModel
from repro.util.ipaddr import IPv4Prefix
from repro.util.radix import RadixTrie
from repro.util.strings import damerau_levenshtein


@pytest.fixture(scope="module")
def suffix_dataset():
    asns = [1000 + 37 * i for i in range(60)]
    items = [TrainingItem("as%d-10ge-pop%d.example.net" % (asn, i % 7), asn)
             for i, asn in enumerate(asns)]
    items += [TrainingItem("lo0.cr%d.pop%d.example.net" % (i, i % 7), 1000)
              for i in range(20)]
    return SuffixDataset("example.net", items)


def test_learn_one_suffix(benchmark, suffix_dataset):
    convention = benchmark(learn_suffix, suffix_dataset)
    assert convention is not None
    assert convention.score.tp == 60


def test_learn_one_suffix_uncached(benchmark, suffix_dataset):
    """Baseline without the match-vector cache; compare against
    ``test_learn_one_suffix`` to read the cache speedup."""
    config = HoihoConfig(enable_cache=False)
    convention = benchmark(learn_suffix, suffix_dataset, config)
    assert convention is not None
    assert convention.score.tp == 60


def test_evaluate_regex(benchmark, suffix_dataset):
    regex = Regex.raw(r"^as(\d+)-10ge-pop\d+\.example\.net$")
    score = benchmark(evaluate_regex, regex, suffix_dataset)
    assert score.tp == 60


def test_evaluate_nc_set_uncached(benchmark, suffix_dataset):
    """First-match scoring of a multi-regex set, regex engine per item."""
    regexes = bench_regex_set()
    score = benchmark(evaluate_nc, regexes, suffix_dataset)
    assert score.tp == 60


def test_evaluate_nc_set_cached_cold(benchmark, suffix_dataset):
    """Cache path including vector construction (cold start)."""
    regexes = bench_regex_set()

    def cold():
        cache = MatchCache(suffix_dataset)
        return cache.score_nc(regexes)

    score = benchmark(cold)
    assert score.tp == 60


def test_evaluate_nc_set_cached_warm(benchmark, suffix_dataset):
    """Pure vector composition once every regex is already scored."""
    regexes = bench_regex_set()
    cache = MatchCache(suffix_dataset)
    cache.score_nc(regexes)   # warm the vectors
    score = benchmark(cache.score_nc, regexes)
    assert score.tp == 60


def test_damerau_levenshtein(benchmark):
    result = benchmark(damerau_levenshtein, "2021531997", "2021351997")
    assert result == 1


def test_radix_lookup(benchmark):
    trie = RadixTrie()
    for i in range(2000):
        trie.insert(IPv4Prefix((i * 7919) % 0xFFFF << 16, 16), i)
    probe = (1234 * 7919) % 0xFFFF << 16 | 99

    def lookups():
        total = 0
        for offset in range(100):
            value = trie.lookup(probe + offset)
            total += 0 if value is None else 1
        return total

    assert benchmark(lookups) >= 0


@pytest.fixture(scope="module")
def tiny_world():
    return generate_world(42, WorldConfig.tiny())


def test_routing_model_build(benchmark, tiny_world):
    model = benchmark(RoutingModel, tiny_world.graph)
    asns = tiny_world.graph.asns()
    assert model.as_path(asns[0], asns[-1]) is not None


def test_campaign(benchmark, tiny_world):
    routing = RoutingModel(tiny_world.graph)
    traces = benchmark.pedantic(
        run_campaign, args=(tiny_world, routing, 3,
                            CampaignConfig(n_vps=4)),
        rounds=3, iterations=1)
    assert traces
