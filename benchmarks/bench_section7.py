"""Benchmark + reproduction of the section-7 preliminary investigations.

Prints the AS-name learning summary and the expansion-beyond-traceroute
counts, asserting the paper's qualitative claims: AS-name conventions
are learnable without a dictionary and extract mostly-correct operators,
and the learned regexes match more hostnames in the full reverse zone
than traceroute ever observed (5.4K -> 22.5K in the paper).
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import section7


def test_section7(benchmark, context):
    result = run_once(benchmark, section7.run, context)
    print()
    print(section7.render(result))

    # AS-name conventions exist beyond the ASN-convention suffixes and
    # their extractions are mostly correct against ground truth.
    assert result.name_suffixes >= 1
    if result.name_checked >= 10:
        assert result.name_accuracy > 0.7

    # The full reverse zone contains strictly more matching hostnames
    # than the traceroute-observed subset (cold backup links etc.).
    assert result.observed_matches > 0
    assert result.full_zone_matches > result.observed_matches
    assert result.expansion_factor > 1.1
