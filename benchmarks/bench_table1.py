"""Benchmark + reproduction of Table 1 (ASN placement taxonomy).

Prints the taxonomy of usable conventions and asserts the paper's
headline observation: operators that label the *neighbor* ASN most
often place it at the start of the hostname (50.8% of usable NCs in
the paper), and every class is represented.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.taxonomy import Taxonomy
from repro.eval import table1


def test_table1(benchmark, context):
    result = run_once(benchmark, table1.run, context)
    print()
    print(table1.render(result))

    assert result.n_usable > 0
    shares = {taxonomy: result.usable[taxonomy] / result.n_usable
              for taxonomy in Taxonomy}

    # Start placement is the most common single class among
    # neighbor-labelling styles (paper: 50.8%).
    non_complex = {t: shares[t] for t in
                   (Taxonomy.SIMPLE, Taxonomy.START, Taxonomy.END,
                    Taxonomy.BARE)}
    assert max(non_complex, key=non_complex.get) in (Taxonomy.START,
                                                     Taxonomy.SIMPLE)
    assert shares[Taxonomy.START] >= shares[Taxonomy.BARE]

    # All placement classes occur somewhere in a full run.
    observed = sum(1 for t in Taxonomy if result.usable[t] > 0)
    assert observed >= 4
