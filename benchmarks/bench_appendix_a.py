"""Benchmark + reproduction of Appendix A (merging vs regex sets).

Prints the scores of the three equivalent Equinix conventions (figure 7)
and asserts they score identically on the figure-4 data, with the
learner selecting the paper's preferred two-regex NC #7.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import appendix_a


def test_appendix_a(benchmark, context):
    result = run_once(benchmark, appendix_a.run)
    print()
    print(appendix_a.render(result))

    atps = {name: score.atp for name, _, score in result.scores}
    assert atps == {"NC #7": 8, "NC #7a": 8, "NC #7b": 8}

    sizes = {name: n for name, n, _ in result.scores}
    assert sizes == {"NC #7": 2, "NC #7a": 1, "NC #7b": 4}

    assert result.learned is not None
    assert result.learned_matches_nc7
