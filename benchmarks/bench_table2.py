"""Benchmark + reproduction of Table 2 (validation of decisions).

Prints the 2x2 decision matrix per ground-truth source and asserts the
paper's shape: the modified bdrmapIT decides correctly for around nine
in ten incongruent hostnames (92.5% in the paper), using most correct
hostnames while rejecting most incorrect ones.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import table2


def test_table2(benchmark, context):
    result = run_once(benchmark, table2.run, context)
    print()
    print(table2.render(result))

    totals = result.totals()
    assert totals.total >= 10, "too few validated decisions to assess"

    correct_rate = totals.correct_decisions / totals.total
    # Paper: 92.5%.  Small validation samples (a few dozen decisions)
    # carry binomial noise, so the floor scales with sample size.
    assert correct_rate > (0.80 if totals.total >= 30 else 0.65)

    correct_hostnames = totals.tp + totals.fn
    if correct_hostnames >= 10:
        used_correct = totals.tp / correct_hostnames
        assert used_correct > 0.75     # paper: 92.7%
    incorrect_hostnames = totals.fp + totals.tn
    if incorrect_hostnames >= 10:
        used_incorrect = totals.fp / incorrect_hostnames
        assert used_incorrect < 0.5    # paper: 8.4%
