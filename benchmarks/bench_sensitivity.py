"""Benchmark + section-6 sensitivity study.

Prints the staleness sweep and asserts the limitation the paper states:
hostname errors degrade what the regexes deliver -- convention PPV
falls monotonically with staleness -- while the topological
reasonableness test keeps wrongly-used extractions a small minority of
decisions at every level.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import sensitivity


def test_sensitivity(benchmark, context):
    result = run_once(benchmark, sensitivity.run, context)
    print()
    print(sensitivity.render(result))

    rows = result.rows
    assert len(rows) == 3

    # Training-side damage: usable-NC PPV degrades as staleness rises.
    assert rows[0].usable_ppv > rows[-1].usable_ppv

    # The feedback loop still helps at every staleness level...
    for row in rows:
        assert row.agreement_after >= row.agreement_before

    # ...and the topology test keeps wrong usage bounded.
    for row in rows:
        if row.decisions >= 10:
            assert row.decision_rate > 0.6
            assert row.wrongly_used <= row.decisions * 0.35
