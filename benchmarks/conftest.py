"""Shared fixtures for the benchmark harness.

One :class:`~repro.eval.context.ExperimentContext` is shared by every
benchmark so the expensive artifacts (world, routing, the 19-snapshot
timeline, learned conventions) are built once and the per-experiment
benchmarks measure their own work.

Environment knobs:

* ``REPRO_SCALE``  -- tiny | small | full  (default small)
* ``REPRO_SEED``   -- world seed           (default 2020)
* ``REPRO_JOBS``   -- learner worker processes (default 1 = serial;
  0 = one per CPU; parallel output is bit-identical to serial)
"""

import os

import pytest

from repro.core.parallel import ParallelConfig
from repro.eval import ExperimentContext, Scale


@pytest.fixture(scope="session")
def context():
    scale = Scale(os.environ.get("REPRO_SCALE", "small"))
    seed = int(os.environ.get("REPRO_SEED", "2020"))
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    return ExperimentContext(seed=seed, scale=scale,
                             parallel=ParallelConfig.from_jobs(jobs))


def run_once(benchmark, func, *args):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, rounds=1, iterations=1)
