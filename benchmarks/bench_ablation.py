"""Benchmark + ablation study of the design choices DESIGN.md calls out.

Prints the learner-phase and bdrmapIT-heuristic ablations and asserts
each component earns its keep: disabling regex sets or merging never
improves usable-convention counts, and the full bdrmapIT beats pure
election on ground-truth accuracy.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import ablation


def test_ablation(benchmark, context):
    result = run_once(benchmark, ablation.run, context)
    print()
    print(ablation.render(result))

    learner = {row.name: row for row in result.learner_rows}
    full = learner["full"]
    assert full.usable >= learner["phase 1 only"].usable
    assert full.usable >= learner["no regex sets (phase 4)"].usable
    assert full.total_atp >= learner["phase 1 only"].total_atp

    bdrmapit = {row.name: row for row in result.bdrmapit_rows}
    # Election-only is the clear loser; individual heuristics overlap in
    # what they fix, so any single one may be near-redundant on a given
    # seed -- allow small inversions there.
    assert bdrmapit["full"].accuracy > bdrmapit["election only"].accuracy
    assert bdrmapit["full"].accuracy > \
        bdrmapit["no subsequent votes"].accuracy - 0.02
    assert bdrmapit["full"].accuracy > \
        bdrmapit["no relationship election"].accuracy - 0.02
