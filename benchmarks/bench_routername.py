"""Benchmark + evaluation of the router-name (Hoiho-2019) mode.

The ASN learner is a modification of Hoiho's router-name learner
(section 2.2); this benchmark runs the router-name mode on the latest
synthetic ITDK and checks that the alias sets it proposes are precise
against ground truth -- the property that made the 2019 system useful.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.routername import RouterItem, learn_router_names


def _alias_quality(context):
    training_set = context.latest_itdk()
    snapshot_result = training_set.snapshot
    assert snapshot_result is not None
    resolution = snapshot_result.snapshot.resolution

    items = []
    hostname_router = {}
    for address, hostname in snapshot_result.snapshot.named_addresses():
        node_id = resolution.node_of_address.get(address)
        if node_id is None:
            continue
        items.append(RouterItem(hostname, node_id))
        hostname_router[hostname.lower()] = node_id

    conventions = learn_router_names(items)
    proposed = correct = 0
    for convention in conventions.values():
        in_suffix = [h for h in hostname_router
                     if h.endswith("." + convention.suffix)]
        for group in convention.aliases(in_suffix):
            members = sorted(group)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    proposed += 1
                    if hostname_router[a] == hostname_router[b]:
                        correct += 1
    return conventions, proposed, correct


def test_routername_alias_precision(benchmark, context):
    conventions, proposed, correct = run_once(benchmark, _alias_quality,
                                              context)
    precision = correct / proposed if proposed else 0.0
    print()
    print("router-name conventions learned: %d" % len(conventions))
    print("alias pairs proposed: %d, correct: %d (precision %.1f%%)"
          % (proposed, correct, 100.0 * precision))
    for suffix, convention in sorted(conventions.items())[:6]:
        print("  %-22s %s" % (suffix, convention.regex.pattern))

    assert len(conventions) >= 3
    assert proposed >= 20
    # Hoiho-2019 reported high-confidence alias inferences; the
    # synthetic reproduction should be similarly precise.
    assert precision > 0.85
