"""Benchmark + reproduction of Figure 6 (PPV of usable conventions).

Prints the PPV series and asserts the paper's ordering: training data
from bdrmapIT-era snapshots agrees with extracted ASNs more than the
RouterToAsAssignment era (83.7-87.4% vs 74.8-80.7% in the paper), the
operator-curated PeeringDB training is best (96.0%), and crediting
sibling ASNs adds roughly one to two points.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import figure6


def _mean(rows):
    """Mean PPV over rows that extracted anything at all.

    Sparse early snapshots can yield no usable conventions (an empty
    row); those carry no PPV information and are excluded, as an empty
    point would be in the paper's figure.
    """
    values = [row.ppv for row in rows if row.tp + row.fp > 0]
    return sum(values) / len(values) if values else 0.0


def test_figure6(benchmark, context):
    result = run_once(benchmark, figure6.run, context)
    print()
    print(figure6.render(result))

    rtaa = [row for row in result.rows if row.method == "rtaa"]
    bdrmapit = [row for row in result.rows if row.method == "bdrmapit"]
    pdb = [row for row in result.rows if row.method == "operator"]
    assert rtaa and bdrmapit and pdb

    rtaa_ppv = _mean(rtaa)
    bdrmapit_ppv = _mean(bdrmapit)
    pdb_ppv = _mean(pdb)

    # Who wins, in order: PeeringDB > bdrmapIT > RouterToAsAssignment.
    assert pdb_ppv > bdrmapit_ppv > rtaa_ppv

    # Rough bands (paper: ~75-81%, ~84-87%, 96%).
    assert 0.55 < rtaa_ppv < 0.88
    assert 0.75 < bdrmapit_ppv < 0.95
    assert pdb_ppv > 0.88

    # Sibling adjustment helps but only by a few points.
    for row in result.rows:
        assert row.ppv <= row.ppv_with_siblings <= row.ppv + 0.12
