PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-slow test-faults bench bench-pipeline annotate-bench \
	dispatch-bench obs-bench incremental-bench http-bench shadow-bench \
	obs-window-bench bench-tables lint

# Tier-1: slow (full-scale pipeline) tests are excluded by the default
# pytest addopts (-m "not slow"); `make test-slow` runs only those.
test:
	$(PYTHON) -m pytest tests/ -q

test-slow:
	$(PYTHON) -m pytest tests/ -q -m slow

# Fault-injection suite: injected worker crashes, poison chunks,
# hang + timeout, degrade-to-serial, and checkpoint-resume round
# trips (docs/ROBUSTNESS.md).  CI runs this in its own job.
test-faults:
	$(PYTHON) -m pytest tests/core/test_resilience.py \
		tests/serve/test_faults.py -q -m 'slow or not slow'

bench:
	$(PYTHON) benchmarks/bench_report.py

bench-pipeline:
	$(PYTHON) benchmarks/bench_report.py --pipeline-only

# Annotation throughput (hostnames/sec cold vs warm, serial vs
# parallel) into the `serve` section of BENCH_learner.json.
annotate-bench:
	$(PYTHON) benchmarks/bench_report.py --serve-only

# Single-core hot-path kernels only (fused dispatch + Zipf memo),
# keeping the bulk fan-out numbers of the serve section intact.
dispatch-bench:
	$(PYTHON) benchmarks/bench_report.py --dispatch-only

# Tracer overhead (tracing disabled vs enabled, asserted under the
# 2% budget) into the `obs` section of BENCH_learner.json.
obs-bench:
	$(PYTHON) benchmarks/bench_report.py --obs-only

# Incremental learning (cold vs warm-repeat vs perturbed timeline
# through the per-suffix cache) into the `incremental` section.
incremental-bench:
	$(PYTHON) benchmarks/bench_report.py --incremental-only

# Network serving (pre-fork server + open/closed-loop load generator)
# into the `http` section of BENCH_learner.json.
http-bench:
	$(PYTHON) benchmarks/bench_report.py --http-only

# Shadow deployment (dual-annotation overhead vs a single set, plus
# the exact divergence ledger) into the `shadow` section.
shadow-bench:
	$(PYTHON) benchmarks/bench_report.py --shadow-only

# Windowed telemetry (access-log line + rolling-window fold, asserted
# under the 3% budget) into the `obs_window` section.
obs-window-bench:
	$(PYTHON) benchmarks/bench_report.py --obs-window-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

lint:
	$(PYTHON) -m pyflakes src/repro tests benchmarks 2>/dev/null || true
