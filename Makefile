PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-tables lint

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) benchmarks/bench_report.py

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

lint:
	$(PYTHON) -m pyflakes src/repro tests benchmarks 2>/dev/null || true
