"""Synthetic PeeringDB snapshots.

PeeringDB gives the paper a second, operator-curated source of training
ASNs: members record which ASN sits behind each exchange-LAN address
(netixlan objects).  The synthetic snapshot reproduces the error modes
the paper observed -- organizations recording their main ASN while the
hostname embeds the sibling ASN actually used at the exchange, plus a
small rate of stale records.
"""

from repro.peeringdb.snapshot import IXRecord, NetIXLan, PeeringDBSnapshot
from repro.peeringdb.builder import PeeringDBConfig, build_peeringdb

__all__ = [
    "IXRecord",
    "NetIXLan",
    "PeeringDBSnapshot",
    "PeeringDBConfig",
    "build_peeringdb",
]
