"""Build a synthetic PeeringDB snapshot from a world.

Members record their exchange ports with realistic imperfections:

* not every member participates (``participation``);
* organizations with several ASNs usually record the *organization's
  primary ASN* even when the port is operated under a sibling ASN --
  the exact mismatch behind the paper's five Table-2 false positives;
* a small fraction of records is stale (an old ASN entirely).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.peeringdb.snapshot import IXRecord, NetIXLan, PeeringDBSnapshot
from repro.topology.world import World
from repro.util.rand import substream


@dataclass
class PeeringDBConfig:
    """Record-quality knobs."""

    participation: float = 0.85       # members that bother to register
    record_primary_rate: float = 0.2  # sibling orgs recording primary ASN
    stale_record_rate: float = 0.01   # plainly wrong records


def _primary_asn(world: World, asn: int) -> int:
    """The organization's primary ASN: its lowest (oldest-looking) one."""
    return min(world.graph.orgs.siblings(asn))


def build_peeringdb(world: World, seed: int, label: str,
                    config: Optional[PeeringDBConfig] = None,
                    ) -> PeeringDBSnapshot:
    """Synthesize the PeeringDB view of every IXP in the world."""
    config = config or PeeringDBConfig()
    rng = substream(seed, "peeringdb", label)
    snapshot = PeeringDBSnapshot(label=label)
    all_asns = world.graph.asns()

    for ixp in world.graph.ixps:
        snapshot.ixes.append(IXRecord(ix_id=ixp.ixp_id,
                                      name=ixp.slug.upper(),
                                      country=ixp.country))
        for member in ixp.members:
            port = world.topology.ixp_ports.get((ixp.ixp_id, member))
            if port is None:
                continue
            if rng.random() > config.participation:
                continue
            recorded = member
            primary = _primary_asn(world, member)
            if primary != member \
                    and rng.random() < config.record_primary_rate:
                recorded = primary
            if rng.random() < config.stale_record_rate:
                recorded = rng.choice(all_asns)
            snapshot.netixlans.append(NetIXLan(
                ix_id=ixp.ixp_id, asn=recorded, ipaddr4=port.address))
    return snapshot
