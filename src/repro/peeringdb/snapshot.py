"""PeeringDB snapshot data model (the subset the paper consumes)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.util.ipaddr import int_to_ip, ip_to_int


@dataclass(frozen=True)
class IXRecord:
    """One exchange (PeeringDB ``ix`` object, trimmed)."""

    ix_id: int
    name: str
    country: str


@dataclass(frozen=True)
class NetIXLan:
    """A member port on an exchange LAN (PeeringDB ``netixlan``)."""

    ix_id: int
    asn: int                  # the ASN the operator recorded
    ipaddr4: int              # LAN address of the port

    @property
    def ip(self) -> str:
        return int_to_ip(self.ipaddr4)


@dataclass
class PeeringDBSnapshot:
    """All records of one synthetic PeeringDB dump."""

    label: str
    ixes: List[IXRecord] = field(default_factory=list)
    netixlans: List[NetIXLan] = field(default_factory=list)

    def by_address(self) -> Dict[int, NetIXLan]:
        """Map LAN address -> netixlan record."""
        return {record.ipaddr4: record for record in self.netixlans}

    def members_of(self, ix_id: int) -> List[NetIXLan]:
        """All ports recorded at one exchange."""
        return [record for record in self.netixlans
                if record.ix_id == ix_id]

    # -- serialization (PeeringDB-style JSON) --------------------------------

    def to_json(self) -> str:
        """Serialize in the shape of PeeringDB API dumps."""
        return json.dumps({
            "label": self.label,
            "ix": {"data": [{"id": ix.ix_id, "name": ix.name,
                             "country": ix.country}
                            for ix in self.ixes]},
            "netixlan": {"data": [{"ix_id": r.ix_id, "asn": r.asn,
                                   "ipaddr4": r.ip}
                                  for r in self.netixlans]},
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PeeringDBSnapshot":
        """Parse :meth:`to_json` output."""
        raw = json.loads(text)
        snapshot = cls(label=raw.get("label", ""))
        for entry in raw.get("ix", {}).get("data", []):
            snapshot.ixes.append(IXRecord(ix_id=entry["id"],
                                          name=entry["name"],
                                          country=entry.get("country", "")))
        for entry in raw.get("netixlan", {}).get("data", []):
            snapshot.netixlans.append(NetIXLan(
                ix_id=entry["ix_id"], asn=entry["asn"],
                ipaddr4=ip_to_int(entry["ipaddr4"])))
        return snapshot
