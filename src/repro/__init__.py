"""Reproduction of "Learning to Extract and Use ASNs in Hostnames".

Public API tour:

* learn conventions: :class:`repro.core.Hoiho`,
  :func:`repro.core.learn_suffix`, :class:`repro.core.TrainingItem`;
* synthetic measurement: :func:`repro.topology.generate_world`,
  :func:`repro.naming.assign_hostnames`,
  :func:`repro.pipeline.run_snapshot`;
* router ownership: :mod:`repro.rtaa`, :mod:`repro.bdrmapit`
  (including the paper's hostname-hint modification in
  :mod:`repro.bdrmapit.hints`);
* experiments: :mod:`repro.eval` regenerates every table and figure.
"""

from repro.core import (
    Hoiho,
    HoihoConfig,
    HoihoResult,
    LearnedConvention,
    NCClass,
    TrainingItem,
    learn_suffix,
)
from repro.pipeline import (
    METHOD_BDRMAPIT,
    METHOD_RTAA,
    SnapshotResult,
    SnapshotSpec,
    run_peeringdb_snapshot,
    run_snapshot,
)
from repro.store import ArtifactStore
from repro.topology import World, WorldConfig, generate_world

__version__ = "1.0.0"

__all__ = [
    "Hoiho",
    "HoihoConfig",
    "HoihoResult",
    "LearnedConvention",
    "NCClass",
    "TrainingItem",
    "learn_suffix",
    "METHOD_BDRMAPIT",
    "METHOD_RTAA",
    "SnapshotResult",
    "SnapshotSpec",
    "run_peeringdb_snapshot",
    "run_snapshot",
    "ArtifactStore",
    "World",
    "WorldConfig",
    "generate_world",
    "__version__",
]
