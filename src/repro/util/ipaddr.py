"""IPv4 helpers and detection of IP addresses embedded in hostnames.

The synthetic Internet in :mod:`repro.topology` allocates IPv4 prefixes and
point-to-point subnets; this module provides the arithmetic.  It also
implements the paper's figure-3b rule: a number extracted from a hostname
is a false positive when it is part of an IP address embedded in the
hostname (for example ``209-201-58-109.dia.stat.centurylink.net``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.util.strings import digit_runs


def ip_to_int(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer.

    Raises ``ValueError`` on malformed input.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError("not a dotted quad: %r" % (text,))
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError("bad octet %r in %r" % (part, text))
        octet = int(part)
        if octet > 255:
            raise ValueError("octet out of range in %r" % (text,))
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as a dotted quad.

    >>> int_to_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("address out of range: %r" % (value,))
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class IPv4Prefix:
    """An IPv4 prefix (network address plus length), e.g. ``10.0.0.0/8``."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError("bad prefix length %d" % self.length)
        if self.network & ~self.mask & 0xFFFFFFFF:
            raise ValueError("host bits set below /%d in %s"
                             % (self.length, int_to_ip(self.network)))

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        addr, _, length = text.partition("/")
        if not length:
            raise ValueError("missing prefix length in %r" % (text,))
        return cls(ip_to_int(addr), int(length))

    @property
    def mask(self) -> int:
        """The netmask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside the prefix."""
        return (address & self.mask) == self.network

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """True when ``other`` is equal to or more specific than this."""
        return other.length >= self.length and self.contains(other.network)

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Yield the subdivisions of this prefix at ``new_length``."""
        if new_length < self.length:
            raise ValueError("cannot widen %s to /%d" % (self, new_length))
        step = 1 << (32 - new_length)
        for network in range(self.network, self.network + self.size, step):
            yield IPv4Prefix(network, new_length)

    def addresses(self) -> Iterator[int]:
        """Yield every address inside the prefix (including network/bcast)."""
        return iter(range(self.network, self.network + self.size))

    def host(self, index: int) -> int:
        """Return the ``index``-th address inside the prefix."""
        if not 0 <= index < self.size:
            raise ValueError("host index %d outside %s" % (index, self))
        return self.network + index

    def __str__(self) -> str:
        return "%s/%d" % (int_to_ip(self.network), self.length)


def _octets_ok(parts: List[str]) -> bool:
    return all(p.isdigit() and int(p) <= 255 and len(p) <= 3 for p in parts)


def embedded_ip_spans(hostname: str,
                      address: Optional[str] = None) -> List[Tuple[int, int]]:
    """Locate IP-address-like substrings embedded in ``hostname``.

    Returns character ranges ``(start, end)`` covering the digits of each
    embedded address.  Two families are detected:

    * four consecutive digit runs separated by a consistent single
      punctuation character, each a valid octet, e.g. ``50-236-216-122`` or
      ``209.201.58.109`` -- the generic dotted/dashed quad;
    * when the interface ``address`` is known, any occurrence of its four
      octets in order (separated by consistent punctuation), and any
      zero-padded concatenation such as ``050236216122``.

    The caller treats any extracted number overlapping one of these spans
    as a false positive (figure 3b of the paper).

    >>> embedded_ip_spans("209-201-58-109.dia.example.net")
    [(0, 14)]
    >>> embedded_ip_spans("p24115.mel.example.com")
    []
    """
    spans: List[Tuple[int, int]] = []
    runs = digit_runs(hostname)

    # Generic quad detection over maximal digit runs.
    for i in range(len(runs) - 3):
        window = runs[i:i + 4]
        parts = [r.text for r in window]
        if not _octets_ok(parts):
            continue
        seps = set()
        contiguous = True
        for a, b in zip(window, window[1:]):
            sep = hostname[a.end:b.start]
            if len(sep) != 1 or sep.isalnum():
                contiguous = False
                break
            seps.add(sep)
        if not contiguous or len(seps) != 1:
            continue
        spans.append((window[0].start, window[3].end))

    if address is not None:
        spans.extend(_known_address_spans(hostname, address))

    return _merge_spans(spans)


def _known_address_spans(hostname: str, address: str) -> List[Tuple[int, int]]:
    """Spans where the specific interface address appears in the hostname."""
    spans: List[Tuple[int, int]] = []
    octets = address.split(".")
    if len(octets) != 4:
        return spans
    # Zero-padded concatenation, e.g. 050236216122.
    padded = "".join(o.zfill(3) for o in octets)
    start = hostname.find(padded)
    while start != -1:
        spans.append((start, start + len(padded)))
        start = hostname.find(padded, start + 1)
    # Octets in order, possibly reversed PTR-style, separated by one char.
    for order in (octets, octets[::-1]):
        spans.extend(_ordered_octet_spans(hostname, order))
    return spans


def _ordered_octet_spans(hostname: str,
                         octets: List[str]) -> List[Tuple[int, int]]:
    runs = digit_runs(hostname)
    spans: List[Tuple[int, int]] = []
    values = [int(o) for o in octets]
    for i in range(len(runs) - 3):
        window = runs[i:i + 4]
        if [r.value for r in window if r.text.isdigit()] != values:
            continue
        ok = True
        for a, b in zip(window, window[1:]):
            sep = hostname[a.end:b.start]
            if len(sep) != 1 or sep.isalnum():
                ok = False
                break
        if ok:
            spans.append((window[0].start, window[3].end))
    return spans


def _merge_spans(spans: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent spans and sort them."""
    if not spans:
        return []
    spans = sorted(spans)
    merged = [spans[0]]
    for start, end in spans[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged
