"""Deterministic random substreams.

Every generator in the synthetic world derives its randomness from a named
substream of a master seed, so changing one stage (say, traceroute
sampling) does not perturb another (say, hostname staleness), and every
experiment is exactly reproducible from a single integer seed.
"""

from __future__ import annotations

import hashlib
import random


def substream(seed: int, *labels: object) -> random.Random:
    """Return an independent ``random.Random`` keyed by ``seed`` + labels.

    >>> substream(42, "naming").random() == substream(42, "naming").random()
    True
    >>> substream(42, "naming").random() == substream(42, "routing").random()
    False
    """
    digest = hashlib.sha256(
        ("%d|%s" % (seed, "|".join(repr(label) for label in labels)))
        .encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def choice_weighted(rng: random.Random, weighted: dict):
    """Pick a key from ``weighted`` (key -> weight) proportionally.

    Weights need not sum to one.  Raises ``ValueError`` on an empty or
    all-zero table.
    """
    total = float(sum(weighted.values()))
    if total <= 0:
        raise ValueError("no positive weights to choose from")
    point = rng.random() * total
    acc = 0.0
    last = None
    for key, weight in weighted.items():
        acc += weight
        last = key
        if point < acc:
            return key
    return last
