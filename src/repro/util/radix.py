"""A binary radix trie over IPv4 prefixes with longest-prefix match.

This is the substrate for the BGP-derived prefix-to-AS mapping used by
RouterToAsAssignment and bdrmapIT (section 2.1 of the paper).  The trie
stores one value per prefix; lookups return the value attached to the
longest prefix covering an address.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.util.ipaddr import IPv4Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class RadixTrie(Generic[V]):
    """Maps IPv4 prefixes to values, answering longest-prefix-match queries.

    >>> trie = RadixTrie()
    >>> trie.insert(IPv4Prefix.parse("10.0.0.0/8"), "coarse")
    >>> trie.insert(IPv4Prefix.parse("10.1.0.0/16"), "fine")
    >>> from repro.util.ipaddr import ip_to_int
    >>> trie.lookup(ip_to_int("10.1.2.3"))
    'fine'
    >>> trie.lookup(ip_to_int("10.2.2.3"))
    'coarse'
    >>> trie.lookup(ip_to_int("11.0.0.1")) is None
    True
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _bit(address: int, depth: int) -> int:
        return (address >> (31 - depth)) & 1

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Attach ``value`` to ``prefix``, replacing any existing value."""
        node = self._root
        for depth in range(prefix.length):
            bit = self._bit(prefix.network, depth)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: int) -> Optional[V]:
        """Return the value of the longest prefix covering ``address``."""
        result = self.lookup_prefix(address)
        return result[1] if result is not None else None

    def lookup_prefix(self, address: int) -> Optional[Tuple[IPv4Prefix, V]]:
        """Like :meth:`lookup` but also return the matching prefix."""
        node = self._root
        best: Optional[Tuple[IPv4Prefix, V]] = None
        if node.has_value:
            best = (IPv4Prefix(0, 0), node.value)  # type: ignore[arg-type]
        network = 0
        for depth in range(32):
            bit = self._bit(address, depth)
            node = node.children[bit]  # type: ignore[assignment]
            if node is None:
                break
            network |= bit << (31 - depth)
            if node.has_value:
                best = (IPv4Prefix(network & self._mask(depth + 1), depth + 1),
                        node.value)  # type: ignore[arg-type]
        return best

    @staticmethod
    def _mask(length: int) -> int:
        if length == 0:
            return 0
        return (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF

    def exact(self, prefix: IPv4Prefix) -> Optional[V]:
        """Return the value stored exactly at ``prefix``, if any."""
        node = self._root
        for depth in range(prefix.length):
            bit = self._bit(prefix.network, depth)
            node = node.children[bit]  # type: ignore[assignment]
            if node is None:
                return None
        return node.value if node.has_value else None

    def items(self) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Yield every (prefix, value) pair, in depth-first order."""
        stack: List[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, depth = stack.pop()
            if node.has_value:
                yield (IPv4Prefix(network, depth), node.value)  # type: ignore[misc]
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append(
                        (child, network | (bit << (31 - depth)), depth + 1))
