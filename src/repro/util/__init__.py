"""Low-level utilities shared by every subsystem.

The modules in this package deliberately avoid importing from the rest of
:mod:`repro`, so they can be used from any layer without creating import
cycles:

* :mod:`repro.util.strings` -- digit-run extraction and the
  Damerau-Levenshtein distance used by the congruence rules of the paper
  (section 3.1).
* :mod:`repro.util.ipaddr` -- small IPv4 helpers plus detection of IP
  addresses embedded in hostnames (figure 3b of the paper).
* :mod:`repro.util.radix` -- a binary radix trie providing longest-prefix
  match, the substrate for prefix-to-AS lookups.
* :mod:`repro.util.rand` -- deterministic random substreams so that every
  experiment is reproducible from a single seed.
"""

from repro.util.strings import damerau_levenshtein, digit_runs, DigitRun
from repro.util.ipaddr import (
    IPv4Prefix,
    ip_to_int,
    int_to_ip,
    embedded_ip_spans,
)
from repro.util.radix import RadixTrie
from repro.util.rand import substream

__all__ = [
    "damerau_levenshtein",
    "digit_runs",
    "DigitRun",
    "IPv4Prefix",
    "ip_to_int",
    "int_to_ip",
    "embedded_ip_spans",
    "RadixTrie",
    "substream",
]
