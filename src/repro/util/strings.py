"""String helpers used by the Hoiho-ASN congruence rules.

The paper (section 3.1) decides whether a number extracted from a hostname
is *congruent* with a training ASN using exact equality or a
Damerau-Levenshtein edit distance of one with guard conditions.  This
module provides the distance function and helpers for locating candidate
numeric strings inside hostnames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence


@dataclass(frozen=True)
class DigitRun:
    """A maximal run of ASCII digits inside a string.

    Attributes:
        start: index of the first digit.
        end: index one past the last digit (``text[start:end]`` is the run).
        text: the digits themselves.
    """

    start: int
    end: int
    text: str

    @property
    def value(self) -> int:
        """The run interpreted as a base-10 integer."""
        return int(self.text)

    def __len__(self) -> int:
        return self.end - self.start


def digit_runs(text: str) -> List[DigitRun]:
    """Return every maximal digit run in ``text``, left to right.

    >>> [r.text for r in digit_runs("p24115.mel.equinix.com")]
    ['24115']
    >>> [r.text for r in digit_runs("te-4-0-0-85.53w")]
    ['4', '0', '0', '85', '53']
    """
    runs: List[DigitRun] = []
    i = 0
    n = len(text)
    while i < n:
        if text[i].isdigit():
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            runs.append(DigitRun(i, j, text[i:j]))
            i = j
        else:
            i += 1
    return runs


def iter_subruns(run: DigitRun, min_len: int = 1) -> Iterator[DigitRun]:
    """Yield every contiguous sub-run of ``run`` with length >= ``min_len``.

    Hostnames sometimes concatenate an ASN with other digits (for example a
    port or unit number), so congruence checks may need to consider
    substrings of a digit run, not just the whole run.  Sub-runs are yielded
    longest-first so that callers preferring maximal matches can stop early.
    """
    length = len(run.text)
    for sublen in range(length, min_len - 1, -1):
        for off in range(0, length - sublen + 1):
            yield DigitRun(run.start + off, run.start + off + sublen,
                           run.text[off:off + sublen])


def damerau_levenshtein(a: str, b: str) -> int:
    """Restricted Damerau-Levenshtein distance between two strings.

    Counts insertions, deletions, substitutions, and transpositions of two
    adjacent characters, each as one edit (the "optimal string alignment"
    variant, matching the distance used by Hoiho).

    >>> damerau_levenshtein("22822", "22282")
    1
    >>> damerau_levenshtein("605", "6057")
    1
    >>> damerau_levenshtein("109", "109")
    0
    """
    la, lb = len(a), len(b)
    if la == 0:
        return lb
    if lb == 0:
        return la
    # Classic O(la*lb) dynamic program with one extra row remembered for
    # the transposition case.
    prev2: List[int] = []
    prev = list(range(lb + 1))
    for i in range(1, la + 1):
        cur = [i] + [0] * lb
        for j in range(1, lb + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            cur[j] = min(
                prev[j] + 1,        # deletion
                cur[j - 1] + 1,     # insertion
                prev[j - 1] + cost  # substitution
            )
            if (i > 1 and j > 1 and a[i - 1] == b[j - 2]
                    and a[i - 2] == b[j - 1]):
                cur[j] = min(cur[j], prev2[j - 2] + 1)  # transposition
        prev2, prev = prev, cur
    return prev[lb]


def common_prefix_len(items: Sequence[str]) -> int:
    """Length of the longest common prefix across ``items``.

    >>> common_prefix_len(["as1299", "as209", "as64500"])
    2
    >>> common_prefix_len([])
    0
    """
    if not items:
        return 0
    first = min(items)
    last = max(items)
    i = 0
    for ca, cb in zip(first, last):
        if ca != cb:
            break
        i += 1
    return i


def common_suffix_len(items: Sequence[str]) -> int:
    """Length of the longest common suffix across ``items``."""
    return common_prefix_len([s[::-1] for s in items])


PUNCTUATION = ".-_"
"""Characters treated as structural punctuation inside hostnames."""


def is_punct(ch: str) -> bool:
    """True if ``ch`` is hostname punctuation (dot, hyphen, underscore)."""
    return ch in PUNCTUATION


def split_segments(text: str) -> List[str]:
    """Split ``text`` into alternating segment/punctuation tokens.

    The returned list always starts and ends with a (possibly empty)
    non-punctuation segment, with single punctuation characters between
    them, so ``"".join(split_segments(t)) == t``.

    >>> split_segments("p24115.mel")
    ['p24115', '.', 'mel']
    >>> split_segments("-a")
    ['', '-', 'a']
    """
    tokens: List[str] = []
    seg: List[str] = []
    for ch in text:
        if is_punct(ch):
            tokens.append("".join(seg))
            tokens.append(ch)
            seg = []
        else:
            seg.append(ch)
    tokens.append("".join(seg))
    return tokens
