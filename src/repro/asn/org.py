"""AS-to-organization mapping (the role CAIDA's AS2Org dataset plays).

Two ASNs are *siblings* when the same organization operates both, e.g.
Microsoft's AS8075/AS8069/AS12076.  The paper uses siblings twice: the
section 4 PPV adjustment (an extracted ASN that is a sibling of the
training ASN is not an error) and the section 5 reasonableness test.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


class ASOrgMap:
    """Maps ASNs to organization identifiers and answers sibling queries.

    >>> orgs = ASOrgMap()
    >>> orgs.assign(8075, "ORG-MSFT")
    >>> orgs.assign(8069, "ORG-MSFT")
    >>> orgs.siblings(8075) == {8075, 8069}
    True
    >>> orgs.are_siblings(8075, 8069)
    True
    >>> orgs.are_siblings(8075, 3356)
    False
    """

    def __init__(self) -> None:
        self._org_of: Dict[int, str] = {}
        self._members: Dict[str, Set[int]] = defaultdict(set)
        self._names: Dict[str, str] = {}

    def assign(self, asn: int, org_id: str,
               org_name: Optional[str] = None) -> None:
        """Place ``asn`` inside organization ``org_id``.

        Reassigning an ASN moves it between organizations.
        """
        previous = self._org_of.get(asn)
        if previous is not None and previous != org_id:
            self._members[previous].discard(asn)
            if not self._members[previous]:
                del self._members[previous]
        self._org_of[asn] = org_id
        self._members[org_id].add(asn)
        if org_name is not None:
            self._names[org_id] = org_name

    def org_of(self, asn: int) -> Optional[str]:
        """Organization identifier operating ``asn``, if known."""
        return self._org_of.get(asn)

    def org_name(self, org_id: str) -> Optional[str]:
        """Human-readable name of ``org_id``, if recorded."""
        return self._names.get(org_id)

    def members(self, org_id: str) -> Set[int]:
        """All ASNs operated by ``org_id``."""
        return set(self._members.get(org_id, ()))

    def siblings(self, asn: int) -> Set[int]:
        """All ASNs sharing an organization with ``asn`` (incl. itself)."""
        org = self._org_of.get(asn)
        if org is None:
            return {asn}
        return set(self._members[org])

    def are_siblings(self, a: int, b: int) -> bool:
        """True when one organization operates both ``a`` and ``b``."""
        if a == b:
            return True
        org_a = self._org_of.get(a)
        return org_a is not None and org_a == self._org_of.get(b)

    def organizations(self) -> Iterator[Tuple[str, Set[int]]]:
        """Yield (org_id, members) pairs."""
        for org_id, members in self._members.items():
            yield org_id, set(members)

    # -- serialization (jsonl-ish, AS2Org-flavoured) ----------------------

    def to_lines(self) -> Iterator[str]:
        """Serialize to ``asn|org_id|org_name`` lines."""
        for asn in sorted(self._org_of):
            org = self._org_of[asn]
            yield "%d|%s|%s" % (asn, org, self._names.get(org, ""))

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "ASOrgMap":
        """Parse lines produced by :meth:`to_lines`."""
        orgs = cls()
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            if len(fields) < 2:
                raise ValueError("malformed org line: %r" % raw)
            asn, org_id = int(fields[0]), fields[1]
            name = fields[2] if len(fields) > 2 and fields[2] else None
            orgs.assign(asn, org_id, name)
        return orgs
