"""AS relationship dataset in the style of CAIDA's serial-1 files.

Stores provider-customer and peer-peer links and answers the queries the
router-ownership heuristics rely on: provider/customer/peer sets, transit
degree, and valley-free step legality.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple


class Relationship(enum.IntEnum):
    """Relationship of a neighbor from the perspective of the first AS."""

    PROVIDER = -1
    PEER = 0
    CUSTOMER = 1


class ASRelationships:
    """Provider/customer and peer links between ASNs.

    The serialization format matches CAIDA's serial-1 relationship files:
    ``provider|customer|-1`` and ``peer|peer|0`` lines, ``#`` comments.

    >>> rels = ASRelationships()
    >>> rels.add_p2c(3356, 64500)
    >>> rels.add_p2p(3356, 1299)
    >>> rels.relationship(64500, 3356) is Relationship.PROVIDER
    True
    >>> sorted(rels.providers(64500))
    [3356]
    """

    def __init__(self) -> None:
        self._providers: Dict[int, Set[int]] = defaultdict(set)
        self._customers: Dict[int, Set[int]] = defaultdict(set)
        self._peers: Dict[int, Set[int]] = defaultdict(set)

    # -- construction ----------------------------------------------------

    def add_p2c(self, provider: int, customer: int) -> None:
        """Record that ``provider`` sells transit to ``customer``."""
        if provider == customer:
            raise ValueError("self relationship for AS%d" % provider)
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)

    def add_p2p(self, a: int, b: int) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        if a == b:
            raise ValueError("self peering for AS%d" % a)
        self._peers[a].add(b)
        self._peers[b].add(a)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "ASRelationships":
        """Parse serial-1 format lines."""
        rels = cls()
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            if len(fields) < 3:
                raise ValueError("malformed relationship line: %r" % raw)
            a, b, kind = int(fields[0]), int(fields[1]), int(fields[2])
            if kind == -1:
                rels.add_p2c(a, b)
            elif kind == 0:
                rels.add_p2p(a, b)
            else:
                raise ValueError("unknown relationship %d in %r" % (kind, raw))
        return rels

    def to_lines(self) -> Iterator[str]:
        """Serialize to serial-1 format lines (sorted, deterministic)."""
        for provider in sorted(self._customers):
            for customer in sorted(self._customers[provider]):
                yield "%d|%d|-1" % (provider, customer)
        emitted = set()
        for a in sorted(self._peers):
            for b in sorted(self._peers[a]):
                key = (min(a, b), max(a, b))
                if key in emitted:
                    continue
                emitted.add(key)
                yield "%d|%d|0" % key

    # -- queries ---------------------------------------------------------

    def providers(self, asn: int) -> Set[int]:
        """ASNs selling transit to ``asn``."""
        return self._providers.get(asn, set())

    def customers(self, asn: int) -> Set[int]:
        """ASNs buying transit from ``asn``."""
        return self._customers.get(asn, set())

    def peers(self, asn: int) -> Set[int]:
        """ASNs peering settlement-free with ``asn``."""
        return self._peers.get(asn, set())

    def neighbors(self, asn: int) -> Set[int]:
        """All ASNs adjacent to ``asn`` in the relationship graph."""
        return (self.providers(asn) | self.customers(asn) | self.peers(asn))

    def relationship(self, asn: int,
                     neighbor: int) -> Optional[Relationship]:
        """How ``neighbor`` relates to ``asn`` (or None if not adjacent)."""
        if neighbor in self._providers.get(asn, ()):
            return Relationship.PROVIDER
        if neighbor in self._customers.get(asn, ()):
            return Relationship.CUSTOMER
        if neighbor in self._peers.get(asn, ()):
            return Relationship.PEER
        return None

    def degree(self, asn: int) -> int:
        """Total number of relationship neighbors of ``asn``."""
        return len(self.neighbors(asn))

    def transit_degree(self, asn: int) -> int:
        """Number of customers -- a proxy for how much transit AS sells."""
        return len(self.customers(asn))

    def asns(self) -> Set[int]:
        """Every ASN appearing in any relationship."""
        out: Set[int] = set()
        out.update(self._providers)
        out.update(self._customers)
        out.update(self._peers)
        return out

    def is_transit_free(self, asn: int) -> bool:
        """True when ``asn`` has no providers (tier-1-like)."""
        return not self.providers(asn) and bool(self.customers(asn))

    # -- path legality ---------------------------------------------------

    def valley_free(self, path: Tuple[int, ...]) -> bool:
        """Check the Gao valley-free property for an AS path.

        A legal path is zero or more customer-to-provider steps, at most
        one peer step, then zero or more provider-to-customer steps.
        Unknown adjacencies make a path illegal.
        """
        # phase 0: uphill, phase 1: after peer/downhill start
        phase = 0
        for a, b in zip(path, path[1:]):
            rel = self.relationship(a, b)
            if rel is None:
                return False
            if rel is Relationship.PROVIDER:  # a -> its provider: uphill
                if phase != 0:
                    return False
            elif rel is Relationship.PEER:
                if phase != 0:
                    return False
                phase = 1
            else:  # a -> its customer: downhill
                phase = 1
        return True
