"""A BGP-derived routing information base and IP-to-AS mapping.

The router-ownership heuristics need the *origin AS* of every interface
address (the AS that announces the longest matching prefix in BGP), plus
knowledge of IXP peering LANs, whose addresses belong to the exchange
rather than any member and must be treated specially (bdrmapIT maps them
through to the following hop).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.util.ipaddr import IPv4Prefix, int_to_ip
from repro.util.radix import RadixTrie

IXP_ASN = -1
"""Sentinel origin for addresses inside an IXP peering LAN."""

UNKNOWN_ASN = 0
"""Sentinel origin for addresses covered by no announcement."""


class RouteTable:
    """Longest-prefix-match IP-to-AS built from prefix announcements.

    >>> table = RouteTable()
    >>> table.announce(IPv4Prefix.parse("10.0.0.0/8"), 3356)
    >>> table.announce(IPv4Prefix.parse("10.1.0.0/16"), 64500)
    >>> from repro.util.ipaddr import ip_to_int
    >>> table.origin(ip_to_int("10.1.9.9"))
    64500
    >>> table.origin(ip_to_int("10.9.9.9"))
    3356
    >>> table.origin(ip_to_int("192.0.2.1"))
    0
    """

    def __init__(self) -> None:
        self._trie: RadixTrie[int] = RadixTrie()
        self._ixp_prefixes: List[IPv4Prefix] = []
        self._by_origin: Dict[int, List[IPv4Prefix]] = {}
        self._ixp_org: RadixTrie[int] = RadixTrie()

    def announce(self, prefix: IPv4Prefix, origin: int) -> None:
        """Record that ``origin`` announces ``prefix`` in BGP."""
        self._trie.insert(prefix, origin)
        self._by_origin.setdefault(origin, []).append(prefix)

    def add_ixp_prefix(self, prefix: IPv4Prefix,
                       org_asn: Optional[int] = None) -> None:
        """Mark ``prefix`` as an IXP peering LAN (origin ``IXP_ASN``).

        ``org_asn`` optionally records the exchange operator's ASN (the
        AS the LAN is registered/announced under).  IXP-aware methods
        ignore it; naive election heuristics credit it for LAN
        addresses, reproducing the pre-bdrmap misattribution of member
        ports.
        """
        self._trie.insert(prefix, IXP_ASN)
        self._ixp_prefixes.append(prefix)
        if org_asn is not None:
            self._ixp_org.insert(prefix, org_asn)

    def ixp_org(self, address: int) -> Optional[int]:
        """Exchange operator ASN for an IXP LAN ``address``, if known."""
        return self._ixp_org.lookup(address)

    def origin(self, address: int) -> int:
        """Origin AS of ``address`` (``IXP_ASN``/``UNKNOWN_ASN`` sentinels)."""
        found = self._trie.lookup(address)
        return UNKNOWN_ASN if found is None else found

    def origin_prefix(self, address: int) -> Optional[Tuple[IPv4Prefix, int]]:
        """Longest matching (prefix, origin) for ``address``, if any."""
        return self._trie.lookup_prefix(address)

    def is_ixp(self, address: int) -> bool:
        """True when ``address`` lies inside a known IXP peering LAN."""
        return self.origin(address) == IXP_ASN

    def prefixes_of(self, origin: int) -> List[IPv4Prefix]:
        """All prefixes announced by ``origin`` (insertion order)."""
        return list(self._by_origin.get(origin, ()))

    def ixp_prefixes(self) -> List[IPv4Prefix]:
        """All registered IXP peering LAN prefixes."""
        return list(self._ixp_prefixes)

    def __len__(self) -> int:
        return len(self._trie)

    def items(self) -> Iterator[Tuple[IPv4Prefix, int]]:
        """Yield every (prefix, origin) announcement."""
        return self._trie.items()

    # -- serialization -----------------------------------------------------

    def to_lines(self) -> Iterator[str]:
        """Serialize as ``prefix|origin[|ixp_org]`` lines (sorted)."""
        for prefix, origin in sorted(self.items(),
                                     key=lambda item: (item[0].network,
                                                       item[0].length)):
            if origin == IXP_ASN:
                org = self._ixp_org.exact(prefix)
                if org is not None:
                    yield "%s|%d|%d" % (prefix, origin, org)
                    continue
            yield "%s|%d" % (prefix, origin)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "RouteTable":
        """Parse lines produced by :meth:`to_lines`."""
        table = cls()
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            prefix = IPv4Prefix.parse(fields[0])
            origin = int(fields[1])
            if origin == IXP_ASN:
                org = int(fields[2]) if len(fields) > 2 else None
                table.add_ixp_prefix(prefix, org_asn=org)
            else:
                table.announce(prefix, origin)
        return table

    def describe(self, address: int) -> str:
        """Debugging helper: ``a.b.c.d -> prefix (ASorigin)``."""
        hit = self.origin_prefix(address)
        if hit is None:
            return "%s -> (unrouted)" % int_to_ip(address)
        prefix, origin = hit
        label = "IXP" if origin == IXP_ASN else "AS%d" % origin
        return "%s -> %s (%s)" % (int_to_ip(address), prefix, label)
