"""AS-number infrastructure: relationships, organizations, and BGP state.

These mirror the external datasets the paper's pipeline consumes:

* :mod:`repro.asn.relationships` -- CAIDA-style AS relationship inferences
  (provider/customer and peer links) with the queries bdrmapIT needs.
* :mod:`repro.asn.org` -- AS-to-organization mapping; two ASNs are
  *siblings* when the same organization operates both (used by the paper's
  section 4 sibling adjustment and the section 5 reasonableness test).
* :mod:`repro.asn.bgp` -- a routing information base mapping prefixes to
  origin ASNs, longest-prefix-match IP-to-AS, and IXP prefix handling.
"""

from repro.asn.relationships import ASRelationships, Relationship
from repro.asn.org import ASOrgMap
from repro.asn.bgp import RouteTable, IXP_ASN, UNKNOWN_ASN

__all__ = [
    "ASRelationships",
    "Relationship",
    "ASOrgMap",
    "RouteTable",
    "IXP_ASN",
    "UNKNOWN_ASN",
]
