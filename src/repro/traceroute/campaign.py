"""Measurement campaigns: vantage points probing every routed prefix.

A campaign stands in for one Ark-style collection cycle.  The number of
vantage points and the per-VP destination coverage are the levers that
grow over the paper's 2010-2020 study period (one of the three factors
behind the growth in figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.topology.asgraph import Tier
from repro.topology.world import World
from repro.traceroute.probe import Prober, Trace
from repro.traceroute.routing import RoutingModel
from repro.util.rand import substream


@dataclass
class CampaignConfig:
    """Scale of one measurement campaign."""

    n_vps: int = 20
    dest_per_prefix: int = 2         # probed addresses per edge prefix
    dest_fraction: float = 1.0       # fraction of edge prefixes targeted
    anonymous_rate: float = 0.04
    dest_responds_rate: float = 0.8


def select_vps(world: World, n_vps: int, seed: int) -> List[int]:
    """Choose VP host ASes: diverse access/transit/content networks."""
    rng = substream(seed, "vps")
    graph = world.graph
    pool = [node.asn for node in
            graph.by_tier(Tier.ACCESS) + graph.by_tier(Tier.TRANSIT)
            + graph.by_tier(Tier.CONTENT) + graph.by_tier(Tier.STUB)]
    rng.shuffle(pool)
    return sorted(pool[:min(n_vps, len(pool))])


def run_campaign(world: World, routing: RoutingModel, seed: int,
                 config: Optional[CampaignConfig] = None) -> List[Trace]:
    """Probe (a sample of) every AS's edge prefixes from every VP."""
    config = config or CampaignConfig()
    rng = substream(seed, "campaign")
    prober = Prober(world, routing, seed,
                    anonymous_rate=config.anonymous_rate,
                    dest_responds_rate=config.dest_responds_rate)
    vp_asns = select_vps(world, config.n_vps, seed)

    # Destination list: addresses inside each AS's edge prefixes.  For
    # prefixes smaller than the per-prefix target count the clamped
    # offset collapses several indexes onto the same host; ``seen``
    # dedupes so no destination is probed twice from the same VP.
    destinations: List[int] = []
    seen: Set[int] = set()
    for asn in world.graph.asns():
        for prefix in world.plan.edge_prefixes(asn):
            if config.dest_fraction < 1.0 \
                    and rng.random() > config.dest_fraction:
                continue
            for index in range(config.dest_per_prefix):
                # Spread targets across the prefix; skip network address.
                offset = (prefix.size // (config.dest_per_prefix + 1)) \
                    * (index + 1) + 1
                address = prefix.host(min(offset, prefix.size - 1))
                if address not in seen:
                    seen.add(address)
                    destinations.append(address)

    traces: List[Trace] = []
    for vp_asn in vp_asns:
        routers = world.topology.routers_by_asn[vp_asn]
        cores = [r for r in routers if r.role == "core"]
        vp_router = cores[0] if cores else routers[0]
        for dst_address in destinations:
            trace = prober.trace(vp_asn, vp_router, dst_address)
            if trace is not None and trace.hops:
                traces.append(trace)
    return traces
