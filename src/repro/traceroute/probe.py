"""Router-level traceroute expansion.

Given an AS path, the prober walks the actual routers: inside each AS it
follows internal links between the ingress router and the egress border
router; between ASes it crosses the interdomain link (private /31 or IXP
LAN).  Every router after the source reports its *ingress* interface
address -- the address of the interface the probe arrived on -- which is
the semantics that make supplier-addressed interconnects so misleading
for IP-to-AS mapping (section 1 of the paper).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.routers import (
    Interface,
    InterfaceKind,
    Link,
    LinkKind,
    Router,
    RouterLevelTopology,
)
from repro.topology import geo
from repro.topology.world import World
from repro.traceroute.routing import RoutingModel
from repro.util.ipaddr import IPv4Prefix
from repro.util.radix import RadixTrie
from repro.util.rand import substream


@dataclass
class Trace:
    """One traceroute: observed hop addresses and RTTs to a destination."""

    vp_asn: int
    dst_address: int
    dst_asn: int
    hops: List[Optional[int]] = field(default_factory=list)
    #: Round-trip times (ms) parallel to ``hops`` (None for anonymous).
    rtts: List[Optional[float]] = field(default_factory=list)
    vp_loc: str = ""
    reached: bool = False

    def responsive_hops(self) -> List[int]:
        """The non-anonymous hop addresses, in order."""
        return [hop for hop in self.hops if hop is not None]

    def hop_rtts(self) -> List[Tuple[int, float]]:
        """(address, rtt) pairs for the responsive hops."""
        return [(hop, rtt) for hop, rtt in zip(self.hops, self.rtts)
                if hop is not None and rtt is not None]


class Prober:
    """Expands AS-level routes into router-level traceroute output."""

    def __init__(self, world: World, routing: RoutingModel,
                 seed: int, anonymous_rate: float = 0.04,
                 dest_responds_rate: float = 0.8) -> None:
        self._world = world
        self._routing = routing
        self._topo = world.topology
        self._anonymous_rate = anonymous_rate
        self._dest_responds_rate = dest_responds_rate
        rng = substream(seed, "prober")
        # Pre-roll per-router anonymity (a router either answers
        # traceroute or does not, consistently) and reply jitter.
        self._anonymous = {router.rid: rng.random() < anonymous_rate
                           for router in self._topo.routers}
        self._jitter = {router.rid: 0.1 + 1.4 * rng.random()
                        for router in self._topo.routers}
        self._dest_responds = rng  # drawn per destination, lazily
        self._dest_resp_cache: Dict[int, bool] = {}
        # Intra-AS adjacency over internal links.
        self._internal: Dict[str, List[Tuple[Link, Router]]] = \
            defaultdict(list)
        for link in self._topo.links:
            if link.kind is LinkKind.INTERNAL:
                self._internal[link.a.router.rid].append(
                    (link, link.b.router))
                self._internal[link.b.router.rid].append(
                    (link, link.a.router))
        self._path_cache: Dict[Tuple[str, str],
                               Optional[List[Tuple[Link, Router]]]] = {}
        self._edge_trie: "RadixTrie[Router]" = RadixTrie()
        for prefix, router in self._topo.edge_router_of_prefix.items():
            self._edge_trie.insert(prefix, router)

    # -- intra-AS pathing ---------------------------------------------------

    def _internal_path(self, src: Router,
                       dst: Router) -> Optional[List[Tuple[Link, Router]]]:
        """Shortest internal path src->dst as (link, next router) steps."""
        if src.rid == dst.rid:
            return []
        key = (src.rid, dst.rid)
        if key in self._path_cache:
            return self._path_cache[key]
        parents: Dict[str, Tuple[Link, Router, Router]] = {}
        frontier = deque([src])
        seen = {src.rid}
        found = False
        while frontier and not found:
            current = frontier.popleft()
            for link, neighbor in self._internal[current.rid]:
                if neighbor.rid in seen:
                    continue
                seen.add(neighbor.rid)
                parents[neighbor.rid] = (link, neighbor, current)
                if neighbor.rid == dst.rid:
                    found = True
                    break
                frontier.append(neighbor)
        if not found:
            self._path_cache[key] = None
            return None
        steps: List[Tuple[Link, Router]] = []
        walk = dst.rid
        while walk != src.rid:
            link, router, previous = parents[walk]
            steps.append((link, router))
            walk = previous.rid
        steps.reverse()
        self._path_cache[key] = steps
        return steps

    # -- interdomain link selection ------------------------------------------

    def _interdomain_link(self, a: int, b: int,
                          flow: int) -> Optional[Link]:
        """The link used between adjacent ASes.

        The first provisioned link is primary; any others are cold
        backups that forwarding never uses (their supplier-named far
        sides exist in reverse DNS but not in traceroute -- the basis
        of the section-7 expansion observation).
        """
        key = (min(a, b), max(a, b))
        links = self._topo.interdomain_links.get(key)
        if not links:
            return None
        return links[0]

    @staticmethod
    def _link_interface(link: Link, asn: int) -> Optional[Interface]:
        """The interface of ``link`` residing on a router of ``asn``."""
        if link.a.router.asn == asn:
            return link.a
        if link.b.router.asn == asn:
            return link.b
        return None

    # -- hop recording -------------------------------------------------------

    def _record(self, trace: Trace, router: Router,
                iface: Interface, delay_ms: float) -> None:
        if self._anonymous[router.rid]:
            trace.hops.append(None)
            trace.rtts.append(None)
        else:
            trace.hops.append(iface.address)
            trace.rtts.append(round(2.0 * delay_ms
                                    + self._jitter[router.rid], 3))

    # -- main entry ------------------------------------------------------------

    def trace(self, vp_asn: int, vp_router: Router,
              dst_address: int) -> Optional[Trace]:
        """Simulate one traceroute from ``vp_router`` to ``dst_address``.

        Returns ``None`` when the VP has no route to the destination's
        origin AS; otherwise a :class:`Trace`, possibly truncated when an
        internal path is missing (treated as unreachable).
        """
        dst_asn = self._world.origin(dst_address)
        if dst_asn <= 0:
            return None
        as_path = self._routing.as_path(vp_asn, dst_asn)
        if as_path is None:
            return None
        trace = Trace(vp_asn=vp_asn, dst_address=dst_address,
                      dst_asn=dst_asn, vp_loc=vp_router.loc)
        flow = dst_address  # deterministic per-destination flow id

        current_router = vp_router
        delay = 0.0          # cumulative one-way propagation (ms)
        for position in range(len(as_path) - 1):
            this_asn, next_asn = as_path[position], as_path[position + 1]
            link = self._interdomain_link(this_asn, next_asn, flow)
            if link is None:
                return trace  # no physical link; trace dies here
            egress_iface = self._link_interface(link, this_asn)
            ingress_iface = self._link_interface(link, next_asn)
            if egress_iface is None or ingress_iface is None:
                return trace
            steps = self._internal_path(current_router, egress_iface.router)
            if steps is None:
                return trace
            previous = current_router
            for internal_link, router in steps:
                arrived = internal_link.a if internal_link.a.router is router \
                    else internal_link.b
                delay += geo.propagation_ms(previous.loc, router.loc) + 0.05
                self._record(trace, router, arrived, delay)
                previous = router
            # Cross the interdomain link: next router answers with the
            # interface address on the shared subnet (supplier-addressed,
            # or the IXP LAN address).
            delay += geo.propagation_ms(previous.loc,
                                        ingress_iface.router.loc) + 0.05
            self._record(trace, ingress_iface.router, ingress_iface, delay)
            current_router = ingress_iface.router

        # Inside the destination AS: walk to the edge router hosting the
        # destination prefix, then the destination itself may answer.
        edge_router = self._edge_router_for(dst_address, dst_asn)
        if edge_router is not None:
            steps = self._internal_path(current_router, edge_router)
            if steps is not None:
                previous = current_router
                for internal_link, router in steps:
                    arrived = internal_link.a \
                        if internal_link.a.router is router \
                        else internal_link.b
                    delay += geo.propagation_ms(previous.loc,
                                                router.loc) + 0.05
                    self._record(trace, router, arrived, delay)
                    previous = router
                if self._destination_responds(dst_address):
                    trace.hops.append(dst_address)
                    trace.rtts.append(round(2.0 * (delay + 0.05) + 0.5, 3))
                    trace.reached = True
        return trace

    def _edge_router_for(self, address: int,
                         dst_asn: int) -> Optional[Router]:
        router = self._edge_trie.lookup(address)
        if router is not None and router.asn == dst_asn:
            return router
        routers = self._topo.routers_by_asn.get(dst_asn)
        return routers[0] if routers else None

    def _destination_responds(self, address: int) -> bool:
        cached = self._dest_resp_cache.get(address)
        if cached is None:
            cached = self._dest_responds.random() < self._dest_responds_rate
            self._dest_resp_cache[address] = cached
        return cached
