"""Traceroute simulation over the synthetic Internet.

* :mod:`repro.traceroute.routing` computes AS-level forwarding under the
  standard Gao-Rexford policy model (prefer customer routes over peer
  routes over provider routes, then shortest AS path, with valley-free
  export rules);
* :mod:`repro.traceroute.probe` expands AS paths to router-level hop
  sequences, reporting the *ingress* interface of every router -- which
  is how supplier-addressed interconnects end up attributed to the wrong
  AS by naive IP-to-AS mapping;
* :mod:`repro.traceroute.campaign` runs measurement campaigns from
  configurable vantage points, producing the trace sets ITDK snapshots
  are built from.
"""

from repro.traceroute.routing import RoutingModel
from repro.traceroute.probe import Prober, Trace
from repro.traceroute.campaign import CampaignConfig, run_campaign

__all__ = [
    "RoutingModel",
    "Prober",
    "Trace",
    "CampaignConfig",
    "run_campaign",
]
