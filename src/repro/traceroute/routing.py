"""AS-level forwarding under the Gao-Rexford policy model.

Routes propagate per destination AS in three passes:

1. **customer routes** climb provider links (everyone announces to their
   providers what they and their customers originate);
2. **peer routes** cross exactly one peer link from an AS holding a
   customer route (peers exchange only customer routes);
3. **provider routes** descend customer links (providers announce
   everything to customers).

Each AS prefers customer > peer > provider routes, then shortest AS
path, then the lowest next-hop ASN (a deterministic stand-in for
tie-break policy).  The resulting next-hop matrix yields valley-free
paths by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.asn.relationships import ASRelationships
from repro.topology.asgraph import ASGraph

# Route preference classes, lower is better.
_CUSTOMER, _PEER, _PROVIDER = 0, 1, 2


class RoutingModel:
    """Next-hop forwarding state for every (source, destination) AS pair.

    Per-destination next-hop vectors are computed lazily on first query
    and memoised, so a model serving only a few destinations (a TINY
    campaign, a restricted benchmark) never pays the full O(V * E)
    construction, and the pickle shipped to worker processes carries
    only what was actually computed.  :meth:`precompute` restores the
    eager behaviour for full campaigns; ``eager=True`` at construction
    does the same.  Queries against an eager and a lazy model are
    identical by construction (same per-destination solver).

    >>> # doctest-level example lives in tests/traceroute/test_routing.py
    """

    def __init__(self, graph: ASGraph, eager: bool = False) -> None:
        self._graph = graph
        self._rels = graph.relationships
        self._asns = graph.asns()
        self._index = {asn: i for i, asn in enumerate(self._asns)}
        # next_hop[dst][src] -> next AS towards dst (or None / dst itself)
        self._next_hop: Dict[int, List[Optional[int]]] = {}
        if eager:
            self.precompute()

    def precompute(self, dsts: Optional[Iterable[int]] = None
                   ) -> "RoutingModel":
        """Eagerly solve routes towards ``dsts`` (default: every AS).

        Returns ``self`` so construction and precomputation chain:
        ``RoutingModel(graph).precompute()``.  Unknown destinations are
        ignored, matching :meth:`next_hop` query semantics.
        """
        for dst in (self._asns if dsts is None else dsts):
            if dst in self._index:
                self._hops_to(dst)
        return self

    @property
    def computed_destinations(self) -> int:
        """How many per-destination vectors have been solved so far."""
        return len(self._next_hop)

    def _hops_to(self, dst: int) -> List[Optional[int]]:
        """The (memoised) next-hop vector towards ``dst``."""
        hops = self._next_hop.get(dst)
        if hops is None:
            hops = self._next_hop[dst] = self._routes_to(dst)
        return hops

    def _routes_to(self, dst: int) -> List[Optional[int]]:
        """Best next hop towards ``dst`` for every AS."""
        rels = self._rels
        n = len(self._asns)
        index = self._index
        # (pref, dist, tiebreak) per AS; next hop per AS
        best: List[Optional[Tuple[int, int, int]]] = [None] * n
        hop: List[Optional[int]] = [None] * n

        di = index[dst]
        best[di] = (_CUSTOMER, 0, 0)

        # Pass 1: customer routes climb provider links breadth-first.
        frontier = deque([dst])
        while frontier:
            asn = frontier.popleft()
            ai = index[asn]
            pref, dist, _ = best[ai]  # type: ignore[misc]
            for provider in rels.providers(asn):
                pi = index[provider]
                candidate = (_CUSTOMER, dist + 1, asn)
                if best[pi] is None or candidate < best[pi]:
                    if best[pi] is None:
                        frontier.append(provider)
                    best[pi] = candidate
                    hop[pi] = asn

        # Pass 2: one peer hop from any AS holding a customer route.
        peer_updates: List[Tuple[int, Tuple[int, int, int], int]] = []
        for asn in self._asns:
            ai = index[asn]
            entry = best[ai]
            if entry is None or entry[0] != _CUSTOMER:
                continue
            for peer in rels.peers(asn):
                pi = index[peer]
                candidate = (_PEER, entry[1] + 1, asn)
                if best[pi] is None or candidate < best[pi]:
                    peer_updates.append((pi, candidate, asn))
        for pi, candidate, via in peer_updates:
            if best[pi] is None or candidate < best[pi]:
                best[pi] = candidate
                hop[pi] = via

        # Pass 3: provider routes descend customer links breadth-first.
        # Seed with every AS currently holding a route; customers may
        # then learn from their providers, iterating to fixpoint.
        frontier = deque(asn for asn in self._asns
                         if best[index[asn]] is not None)
        while frontier:
            asn = frontier.popleft()
            ai = index[asn]
            entry = best[ai]
            if entry is None:
                continue
            for customer in rels.customers(asn):
                ci = index[customer]
                candidate = (_PROVIDER, entry[1] + 1, asn)
                if best[ci] is None or candidate < best[ci]:
                    best[ci] = candidate
                    hop[ci] = asn
                    frontier.append(customer)

        return hop

    # -- queries -----------------------------------------------------------

    def next_hop(self, src: int, dst: int) -> Optional[int]:
        """Next AS on ``src``'s best route towards ``dst``.

        ``None`` when src has no route; ``dst`` itself on the last step.
        """
        if src == dst:
            return dst
        if dst not in self._index:
            return None
        return self._hops_to(dst)[self._index[src]]

    def as_path(self, src: int, dst: int,
                max_len: int = 32) -> Optional[List[int]]:
        """The AS-level path from ``src`` to ``dst`` (inclusive).

        Returns ``None`` when no route exists.
        """
        if src == dst:
            return [src]
        path = [src]
        current = src
        for _ in range(max_len):
            nxt = self.next_hop(current, dst)
            if nxt is None:
                return None
            path.append(nxt)
            if nxt == dst:
                return path
            current = nxt
        return None

    def reachable(self, src: int, dst: int) -> bool:
        """True when ``src`` holds a route towards ``dst``."""
        return self.as_path(src, dst) is not None
