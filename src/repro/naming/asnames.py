"""AS-name tokens for conventions that embed names instead of numbers.

The paper's future-work section (section 7) observes that at least three
times more suffixes embed AS *names* than AS numbers.  Our synthetic
operators with :class:`~repro.naming.conventions.EmbedKind.NAME`
conventions embed one of the tokens produced here, so a future extraction
method has realistic material, and so that these suffixes correctly fail
to yield ASN conventions in the ASN learner.
"""

from __future__ import annotations

from typing import List


def as_name_tokens(slug: str) -> List[str]:
    """Plausible hostname tokens an operator might use for AS ``slug``.

    >>> as_name_tokens("seabone")
    ['seabone', 'seabon', 'sbn', 'sea']
    """
    tokens = [slug]
    if len(slug) > 6:
        tokens.append(slug[:6])
    if len(slug) > 4:
        # Drop interior vowels after the first character: "seabone"->"sbone"
        head, tail = slug[0], slug[1:]
        squeezed = head + "".join(c for c in tail if c not in "aeiou")
        if squeezed not in tokens and len(squeezed) >= 3:
            tokens.append(squeezed)
    if len(slug) >= 3 and slug[:3] not in tokens:
        tokens.append(slug[:3])
    return tokens
