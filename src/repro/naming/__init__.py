"""Hostname assignment for the synthetic Internet.

The AS that supplies an interface's address owns the reverse DNS zone and
chooses the hostname -- the central operational fact of the paper
(figure 1).  This package models per-operator naming conventions across
the taxonomy of Table 1 (simple/start/end/bare/complex), plus the
conventions that must *not* yield usable ASN regexes: decorating every
hostname with the operator's own ASN (figure 2), embedding AS names
instead of numbers, geography-only names, and IP-derived names
(figure 3b).  It also injects the data-quality hazards the paper handles:
stale hostnames, single-edit typos (figure 3a), and sibling-ASN
annotations.
"""

from repro.naming.conventions import (
    ConventionProfile,
    EmbedKind,
    IXPNamingMode,
    Style,
    profile_for_as,
    ixp_mode_for,
)
from repro.naming.assigner import (
    HostnameRecord,
    NamingConfig,
    NamingOutcome,
    assign_hostnames,
)
from repro.naming.asnames import as_name_tokens

__all__ = [
    "ConventionProfile",
    "EmbedKind",
    "IXPNamingMode",
    "Style",
    "profile_for_as",
    "ixp_mode_for",
    "HostnameRecord",
    "NamingConfig",
    "NamingOutcome",
    "assign_hostnames",
    "as_name_tokens",
]
