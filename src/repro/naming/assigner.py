"""Assign hostnames to every interface of a world.

The assigner walks all interfaces, determines the *naming operator* (the
AS supplying the address space, or the IXP for LAN addresses), renders a
label from that operator's :class:`~repro.naming.conventions.ConventionProfile`,
and injects the paper's data hazards:

* **sibling annotations** -- the hostname embeds a sibling ASN of the
  router's operator (Microsoft 8069/8075 in the paper's validation);
* **stale hostnames** -- the embedded ASN belongs to a previous customer
  of the supplying AS (section 6);
* **typos** -- a single Damerau-Levenshtein edit of the digit string
  (figure 3a), usually one Hoiho's guarded edit-distance rule can still
  accept, occasionally not.

The outcome records, per address, the ground truth needed by the
validation experiments: which ASN the convention *intended* to describe,
which digit string was actually embedded, and which hazards fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.naming.asnames import as_name_tokens
from repro.naming.conventions import (
    ConventionProfile,
    EmbedKind,
    IXPNamingMode,
    Style,
    asname_label,
    geo_label,
    ip_label,
    ixp_mode_for,
    member_ixp_label,
    neighbor_label,
    operator_ixp_label,
    own_decor_label,
    plain_label,
    profile_for_as,
)
from repro.topology.routers import Interface, InterfaceKind
from repro.topology.world import World
from repro.util.ipaddr import int_to_ip
from repro.util.rand import substream


@dataclass
class NamingConfig:
    """Data-quality knobs for one snapshot's hostname assignment."""

    year: float = 2020.0
    stale_rate: float = 0.02        # embedded ASN is a previous neighbor
    typo_rate: float = 0.004        # single-edit digit typo
    typo_rescuable: float = 0.75    # fraction of typos the guarded rule saves
    sibling_embed_rate: float = 0.35  # subject orgs with siblings: embed one
    near_side_hazard: bool = True   # operators that label their own side too
    # A few operators neglect reverse DNS badly: most of their ASN
    # hostnames are stale.  These suffixes yield *poor* conventions and
    # feed Table 2's "incorrect hostname" population.
    sloppy_operator_rate: float = 0.04
    sloppy_stale_rate: float = 0.35
    # IXP LANs are curated: ports get renamed when members churn, so the
    # stale/sibling rates are lower than general infrastructure zones
    # (PeeringDB training PPV was 96% in the paper).
    ixp_stale_rate: float = 0.012
    ixp_sibling_rate: float = 0.08
    # Location codes also go stale when gear moves between sites
    # (DRoP's motivation); a small fraction of names carry the wrong
    # metro code.
    misloc_rate: float = 0.02


@dataclass
class HostnameRecord:
    """Ground truth about one assigned hostname."""

    address: int
    hostname: str
    namer_asn: int                   # AS (or -ixp_id-1 for IXPs) that named it
    domain: str
    subject_asn: Optional[int]       # ASN the convention meant to describe
    embedded_text: Optional[str]     # digit string actually embedded
    stale: bool = False
    typo: bool = False
    sibling: bool = False
    embed: Optional[EmbedKind] = None
    style: Optional[Style] = None

    @property
    def embedded_asn(self) -> Optional[int]:
        """The embedded digits as an integer, when present."""
        return int(self.embedded_text) if self.embedded_text else None

    @property
    def correct(self) -> Optional[bool]:
        """Does the hostname describe the intended ASN without hazards?

        ``None`` when the hostname embeds no ASN at all.
        """
        if self.embedded_text is None or self.subject_asn is None:
            return None
        return not self.stale and str(self.subject_asn) == self.embedded_text


@dataclass
class NamingOutcome:
    """All hostname assignments for one snapshot."""

    config: NamingConfig
    records: Dict[int, HostnameRecord] = field(default_factory=dict)
    profiles: Dict[int, ConventionProfile] = field(default_factory=dict)
    ixp_modes: Dict[int, IXPNamingMode] = field(default_factory=dict)

    def hostname(self, address: int) -> Optional[str]:
        """Hostname for ``address``, if one was assigned."""
        record = self.records.get(address)
        return record.hostname if record is not None else None

    def record(self, address: int) -> Optional[HostnameRecord]:
        """Ground-truth record for ``address``."""
        return self.records.get(address)


class _HazardInjector:
    """Applies sibling/stale/typo hazards to an embedded ASN string."""

    def __init__(self, world: World, config: NamingConfig, seed: int) -> None:
        self._world = world
        self._config = config
        self._rng = substream(seed, "hazards")
        self._all_asns = world.graph.asns()
        # Deterministically mark the sloppy operators (keyed by the world
        # seed so a given operator is consistently sloppy over time).
        sloppy_rng = substream(world.seed, "sloppy")
        self._sloppy = {asn for asn in self._all_asns
                        if sloppy_rng.random() < config.sloppy_operator_rate}

    def stale_rate_for(self, namer: int) -> float:
        """Per-operator staleness (sloppy operators neglect their zones)."""
        if namer < 0:
            return self._config.ixp_stale_rate
        if namer in self._sloppy:
            return self._config.sloppy_stale_rate
        return self._config.stale_rate

    def sibling_rate_for(self, namer: int) -> float:
        """Sibling-annotation rate (lower on curated IXP LANs)."""
        if namer < 0:
            return self._config.ixp_sibling_rate
        return self._config.sibling_embed_rate

    def apply(self, subject: int, namer: int):
        """Return (digit string to embed, stale?, typo?, sibling?)."""
        rng = self._rng
        config = self._config
        embedded = subject
        stale = sibling = typo = False
        siblings = sorted(self._world.graph.orgs.siblings(subject) - {subject})
        if siblings and rng.random() < self.sibling_rate_for(namer):
            embedded = rng.choice(siblings)
            sibling = True
        if rng.random() < self.stale_rate_for(namer):
            embedded = self._stale_asn(namer, embedded, rng)
            stale = True
        text = str(embedded)
        if rng.random() < config.typo_rate:
            text = self._typo(text, rng)
            typo = True
        return text, stale, typo, sibling

    def _stale_asn(self, namer: int, current: int, rng) -> int:
        """A plausible previous neighbor of the naming AS."""
        rels = self._world.graph.relationships
        candidates = sorted((rels.customers(namer) | rels.peers(namer))
                            - {current})
        if candidates and rng.random() < 0.8:
            return rng.choice(candidates)
        for _ in range(10):
            asn = rng.choice(self._all_asns)
            if asn != current:
                return asn
        return current + 1

    @staticmethod
    def _typo(text: str, rng) -> str:
        """Apply one Damerau-Levenshtein edit to a digit string."""
        if len(text) < 3:
            return text + str(rng.randint(0, 9))
        rescuable = rng.random() < 0.75
        if rescuable and len(text) >= 4:
            # Transpose two interior digits: first/last preserved, so the
            # paper's guarded rule still accepts the hostname as a TP.
            i = rng.randint(1, len(text) - 3)
            chars = list(text)
            chars[i], chars[i + 1] = chars[i + 1], chars[i]
            out = "".join(chars)
            if out != text:
                return out
            return text[:i] + str((int(text[i]) + 1) % 10) + text[i + 1:]
        # Non-rescuable: damage the first digit (never producing a leading 0).
        first = str((int(text[0]) % 9) + 1)
        return first + text[1:]


def assign_hostnames(world: World, seed: int,
                     config: Optional[NamingConfig] = None) -> NamingOutcome:
    """Assign hostnames to every interface in ``world``.

    ``seed`` keys the snapshot-specific randomness (hazards, decoration);
    the per-operator profiles are keyed by ``world.seed`` so operators are
    consistent across snapshots of the same world.
    """
    config = config or NamingConfig()
    outcome = NamingOutcome(config=config)
    hazards = _HazardInjector(world, config, seed)
    rng = substream(seed, "labels")

    for asn in world.graph.asns():
        outcome.profiles[asn] = profile_for_as(world.seed, world.node(asn))
    for ixp in world.graph.ixps:
        outcome.ixp_modes[ixp.ixp_id] = ixp_mode_for(world.seed, ixp)

    for router in world.routers():
        for iface in router.interfaces:
            record = _name_interface(world, iface, outcome, hazards, config,
                                     rng)
            if record is not None:
                iface.hostname = record.hostname
                outcome.records[iface.address] = record
            else:
                iface.hostname = None

    return outcome


def host_hostname(world: World, address: int, outcome: NamingOutcome,
                  seed: int) -> Optional[HostnameRecord]:
    """Hostname for a non-router (destination host) address, if any.

    Consumer access networks with IP-derived conventions publish PTR
    records for end-host space; infrastructure operators generally do not.
    The record is memoised into ``outcome``.
    """
    existing = outcome.records.get(address)
    if existing is not None:
        return existing
    origin = world.origin(address)
    if origin <= 0:
        return None
    profile = outcome.profiles.get(origin)
    if profile is None or profile.embed is not EmbedKind.IP_DERIVED:
        return None
    rng = substream(seed, "host", address)
    label = ip_label(int_to_ip(address), rng)
    record = HostnameRecord(
        address=address, hostname="%s.%s" % (label, profile.domain),
        namer_asn=origin, domain=profile.domain, subject_asn=None,
        embedded_text=None, embed=EmbedKind.IP_DERIVED)
    outcome.records[address] = record
    return record


def _wrong_loc(world: World, current: str, rng) -> str:
    """A different location code (gear moved, name not updated)."""
    from repro.topology.asgraph import _LOC_CODES
    for _ in range(5):
        candidate = rng.choice(_LOC_CODES)
        if candidate != current:
            return candidate
    return current


def _name_interface(world: World, iface: Interface, outcome: NamingOutcome,
                    hazards: _HazardInjector, config: NamingConfig,
                    rng) -> Optional[HostnameRecord]:
    """Render one interface's hostname, or None for no PTR record."""
    router = iface.router
    if iface.kind is InterfaceKind.IXP_LAN:
        return _name_ixp_interface(world, iface, outcome, hazards, rng)

    namer_asn = iface.supplier_asn
    profile = outcome.profiles[namer_asn]
    node = world.node(namer_asn)
    far_side = iface.kind is InterfaceKind.P2P and router.asn != namer_asn
    loc = router.loc
    if rng.random() < config.misloc_rate:
        loc = _wrong_loc(world, loc, rng)

    if profile.embed is EmbedKind.NONE:
        return None

    if profile.embed is EmbedKind.IP_DERIVED:
        label = ip_label(iface.ip, rng)
        return _record(iface, label, profile, subject=None, embedded=None)

    if profile.embed is EmbedKind.OWN_DECOR:
        cust_slug = None
        if far_side:
            cust_slug = world.node(router.asn).slug[:3]
        label = own_decor_label(profile, namer_asn, loc, router.name,
                                iface.port, cust_slug, router.index)
        # The convention describes the supplying AS itself (figure 2):
        # the embedded ASN is the namer's, whatever router it sits on.
        return _record(iface, label, profile, subject=namer_asn,
                       embedded=str(namer_asn))

    if profile.embed is EmbedKind.NAME:
        if far_side:
            # Operators use one consistent name per neighbor: derive
            # the token from a stream keyed by (operator, neighbor).
            slug = world.node(router.asn).slug
            token_rng = substream(world.seed, "asname", namer_asn,
                                  router.asn)
            token = token_rng.choice(as_name_tokens(slug))
            label = asname_label(slug, loc, router.index, rng,
                                 token=token)
        else:
            label = plain_label(loc, router.name, iface.port,
                                rng.random())
        return _record(iface, label, profile, subject=None, embedded=None)

    if profile.embed is EmbedKind.GEO:
        label = geo_label(loc, router.name, iface.port, router.index)
        return _record(iface, label, profile, subject=None, embedded=None)

    # EmbedKind.NEIGHBOR_ASN from here on.
    adopted = profile.embeds_asn_in(config.year)
    if far_side and adopted:
        subject = router.asn
        text, stale, typo, sibling = hazards.apply(subject, namer_asn)
        label = neighbor_label(profile, text, loc, iface.port,
                               router.index, rng)
        return _record(iface, label, profile, subject=subject, embedded=text,
                       stale=stale, typo=typo, sibling=sibling)
    if (iface.kind is InterfaceKind.P2P and not far_side and adopted
            and profile.names_near_side and config.near_side_hazard
            and iface.neighbor_asn is not None and rng.random() < 0.5):
        # Operator labels its own side of the link with the neighbor ASN:
        # the hostname then names an AS that does not operate the router.
        subject = iface.neighbor_asn
        text, stale, typo, sibling = hazards.apply(subject, namer_asn)
        label = neighbor_label(profile, text, loc, iface.port,
                               router.index + 2, rng)
        return _record(iface, label, profile, subject=subject, embedded=text,
                       stale=stale, typo=typo, sibling=sibling)
    label = plain_label(loc, router.name, iface.port, rng.random())
    return _record(iface, label, profile, subject=None, embedded=None)


def _name_ixp_interface(world: World, iface: Interface,
                        outcome: NamingOutcome, hazards: _HazardInjector,
                        rng) -> Optional[HostnameRecord]:
    """Label a member port on an IXP peering LAN."""
    ixp = world.graph.ixps[iface.ixp_id]
    mode = outcome.ixp_modes[ixp.ixp_id]
    if mode is IXPNamingMode.NONE:
        return None
    member = iface.router.asn
    text, stale, typo, sibling = hazards.apply(member, -ixp.ixp_id - 1)
    metro = ixp.slug.split("-")[0]
    if mode is IXPNamingMode.MEMBER:
        variant = member % 3
        label = member_ixp_label(world.node(member).slug, text, variant)
    else:
        label = operator_ixp_label(mode, text, metro, iface.router.index)
    record = HostnameRecord(
        address=iface.address, hostname="%s.%s" % (label, ixp.domain),
        namer_asn=-ixp.ixp_id - 1, domain=ixp.domain, subject_asn=member,
        embedded_text=text, stale=stale, typo=typo, sibling=sibling,
        embed=EmbedKind.NEIGHBOR_ASN, style=None)
    return record


def _record(iface: Interface, label: str, profile: ConventionProfile,
            subject: Optional[int], embedded: Optional[str],
            stale: bool = False, typo: bool = False,
            sibling: bool = False) -> HostnameRecord:
    hostname = "%s.%s" % (label, profile.domain)
    return HostnameRecord(
        address=iface.address, hostname=hostname, namer_asn=profile.asn,
        domain=profile.domain, subject_asn=subject, embedded_text=embedded,
        stale=stale, typo=typo, sibling=sibling, embed=profile.embed,
        style=profile.style if profile.embed is EmbedKind.NEIGHBOR_ASN
        else None)
