"""Per-operator hostname conventions.

Each AS that runs reverse DNS gets a deterministic
:class:`ConventionProfile` describing *whether* it embeds ASNs (or AS
names, or nothing) and *how* (the Table-1 taxonomy: simple, start, end,
bare, complex).  IXPs get a :class:`IXPNamingMode` describing who labels
the peering LAN addresses.  Profiles are pure functions of the world seed
and the ASN, so every snapshot of the same world sees the same operator
behaving the same way -- only adoption (year) and data hazards vary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.naming.asnames import as_name_tokens
from repro.topology.asgraph import ASNode, IXPSpec, Tier
from repro.util.rand import choice_weighted, substream


class EmbedKind(enum.Enum):
    """What (if anything) the operator encodes about the router's AS."""

    NEIGHBOR_ASN = "neighbor-asn"   # ASN of the neighbor the address serves
    OWN_DECOR = "own-decor"         # operator's own ASN on every hostname
    NAME = "as-name"                # neighbor's AS *name*, no number
    GEO = "geo"                     # location-only names
    IP_DERIVED = "ip"               # hostnames derived from the address
    NONE = "none"                   # no PTR records at all


class Style(enum.Enum):
    """Where/how a neighbor ASN appears (Table 1 of the paper)."""

    SIMPLE = "simple"     # ^as(\d+)\.example\.com$
    START = "start"       # as(\d+)-10ge-fra2.example.com
    END = "end"           # fra2.cust.as(\d+).example.com
    BARE = "bare"         # (\d+).fra2.example.com
    COMPLEX = "complex"   # mid-hostname, odd annotation, or mixed formats


class IXPNamingMode(enum.Enum):
    """Who assigns hostnames on an IXP peering LAN."""

    OPERATOR_BARE = "operator-bare"   # 24115.mel.equinix.com
    OPERATOR_AS = "operator-as"       # as24940.akl-ix.nz
    MEMBER = "member"                 # member-chosen labels, mixed formats
    NONE = "none"                     # no PTR records


_BANDWIDTH_TOKENS = ["10ge", "100ge", "40ge", "1ge", "10g", "100g", "ge", "te"]
_ROLE_TOKENS = ["cust", "peer", "ix", "bb", "core", "edge", "gw", "cr", "br"]
_COMPLEX_ANNOT = ["a", "asn", "as-", "n"]


@dataclass
class ConventionProfile:
    """The naming behaviour of one operator's reverse zone."""

    asn: int
    domain: str
    embed: EmbedKind
    style: Style                 # meaningful when embed is NEIGHBOR_ASN
    asn_prefix: str              # "as", "asn", "a", or "" (bare)
    sep: str                     # "-" or "."
    bw_token: Optional[str]      # bandwidth decoration, if any
    adoption_year: float         # year the ASN convention went live
    mixed_formats: bool          # complex conventions with 2 format families
    names_near_side: bool        # also label its own side with neighbor ASN

    def embeds_asn_in(self, year: float) -> bool:
        """Whether the operator embeds neighbor ASNs as of ``year``."""
        return (self.embed is EmbedKind.NEIGHBOR_ASN
                and year >= self.adoption_year)


# Tier-dependent mix of what operators encode.  Tuned so that roughly a
# third of infrastructure suffixes embed neighbor ASNs (the paper finds
# 55 good NCs among hundreds of observed suffixes), AS names are at least
# as common as numbers (section 7), and consumer access networks produce
# the IP-derived hostnames of figure 3b.
_EMBED_WEIGHTS = {
    Tier.CLIQUE: {
        EmbedKind.NEIGHBOR_ASN: 0.40, EmbedKind.NAME: 0.35,
        EmbedKind.GEO: 0.15, EmbedKind.OWN_DECOR: 0.05,
        EmbedKind.NONE: 0.05, EmbedKind.IP_DERIVED: 0.0,
    },
    Tier.TRANSIT: {
        EmbedKind.NEIGHBOR_ASN: 0.38, EmbedKind.NAME: 0.32,
        EmbedKind.GEO: 0.15, EmbedKind.OWN_DECOR: 0.08,
        EmbedKind.NONE: 0.07, EmbedKind.IP_DERIVED: 0.0,
    },
    Tier.ACCESS: {
        EmbedKind.NEIGHBOR_ASN: 0.22, EmbedKind.NAME: 0.25,
        EmbedKind.GEO: 0.17, EmbedKind.OWN_DECOR: 0.06,
        EmbedKind.NONE: 0.10, EmbedKind.IP_DERIVED: 0.20,
    },
    Tier.CONTENT: {
        EmbedKind.NEIGHBOR_ASN: 0.15, EmbedKind.NAME: 0.30,
        EmbedKind.GEO: 0.25, EmbedKind.OWN_DECOR: 0.05,
        EmbedKind.NONE: 0.25, EmbedKind.IP_DERIVED: 0.0,
    },
    Tier.STUB: {
        EmbedKind.NEIGHBOR_ASN: 0.02, EmbedKind.NAME: 0.08,
        EmbedKind.GEO: 0.20, EmbedKind.OWN_DECOR: 0.02,
        EmbedKind.NONE: 0.58, EmbedKind.IP_DERIVED: 0.10,
    },
}

# Neighbor-ASN placement mix, tuned towards Table 1's "usable" column
# (simple 17.7%, start 50.8%, end 10.8%, bare 5.4%, complex 15.4%).
_STYLE_WEIGHTS = {
    Style.SIMPLE: 0.15,
    Style.START: 0.53,
    Style.END: 0.13,
    Style.BARE: 0.05,
    Style.COMPLEX: 0.14,
}

_IXP_MODE_WEIGHTS = {
    IXPNamingMode.OPERATOR_BARE: 0.30,
    IXPNamingMode.OPERATOR_AS: 0.30,
    IXPNamingMode.MEMBER: 0.30,
    IXPNamingMode.NONE: 0.10,
}


def profile_for_as(world_seed: int, node: ASNode) -> ConventionProfile:
    """The deterministic naming profile of operator ``node``.

    Uses a substream keyed by the world seed and the ASN, so the profile
    is stable across snapshots and independent of generation order.
    """
    rng = substream(world_seed, "convention", node.asn)
    embed = choice_weighted(rng, _EMBED_WEIGHTS[node.tier])
    # Style comes from its own substream so that the embed draw and the
    # style draw cannot correlate across the operator population.
    style = choice_weighted(substream(world_seed, "style", node.asn),
                            _STYLE_WEIGHTS)
    prefix_roll = rng.random()
    if prefix_roll < 0.88:
        asn_prefix = "as"
    elif prefix_roll < 0.95:
        asn_prefix = "asn"
    else:
        asn_prefix = "a"
    if style is Style.BARE:
        asn_prefix = ""
    sep = "-" if rng.random() < 0.6 else "."
    bw_token = rng.choice(_BANDWIDTH_TOKENS) if rng.random() < 0.4 else None
    # Adoption: conventions go live between 2004 and 2019, weighted so the
    # population of ASN-embedding suffixes grows over the study period
    # (one of the three growth factors behind figure 5).
    adoption_year = 2004.0 + 16.0 * (rng.random() ** 0.75)
    mixed = style is Style.COMPLEX and rng.random() < 0.5
    names_near = rng.random() < 0.10
    return ConventionProfile(
        asn=node.asn, domain=node.domain, embed=embed, style=style,
        asn_prefix=asn_prefix, sep=sep, bw_token=bw_token,
        adoption_year=adoption_year, mixed_formats=mixed,
        names_near_side=names_near,
    )


def ixp_mode_for(world_seed: int, ixp: IXPSpec) -> IXPNamingMode:
    """Deterministic LAN-naming mode of an exchange."""
    rng = substream(world_seed, "ixp-mode", ixp.ixp_id)
    return choice_weighted(rng, _IXP_MODE_WEIGHTS)


# ---------------------------------------------------------------------------
# Label rendering.  All functions return the part *before* the domain.
# ---------------------------------------------------------------------------


def _asn_token(profile: ConventionProfile, asn_text: str) -> str:
    return "%s%s" % (profile.asn_prefix, asn_text)


def neighbor_label(profile: ConventionProfile, asn_text: str, loc: str,
                   port: str, unit: int, rng) -> str:
    """Label for an address supplied to a neighbor, embedding its ASN.

    ``asn_text`` is the (possibly stale or typo-carrying) digit string to
    embed; ``loc``/``port``/``unit`` decorate according to the style.
    """
    token = _asn_token(profile, asn_text)
    sep = profile.sep
    style = profile.style
    if style is Style.SIMPLE:
        return token
    if style is Style.START:
        if profile.bw_token is not None:
            return "%s%s%s%s%s%d" % (token, sep, profile.bw_token, sep,
                                     loc, unit % 4 + 1)
        return "%s%s%s%d" % (token, sep, loc, unit % 4 + 1)
    if style is Style.END:
        return "%s%d.%s.%s" % (loc, unit % 4 + 1, "cust", token)
    if style is Style.BARE:
        return "%s.%s%d" % (asn_text, loc, unit % 4 + 1)
    # COMPLEX: either a mid-hostname ASN or an unusual annotation; mixed
    # profiles alternate between two format families per neighbor.
    if profile.mixed_formats and unit % 2 == 1:
        return "%s%s%s%s%s" % (loc, sep, token, sep, port)
    annot = _COMPLEX_ANNOT[profile.asn % len(_COMPLEX_ANNOT)]
    return "%s%s%s%s%d" % (annot, asn_text, sep, loc, unit % 4 + 1)


def plain_label(loc: str, router_name: str, port: str, style_roll: float) -> str:
    """Infrastructure label without ASN information."""
    if style_roll < 0.45:
        return "%s.%s.%s" % (port, router_name, loc)
    if style_roll < 0.8:
        return "%s-%s" % (router_name, loc)
    return "lo0.%s.%s" % (router_name, loc)


def own_decor_label(profile: ConventionProfile, own_asn: int, loc: str,
                    router_name: str, port: str, cust_slug: Optional[str],
                    unit: int) -> str:
    """Figure-2 style label: every hostname carries the operator's ASN."""
    own = _asn_token(profile, str(own_asn)) if profile.asn_prefix else \
        "as%d" % own_asn
    if cust_slug is not None:
        return "%02d.r.%s.%s.cust.%s" % (unit % 89 + 1, loc, cust_slug, own)
    return "%s.%s.%s.%s" % (port, router_name, loc, own)


def asname_label(neighbor_slug: str, loc: str, unit: int, rng,
                 token: Optional[str] = None) -> str:
    """Label embedding the neighbor's AS *name* (no number).

    ``token`` lets the caller pin the name variant; operators use one
    consistent name per neighbor, so the assigner derives a stable token
    per (operator, neighbor) pair.
    """
    if token is None:
        token = rng.choice(as_name_tokens(neighbor_slug))
    if rng.random() < 0.5:
        return "%s-ic-%d.%s" % (token, 300000 + rng.randint(1, 99999), loc)
    return "%s.%s%d" % (token, loc, unit % 4 + 1)


def geo_label(loc: str, router_name: str, port: str, unit: int) -> str:
    """Geography-flavoured infrastructure label."""
    return "%s.%s%d.%s" % (port, loc, unit % 9 + 1, router_name)


def ip_label(ip_text: str, rng) -> str:
    """Figure-3b style label derived from the interface address."""
    dashed = ip_text.replace(".", "-")
    if rng.random() < 0.5:
        return "%s-static" % dashed
    return "%s.dia.stat" % dashed


def member_ixp_label(member_slug: str, asn_text: str, variant: int) -> str:
    """Member-assigned label on an IXP LAN (its own ASN, mixed formats)."""
    if variant == 0:
        return "%s.as%s" % (member_slug, asn_text)          # end placement
    if variant == 1:
        return "as%s-%s" % (asn_text, member_slug)          # start placement
    return "gw-as%s" % asn_text                             # init7 style


def operator_ixp_label(mode: IXPNamingMode, asn_text: str, metro: str,
                       unit: int) -> str:
    """IXP-operator-assigned label for a member port."""
    if mode is IXPNamingMode.OPERATOR_BARE:
        return "%s.%s%d" % (asn_text, metro, unit % 3 + 1)
    return "as%s" % asn_text


def list_styles() -> List[Style]:
    """All Table-1 styles (for tests and reports)."""
    return list(Style)
