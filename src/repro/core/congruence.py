"""Congruence rules and per-hostname classification (section 3.1).

The paper scores a regex against a hostname as:

* **TP** -- the regex extracts a number congruent with the training ASN:
  equal, or at Damerau-Levenshtein distance one when the first and last
  characters agree and both numbers have at least three digits (the guard
  that separates figure 3a's typos from coincidences);
* **FP** -- the regex extracts an incongruent number, or the extraction
  lies inside an IP address embedded in the hostname (figure 3b) even if
  numerically congruent;
* **FN** -- the regex does not match a hostname that contains an apparent
  ASN (a non-IP digit run congruent with the training ASN);
* otherwise the hostname does not contribute.

ATP = TP - (FP + FN) ranks regexes (the ASN-specific definition, which
penalises both error kinds, unlike the alias-resolution Hoiho).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.util.strings import DigitRun, damerau_levenshtein, digit_runs


class Outcome(enum.Enum):
    """Per-hostname classification of a regex's behaviour."""

    TP = "tp"
    FP = "fp"
    FN = "fn"
    NONE = "none"


def congruent(extracted: str, train_asn: int) -> bool:
    """Is the extracted digit string congruent with the training ASN?

    >>> congruent("24115", 24115)
    True
    >>> congruent("22822", 22282)   # adjacent transposition, guarded
    True
    >>> congruent("605", 6057)      # distance one, but last chars differ
    False
    >>> congruent("202073", 205073)  # middle substitution, guard holds
    True
    >>> congruent("109", 122)
    False
    >>> congruent("24", 42)         # too short for the guarded rule
    False
    """
    if not extracted or not extracted.isdigit():
        return False
    train_text = str(train_asn)
    if extracted.lstrip("0") == train_text or extracted == train_text:
        return True
    if (len(extracted) >= 3 and len(train_text) >= 3
            and extracted[0] == train_text[0]
            and extracted[-1] == train_text[-1]
            and damerau_levenshtein(extracted, train_text) == 1):
        return True
    return False


def _in_spans(start: int, end: int,
              spans: List[Tuple[int, int]]) -> bool:
    """Does [start, end) overlap any of the (sorted) spans?"""
    for span_start, span_end in spans:
        if start < span_end and end > span_start:
            return True
        if span_start >= end:
            break
    return False


def apparent_asn_runs(hostname: str, train_asn: int,
                      ip_spans: List[Tuple[int, int]]) -> List[DigitRun]:
    """Digit runs in ``hostname`` congruent with ``train_asn``.

    Runs overlapping an embedded IP address are excluded: they are
    figure-3b coincidences, not annotations.
    """
    out: List[DigitRun] = []
    for run in digit_runs(hostname):
        if _in_spans(run.start, run.end, ip_spans):
            continue
        if congruent(run.text, train_asn):
            out.append(run)
    return out


def classify_extraction(extracted: Optional[str],
                        span: Optional[Tuple[int, int]],
                        hostname: str,
                        train_asn: int,
                        ip_spans: List[Tuple[int, int]]) -> Outcome:
    """Classify one regex-vs-hostname encounter.

    ``extracted``/``span`` are the capture text and character range when
    the regex matched, or ``None`` when it did not.
    """
    if extracted is not None and span is not None:
        if _in_spans(span[0], span[1], ip_spans):
            return Outcome.FP
        if congruent(extracted, train_asn):
            return Outcome.TP
        return Outcome.FP
    if apparent_asn_runs(hostname, train_asn, ip_spans):
        return Outcome.FN
    return Outcome.NONE
