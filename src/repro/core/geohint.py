"""DRoP-style learning of geolocation hints in hostnames (section 2.2).

Huffaker et al.'s DRoP [13] infers, per suffix, which hostname position
carries a location code, validating candidate hints against delay
constraints: a router cannot answer a vantage point faster than light
travels between the claimed location and the VP.  This module implements
that capability over the synthetic substrate -- the loc codes our
operators embed map to real metro coordinates
(:mod:`repro.topology.geo`), and traceroute RTTs bound feasibility.

Together with the router-name and AS-name/ASN modes, this rounds out
the family of hostname-learning systems the paper situates itself in.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.regex_model import Regex, escape_literal
from repro.psl import PublicSuffixList, default_psl
from repro.topology import geo
from repro.traceroute.probe import Trace
from repro.util.strings import split_segments


@dataclass(frozen=True)
class GeoItem:
    """One hostname with its RTT evidence.

    ``rtt_samples`` holds (vp_location, rtt_ms) pairs -- the minimum
    observed RTT from each vantage point location.
    """

    hostname: str
    rtt_samples: Tuple[Tuple[str, float], ...] = ()


@dataclass
class GeoScore:
    """Feasibility-based score for a geo-capture regex."""

    consistent: int = 0      # matched hostnames passing all constraints
    violated: int = 0        # matched hostnames failing a constraint
    unknown: int = 0         # captured token is not a known code

    @property
    def atp(self) -> int:
        return self.consistent - self.violated

    @property
    def consistency(self) -> float:
        total = self.consistent + self.violated
        return self.consistent / total if total else 0.0


@dataclass
class GeoConvention:
    """A learned geolocation convention for one suffix."""

    suffix: str
    regex: Regex
    score: GeoScore
    codes: Set[str] = field(default_factory=set)

    def locate(self, hostname: str) -> Optional[str]:
        """The location code embedded in ``hostname``, if any."""
        hit = self.regex.extract(hostname.lower())
        if hit is None:
            return None
        token = hit[0]
        return token if token in geo.COORDS else None


@dataclass
class GeoLearnerConfig:
    """Gates, mirroring DRoP's requirements."""

    min_hostnames: int = 4
    min_codes: int = 3          # distinct known location codes
    min_consistency: float = 0.8
    slack_ms: float = 2.0
    max_candidates: int = 300
    generation_sample: int = 50


def rtt_table_from_traces(traces: Iterable[Trace],
                          ) -> Dict[int, Dict[str, float]]:
    """Per-address minimum RTT per vantage-point location."""
    table: Dict[int, Dict[str, float]] = defaultdict(dict)
    for trace in traces:
        if not trace.vp_loc:
            continue
        for address, rtt in trace.hop_rtts():
            best = table[address].get(trace.vp_loc)
            if best is None or rtt < best:
                table[address][trace.vp_loc] = rtt
    return table


def geo_items_from_traces(hostnames: Dict[int, str],
                          traces: Iterable[Trace]) -> List[GeoItem]:
    """Assemble geo items for every named address with RTT evidence."""
    rtts = rtt_table_from_traces(traces)
    items: List[GeoItem] = []
    for address in sorted(hostnames):
        samples = rtts.get(address)
        if not samples:
            continue
        items.append(GeoItem(
            hostname=hostnames[address].lower(),
            rtt_samples=tuple(sorted(samples.items()))))
    return items


def _candidate_patterns(suffix: str, hostname: str) -> List[str]:
    """Patterns capturing each alphabetic segment of the local part."""
    tail = "." + suffix
    if not hostname.endswith(tail) or hostname == suffix:
        return []
    local = hostname[:-len(tail)]
    tokens = split_segments(local)
    patterns: List[str] = []
    for seg_index in range(0, len(tokens), 2):
        segment = tokens[seg_index]
        # Location codes are short alphabetic tokens, possibly with a
        # trailing unit digit (fra2); capture the alpha part.
        alpha = segment.rstrip("0123456789")
        if not (2 <= len(alpha) <= 4) or not alpha.isalpha():
            continue
        parts: List[str] = ["^"]
        for tok_index, token in enumerate(tokens):
            if tok_index == seg_index:
                parts.append("([a-z]+)")
                if token != alpha:
                    parts.append("\\d+")
            elif tok_index % 2 == 1:
                parts.append(escape_literal(token))
            else:
                delimiter = tokens[tok_index + 1] \
                    if tok_index + 1 < len(tokens) else "."
                if token:
                    parts.append("[^%s]+" % escape_literal(delimiter))
        parts.append(escape_literal(tail))
        parts.append("$")
        patterns.append("".join(parts))
    return patterns


def evaluate_geo_regex(regex: Regex, items: Sequence[GeoItem],
                       slack_ms: float = 2.0) -> Tuple[GeoScore, Set[str]]:
    """Validate a geo-capture regex against the RTT evidence."""
    score = GeoScore()
    codes: Set[str] = set()
    for item in items:
        hit = regex.extract(item.hostname)
        if hit is None:
            continue
        token = hit[0]
        if token not in geo.COORDS:
            score.unknown += 1
            continue
        ok = all(geo.feasible(vp_loc, token, rtt, slack_ms)
                 for vp_loc, rtt in item.rtt_samples)
        if ok:
            score.consistent += 1
            codes.add(token)
        else:
            score.violated += 1
    return score, codes


def learn_geo_suffix(suffix: str, items: Sequence[GeoItem],
                     config: Optional[GeoLearnerConfig] = None,
                     ) -> Optional[GeoConvention]:
    """Learn a geolocation convention for one suffix, or None."""
    config = config or GeoLearnerConfig()
    if len(items) < config.min_hostnames:
        return None
    seen: Set[str] = set()
    candidates: List[Regex] = []
    visited = 0
    for item in items:
        if visited >= config.generation_sample:
            break
        patterns = _candidate_patterns(suffix, item.hostname)
        if patterns:
            visited += 1
        for pattern in patterns:
            if pattern not in seen:
                seen.add(pattern)
                candidates.append(Regex.raw(pattern))
                if len(candidates) >= config.max_candidates:
                    break
        if len(candidates) >= config.max_candidates:
            break

    best: Optional[Tuple[GeoScore, Regex, Set[str]]] = None
    for regex in candidates:
        score, codes = evaluate_geo_regex(regex, items, config.slack_ms)
        if len(codes) < config.min_codes:
            continue
        if score.consistency < config.min_consistency:
            continue
        key = (score.atp, len(codes))
        if best is None or key > (best[0].atp, len(best[2])):
            best = (score, regex, codes)
    if best is None:
        return None
    score, regex, codes = best
    return GeoConvention(suffix=suffix, regex=regex, score=score,
                         codes=codes)


def learn_geo_conventions(hostnames: Dict[int, str],
                          traces: Iterable[Trace],
                          config: Optional[GeoLearnerConfig] = None,
                          psl: Optional[PublicSuffixList] = None,
                          ) -> Dict[str, GeoConvention]:
    """Learn geolocation conventions from an ITDK-style snapshot."""
    psl = psl or default_psl()
    items = geo_items_from_traces(hostnames, traces)
    by_suffix: Dict[str, List[GeoItem]] = defaultdict(list)
    for item in items:
        suffix = psl.registered_domain(item.hostname)
        if suffix is not None:
            by_suffix[suffix].append(item)
    conventions: Dict[str, GeoConvention] = {}
    for suffix in sorted(by_suffix):
        convention = learn_geo_suffix(suffix, by_suffix[suffix], config)
        if convention is not None:
            conventions[suffix] = convention
    return conventions
