"""Hoiho's original capability: router names for alias resolution.

The paper's learner is a modification of the 2019 Hoiho [19], which
learns regexes extracting the *router name* portion of a hostname --
the substring shared by interfaces of the same router but unique across
routers in a suffix (``ae2.cr1.fra`` and ``xe0.cr1.fra`` name the same
``cr1.fra``).  This module implements that mode over the same suffix
datasets, trained with router identities from alias resolution, so the
repository carries the complete tool the paper extends.

Scoring follows the alias-resolution ATP logic the paper contrasts with
its own in section 3.1: a regex earns TPs for keeping a multi-interface
router's hostnames together under one extracted name, FPs for splitting
a router or merging different routers under one name.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.regex_model import Regex, escape_literal
from repro.psl import PublicSuffixList, default_psl
from repro.util.strings import split_segments


@dataclass(frozen=True)
class RouterItem:
    """One (hostname, router identity) training observation."""

    hostname: str
    router_id: str


class RouterDataset:
    """Router-name training items sharing one suffix."""

    def __init__(self, suffix: str, items: Iterable[RouterItem]) -> None:
        self.suffix = suffix.lower()
        seen = set()
        unique: List[RouterItem] = []
        for item in items:
            hostname = item.hostname.lower()
            key = (hostname, item.router_id)
            if key in seen:
                continue
            seen.add(key)
            unique.append(RouterItem(hostname, item.router_id))
        self.items = sorted(unique,
                            key=lambda it: (it.hostname, it.router_id))

    def __len__(self) -> int:
        return len(self.items)

    def local_part(self, item: RouterItem) -> str:
        tail = "." + self.suffix
        if item.hostname.endswith(tail):
            return item.hostname[:-len(tail)]
        return ""

    def multi_interface_routers(self) -> int:
        counts = Counter(item.router_id for item in self.items)
        return sum(1 for count in counts.values() if count >= 2)


@dataclass
class RouterNameScore:
    """Alias-flavoured score: cohesion within and separation across
    routers."""

    tp: int = 0       # hostnames of multi-interface routers kept together
    fp: int = 0       # hostnames split off or merged across routers
    fn: int = 0       # unmatched hostnames of multi-interface routers

    @property
    def atp(self) -> int:
        return self.tp - (self.fp + self.fn)


@dataclass
class RouterNameConvention:
    """A learned router-name convention for one suffix."""

    suffix: str
    regex: Regex
    score: RouterNameScore

    def name_of(self, hostname: str) -> Optional[str]:
        """The router-name portion of ``hostname``, if matched."""
        hit = self.regex.extract(hostname.lower())
        return hit[0] if hit is not None else None

    def aliases(self, hostnames: Iterable[str]) -> List[Set[str]]:
        """Group hostnames into inferred alias sets by extracted name."""
        groups: Dict[str, Set[str]] = defaultdict(set)
        for hostname in hostnames:
            name = self.name_of(hostname)
            if name is not None:
                groups[name].add(hostname)
        return [group for _, group in sorted(groups.items())
                if len(group) >= 2]


def _component_for(segment: str, delimiter: str) -> str:
    """The exclusion component covering a non-captured segment."""
    if not segment:
        return ""
    return "[^%s]+" % escape_literal(delimiter)


def candidate_patterns(dataset: RouterDataset, item: RouterItem,
                       ) -> List[str]:
    """Candidate patterns capturing each contiguous segment range.

    Unlike the single-capture ASN regexes, a router name usually spans
    several punctuation-delimited segments (``cr1.fra``), so candidates
    place the capture over every contiguous token range.
    """
    local = dataset.local_part(item)
    if not local:
        return []
    tokens = split_segments(local)
    n_segments = (len(tokens) + 1) // 2
    patterns: List[str] = []
    for first in range(n_segments):
        for last in range(first, n_segments):
            parts: List[str] = ["^"]
            tok_index = 0
            while tok_index < len(tokens):
                seg_index = tok_index // 2
                if tok_index % 2 == 1:
                    parts.append(escape_literal(tokens[tok_index]))
                elif first <= seg_index <= last:
                    if seg_index == first:
                        parts.append("(")
                    parts.append("[a-z\\d]+")
                    if seg_index == last:
                        parts.append(")")
                    else:
                        # Punctuation inside the capture stays literal;
                        # handled by the odd-token branch above, but it
                        # must land inside the group, so emit nothing
                        # special here.
                        pass
                else:
                    delimiter = tokens[tok_index + 1] \
                        if tok_index + 1 < len(tokens) else "."
                    parts.append(_component_for(tokens[tok_index],
                                                delimiter))
                tok_index += 1
            parts.append(escape_literal("." + dataset.suffix))
            parts.append("$")
            pattern = "".join(parts)
            if "(" in pattern:
                patterns.append(pattern)
    return patterns


def evaluate_router_regex(regex: Regex,
                          dataset: RouterDataset) -> RouterNameScore:
    """Score a router-name regex on cohesion and separation."""
    router_sizes = Counter(item.router_id for item in dataset.items)
    extractions: Dict[str, Optional[str]] = {}
    by_router: Dict[str, List[Optional[str]]] = defaultdict(list)
    name_owners: Dict[str, Set[str]] = defaultdict(set)
    for item in dataset.items:
        hit = regex.extract(item.hostname)
        name = hit[0] if hit is not None else None
        by_router[item.router_id].append(name)
        if name is not None:
            name_owners[name].add(item.router_id)

    score = RouterNameScore()
    for router_id, names in by_router.items():
        multi = router_sizes[router_id] >= 2
        matched = [name for name in names if name is not None]
        if not multi:
            # Single-interface routers cannot evidence cohesion, but a
            # name collision with another router is a false merge.
            for name in matched:
                if len(name_owners[name]) > 1:
                    score.fp += 1
            continue
        if not matched:
            score.fn += len(names)
            continue
        distinct = set(matched)
        if len(distinct) == 1 and len(matched) == len(names):
            name = matched[0]
            if len(name_owners[name]) > 1:
                score.fp += len(names)     # merged with another router
            else:
                score.tp += len(names)
        else:
            score.fp += len(names)         # split router (or partial)
    return score


@dataclass
class RouterNameConfig:
    """Learner gates."""

    min_hostnames: int = 4
    min_multi_routers: int = 2
    max_candidates: int = 300
    generation_sample: int = 40


def learn_router_suffix(dataset: RouterDataset,
                        config: Optional[RouterNameConfig] = None,
                        ) -> Optional[RouterNameConvention]:
    """Learn a router-name convention for one suffix, or None."""
    config = config or RouterNameConfig()
    if len(dataset) < config.min_hostnames:
        return None
    if dataset.multi_interface_routers() < config.min_multi_routers:
        return None
    seen: Set[str] = set()
    candidates: List[Regex] = []
    visited = 0
    for item in dataset.items:
        if visited >= config.generation_sample:
            break
        patterns = candidate_patterns(dataset, item)
        if patterns:
            visited += 1
        for pattern in patterns:
            if pattern in seen:
                continue
            seen.add(pattern)
            candidates.append(Regex.raw(pattern))
            if len(candidates) >= config.max_candidates:
                break
        if len(candidates) >= config.max_candidates:
            break

    best: Optional[Tuple[RouterNameScore, Regex]] = None
    for regex in candidates:
        score = evaluate_router_regex(regex, dataset)
        if score.tp == 0:
            continue
        key = (score.atp, score.tp, regex.pattern)
        if best is None or key > (best[0].atp, best[0].tp,
                                  best[1].pattern):
            best = (score, regex)
    if best is None or best[0].atp <= 0:
        return None
    return RouterNameConvention(suffix=dataset.suffix, regex=best[1],
                                score=best[0])


def group_router_items(items: Iterable[RouterItem],
                       psl: Optional[PublicSuffixList] = None,
                       ) -> Dict[str, RouterDataset]:
    """Partition router-name items into per-suffix datasets."""
    psl = psl or default_psl()
    buckets: Dict[str, List[RouterItem]] = defaultdict(list)
    for item in items:
        suffix = psl.registered_domain(item.hostname)
        if suffix is None:
            continue
        buckets[suffix].append(item)
    return {suffix: RouterDataset(suffix, bucket)
            for suffix, bucket in buckets.items()}


def learn_router_names(items: Iterable[RouterItem],
                       config: Optional[RouterNameConfig] = None,
                       ) -> Dict[str, RouterNameConvention]:
    """Learn router-name conventions over a whole training set."""
    conventions: Dict[str, RouterNameConvention] = {}
    datasets = group_router_items(items)
    for suffix in sorted(datasets):
        convention = learn_router_suffix(datasets[suffix], config)
        if convention is not None:
            conventions[suffix] = convention
    return conventions
