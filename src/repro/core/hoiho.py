"""The end-to-end Hoiho-ASN learner.

:func:`learn_suffix` runs the four phases over one suffix dataset and
returns the selected convention; :class:`Hoiho` runs over a whole
training set (any iterable of :class:`~repro.core.types.TrainingItem`),
grouping by public suffix first.
"""

from __future__ import annotations

import dataclasses
import functools
import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.evaluate import NCScore, evaluate_regex
from repro.core.matchcache import CacheStats, MatchCache
from repro.core.parallel import ParallelConfig, parallel_map
from repro.core.resilience import ResilienceStats, RetryPolicy
from repro.obs.trace import (
    NULL_TRACER,
    Captured,
    Tracer,
    adopt_all,
    resilience_to_span,
    retry_to_span,
)
from repro.core.phase1 import generate_base_regexes
from repro.core.phase2 import merge_regexes
from repro.core.phase3 import specialise_regex
from repro.core.phase4 import build_regex_sets
from repro.core.regex_model import Regex
from repro.core.select import (
    LearnedConvention,
    NCClass,
    classify_nc,
    select_best,
)
from repro.core.taxonomy import Taxonomy, taxonomy_of
from repro.core.types import SuffixDataset, TrainingItem, group_by_suffix
from repro.psl import PublicSuffixList, default_psl

logger = logging.getLogger(__name__)

#: Fault-injection site label for the per-suffix learning fan-out (one
#: item per suffix dataset, in sorted-suffix order).
SITE_LEARN = "learn"


@dataclass
class HoihoConfig:
    """Learner knobs.

    The defaults mirror the paper's behaviour; the phase switches exist
    for the ablation benchmarks.
    """

    min_hostnames: int = 4          # smallest suffix worth learning
    min_apparent: int = 2           # hostnames with apparent ASNs required
    min_distinct_asns: int = 2      # figure-2 rule: >=2 distinct extractions
    min_tp: int = 3                 # minimum congruent extractions
    max_candidates: int = 800       # phase-1 pool cap
    generation_sample: int = 80     # items seeding phase-1 generation
    eval_pool: int = 120            # candidates kept (by ATP) after phase 1
    set_pool: int = 25              # phase-4 ranking window
    n_seeds: int = 6                # phase-4 seed count
    enable_merge: bool = True       # phase 2
    enable_classes: bool = True     # phase 3
    enable_sets: bool = True        # phase 4
    enable_cache: bool = True       # match-vector evaluation cache


def suffix_cache_payload(dataset: SuffixDataset,
                         config: HoihoConfig) -> Dict[str, object]:
    """The fingerprint payload keying one suffix's learned artifact.

    Everything the learned convention is a function of: the suffix, its
    full (normalised, deduplicated, sorted) training observations, and
    every :class:`HoihoConfig` field.  The config participates whole --
    even ``enable_cache``, which cannot change *which* convention is
    selected but does change whether per-item outcomes ride along on
    the winning score -- so a cached artifact is exactly what a fresh
    learn under the same config would have produced, field for field.
    """
    return {
        "kind": "suffix",
        "suffix": dataset.suffix,
        "items": [(item.hostname, item.train_asn, item.address)
                  for item in dataset.items],
        "hoiho_config": {f.name: getattr(config, f.name)
                         for f in dataclasses.fields(config)},
    }


def suffix_fingerprint(dataset: SuffixDataset,
                       config: HoihoConfig) -> str:
    """Content-addressed identity of one suffix's training problem.

    Two snapshots whose training data for a suffix is identical (and
    learned under the same config) share this fingerprint -- the
    property the incremental timeline learner exploits to relearn only
    changed suffixes.
    """
    from repro.store import fingerprint
    return fingerprint(suffix_cache_payload(dataset, config))


@dataclass
class SuffixArtifact:
    """What the per-suffix cache stores for one (training set, config).

    A *negative* outcome (no convention learned) is cached too --
    ``convention`` is ``None`` and ``rejected_reason`` says why -- so a
    suffix that was examined and rejected is never re-examined until
    its training data changes.  ``phases`` and ``cache_stats`` carry
    the per-phase bookkeeping (candidate counts, match-cache counters)
    so cache hits can still report how the convention came to be.
    """

    suffix: str
    convention: Optional[LearnedConvention]
    rejected_reason: Optional[str] = None
    phases: Dict[str, int] = field(default_factory=dict)
    cache_stats: Dict[str, object] = field(default_factory=dict)


def _suffix_artifact(dataset: SuffixDataset,
                     convention: Optional[LearnedConvention],
                     record: LearnTrace) -> SuffixArtifact:
    """Condense a traced learn into its cacheable artifact."""
    phases = {
        "phase1_generated": record.phase1_generated,
        "phase1_scored": len(record.phase1_scored),
        "phase2_added": len(record.phase2_added),
        "phase3_added": len(record.phase3_added),
        "conventions": len(record.conventions),
    }
    stats = record.cache_stats.as_dict() if record.cache_stats else {}
    return SuffixArtifact(suffix=dataset.suffix, convention=convention,
                          rejected_reason=record.rejected_reason,
                          phases=phases, cache_stats=stats)


@dataclass
class LearnTrace:
    """How a convention came to be: per-phase bookkeeping.

    Produced by :func:`learn_suffix_traced`; lets callers render a
    figure-4 style walkthrough (base regexes, merges, class embeddings,
    set building, and the selection outcome).
    """

    suffix: str = ""
    phase1_generated: int = 0
    phase1_scored: List[Tuple[Regex, NCScore]] = field(
        default_factory=list)
    phase2_added: List[Tuple[Regex, NCScore]] = field(
        default_factory=list)
    phase3_added: List[Tuple[Regex, NCScore]] = field(
        default_factory=list)
    conventions: List[Tuple[Tuple[Regex, ...], NCScore]] = field(
        default_factory=list)
    rejected_reason: Optional[str] = None
    cache_stats: Optional[CacheStats] = None

    def best_phase1(self, n: int = 5) -> List[Tuple[Regex, NCScore]]:
        """Top-n base regexes by rank."""
        return sorted(self.phase1_scored,
                      key=lambda pair: pair[1].rank_key())[:n]


@dataclass
class HoihoResult:
    """Learned conventions for every suffix that yielded one."""

    conventions: Dict[str, LearnedConvention] = field(default_factory=dict)
    suffixes_examined: int = 0

    def by_class(self, nc_class: NCClass) -> List[LearnedConvention]:
        """Conventions of one class, sorted by suffix."""
        return [self.conventions[s] for s in sorted(self.conventions)
                if self.conventions[s].nc_class is nc_class]

    def usable(self) -> List[LearnedConvention]:
        """Good + promising conventions, sorted by suffix."""
        return [self.conventions[s] for s in sorted(self.conventions)
                if self.conventions[s].usable]

    def class_counts(self) -> Dict[str, int]:
        """{'good': n, 'promising': n, 'poor': n} summary."""
        counts = {c.value: 0 for c in NCClass}
        for convention in self.conventions.values():
            counts[convention.nc_class.value] += 1
        return counts

    def taxonomy_of(self, suffix: str) -> Taxonomy:
        """Table-1 class of the convention learned for ``suffix``."""
        return taxonomy_of(self.conventions[suffix].regexes)

    def extract(self, hostname: str,
                psl: Optional[PublicSuffixList] = None) -> Optional[int]:
        """Extract an ASN from an arbitrary hostname, if a learned
        convention covers its suffix."""
        psl = psl or default_psl()
        suffix = psl.registered_domain(hostname.lower())
        if suffix is None:
            return None
        convention = self.conventions.get(suffix)
        if convention is None:
            return None
        return convention.extract(hostname)


def _has_enough_apparent(dataset: SuffixDataset, config: HoihoConfig) -> bool:
    """Cheap pre-check: does the suffix contain enough apparent ASNs?

    Suffixes that embed AS names, geography, or nothing fail here without
    paying for regex generation -- the bulk of real suffixes.
    """
    count = 0
    distinct = set()
    for index, item in enumerate(dataset.items):
        if dataset.apparent_runs(index):
            count += 1
            distinct.add(item.train_asn)
            # Both counters only grow, so the predicate is checked once,
            # here; if the loop finishes without tripping it, it cannot
            # hold.
            if count >= config.min_apparent and len(distinct) >= 2:
                return True
    return False


def learn_suffix(dataset: SuffixDataset,
                 config: Optional[HoihoConfig] = None,
                 tracer=NULL_TRACER) -> Optional[LearnedConvention]:
    """Learn a naming convention for one suffix, or None.

    Runs phase 1 (base regexes), phase 2 (merging), phase 3 (character
    classes) and phase 4 (regex sets), then applies the section-3.6
    selection rule and the section-4 usability gates.
    """
    convention, _ = learn_suffix_traced(dataset, config, trace=False,
                                        tracer=tracer)
    return convention


def learn_suffix_traced(dataset: SuffixDataset,
                        config: Optional[HoihoConfig] = None,
                        trace: bool = True,
                        tracer=NULL_TRACER,
                        ) -> Tuple[Optional[LearnedConvention],
                                   Optional[LearnTrace]]:
    """Like :func:`learn_suffix`, optionally recording a
    :class:`LearnTrace` of every phase (figure-4 style walkthrough).

    ``tracer`` additionally wraps the whole call in a ``learn.suffix``
    span with one child span per phase; the span carries the candidate
    count, regexes kept, and the MatchCache hit-rate (the numbers
    ``trace summary`` aggregates).  :data:`LearnTrace` and the span
    are independent: one is the figure-4 walkthrough, the other the
    timing record.
    """
    config = config or HoihoConfig()
    with tracer.span("learn.suffix", suffix=dataset.suffix,
                     items=len(dataset)) as span:
        convention, record = _learn_suffix_phases(dataset, config, trace,
                                                  tracer, span)
        span.set(kept=len(convention.regexes)
                 if convention is not None else 0)
        if record is not None and record.rejected_reason:
            span.set(rejected=record.rejected_reason)
    return convention, record


def _learn_suffix_phases(dataset: SuffixDataset, config: HoihoConfig,
                         trace: bool, tracer, span,
                         ) -> Tuple[Optional[LearnedConvention],
                                    Optional[LearnTrace]]:
    """The phase 1-4 + select body of :func:`learn_suffix_traced`.

    Split out so the ``learn.suffix`` span brackets everything --
    including the cheap pre-check rejections that exit before phase 1.
    """
    record = LearnTrace(suffix=dataset.suffix) if trace else None
    cache = MatchCache(dataset) if config.enable_cache else None
    if record is not None and cache is not None:
        record.cache_stats = cache.stats

    def reject(reason: str):
        if record is not None:
            record.rejected_reason = reason
        return None, record

    try:
        return _run_phases(dataset, config, tracer, span, record, cache,
                           reject)
    finally:
        if cache is not None:
            span.set(match_calls=cache.stats.match_calls,
                     vector_hits=cache.stats.vector_hits,
                     hit_rate=cache.stats.hit_rate)


def _run_phases(dataset: SuffixDataset, config: HoihoConfig, tracer,
                span, record: Optional[LearnTrace],
                cache: Optional[MatchCache], reject,
                ) -> Tuple[Optional[LearnedConvention],
                           Optional[LearnTrace]]:
    if len(dataset) < config.min_hostnames:
        return reject("too few hostnames")
    if dataset.distinct_train_asns < config.min_distinct_asns:
        return reject("single training ASN")
    if not _has_enough_apparent(dataset, config):
        return reject("not enough apparent ASNs")

    with tracer.span("learn.phase1"):
        candidates = generate_base_regexes(
            dataset, max_candidates=config.max_candidates,
            sample=config.generation_sample)
        if record is not None:
            record.phase1_generated = len(candidates)
        span.set(candidates=len(candidates))
        if not candidates:
            return reject("no base regexes")

        scored: Dict[Regex, NCScore] = {}
        for regex in candidates:
            score = evaluate_regex(regex, dataset, cache=cache)
            if score.tp > 0:
                scored[regex] = score
        if record is not None:
            record.phase1_scored = list(scored.items())
    if not scored:
        return reject("no base regex extracts a congruent ASN")

    # Trim to the strongest candidates before the quadratic phases.
    ranked = sorted(scored, key=lambda r: scored[r].rank_key()
                    + (r.specificity_cost(), r.pattern))
    scored = {regex: scored[regex] for regex in ranked[:config.eval_pool]}

    if config.enable_merge:
        with tracer.span("learn.phase2"):
            for regex in merge_regexes(list(scored)):
                score = evaluate_regex(regex, dataset, cache=cache)
                if score.tp > 0:
                    scored[regex] = score
                    if record is not None:
                        record.phase2_added.append((regex, score))

    if config.enable_classes:
        with tracer.span("learn.phase3"):
            for regex in list(scored):
                specialised = specialise_regex(regex, dataset, cache=cache)
                if specialised is None or specialised in scored:
                    continue
                score = evaluate_regex(specialised, dataset, cache=cache)
                if score.atp >= scored[regex].atp:
                    scored[specialised] = score
                    if record is not None:
                        record.phase3_added.append((specialised, score))

    with tracer.span("learn.phase4"):
        if config.enable_sets:
            conventions = build_regex_sets(scored, dataset,
                                           pool_size=config.set_pool,
                                           n_seeds=config.n_seeds,
                                           cache=cache)
        else:
            ranked = sorted(scored,
                            key=lambda r: scored[r].rank_key()
                            + (r.specificity_cost(), r.pattern))
            conventions = [((regex,), scored[regex])
                           for regex in ranked[:config.set_pool]]
        if record is not None:
            record.conventions = conventions[:10]

    with tracer.span("learn.select"):
        selection = select_best(conventions, cache=cache)
    if selection is None:
        return reject("no convention selected")
    regexes, score = selection
    if score.distinct < config.min_distinct_asns or score.tp < config.min_tp:
        return reject("below usability gates "
                      "(distinct=%d tp=%d)" % (score.distinct, score.tp))
    convention = LearnedConvention(suffix=dataset.suffix, regexes=regexes,
                                   score=score,
                                   nc_class=classify_nc(score))
    return convention, record


def _learn_dataset_worker(config: HoihoConfig,
                          dataset: SuffixDataset,
                          ) -> Optional[LearnedConvention]:
    """Module-level worker so the process backend can pickle it."""
    return learn_suffix(dataset, config)


def _learn_dataset_worker_traced(config: HoihoConfig,
                                 dataset: SuffixDataset) -> Captured:
    """Like :func:`_learn_dataset_worker`, but spans ride home too.

    The worker builds its own in-memory tracer (tracers do not cross
    process boundaries) and ships the captured ``learn.suffix`` span
    tree back inside the return value; the coordinator adopts it under
    its ``learn.run`` span.
    """
    tracer = Tracer()
    convention = learn_suffix(dataset, config, tracer=tracer)
    tracer.close()
    return Captured(convention, tracer.export())


def _learn_artifact_worker(config: HoihoConfig,
                           dataset: SuffixDataset) -> SuffixArtifact:
    """Learn one suffix and return its cacheable artifact.

    Runs the traced learner (trace recording never changes the learned
    result, only observes it) so the artifact carries the rejection
    reason and per-phase counters alongside the convention.
    """
    convention, record = learn_suffix_traced(dataset, config, trace=True)
    return _suffix_artifact(dataset, convention, record)


def _learn_artifact_worker_traced(config: HoihoConfig,
                                  dataset: SuffixDataset) -> Captured:
    """Like :func:`_learn_artifact_worker`, but spans ride home too."""
    tracer = Tracer()
    convention, record = learn_suffix_traced(dataset, config, trace=True,
                                             tracer=tracer)
    tracer.close()
    return Captured(_suffix_artifact(dataset, convention, record),
                    tracer.export())


def _learn_items_worker(config: HoihoConfig,
                        items: List[TrainingItem]) -> HoihoResult:
    """Learn a whole training set serially inside one worker process.

    Used by the eval harness to fan out across training sets; nested
    per-suffix pools are deliberately avoided.
    """
    return Hoiho(config).run(items)


def _learn_items_worker_traced(config: HoihoConfig,
                               items: List[TrainingItem]) -> Captured:
    """Traced variant of :func:`_learn_items_worker` (span capture)."""
    tracer = Tracer()
    result = Hoiho(config, tracer=tracer).run(items)
    tracer.close()
    return Captured(result, tracer.export())


class Hoiho:
    """Convenience driver over an arbitrary training set.

    ``parallel`` fans the per-suffix learning out over worker processes;
    the merged result is bit-identical to a serial run because datasets
    are dispatched and merged in sorted-suffix order.  ``retry`` arms
    the resilient dispatcher (worker loss and transient faults are
    retried; a suffix that fails permanently still raises).

    ``store`` plugs in a persistent
    :class:`~repro.store.ArtifactStore` and turns the run incremental:
    each suffix's training set + config is fingerprinted
    (:func:`suffix_fingerprint`) and looked up in the store's
    ``suffixes/`` namespace before any learning happens; hits skip
    phases 1-4 entirely (negative results included), misses are
    dispatched as usual and their artifacts written back.  Results are
    byte-identical to a storeless run.  ``suffix_cache=False`` disables
    the per-suffix layer without touching the store otherwise.

    >>> hoiho = Hoiho()
    >>> items = [TrainingItem("as%d.lon%d.example.com" % (a, i % 3), a)
    ...          for i, a in enumerate([3356, 1299, 174, 2914, 6453])]
    >>> result = hoiho.run(items)
    >>> result.conventions["example.com"].patterns()
    ['^as(\\\\d+)\\\\.lon\\\\d+\\\\.example\\\\.com$']
    """

    def __init__(self, config: Optional[HoihoConfig] = None,
                 psl: Optional[PublicSuffixList] = None,
                 parallel: Optional[ParallelConfig] = None,
                 retry: Optional[RetryPolicy] = None,
                 tracer=NULL_TRACER,
                 store=None,
                 suffix_cache: bool = True,
                 metrics=None) -> None:
        self.config = config or HoihoConfig()
        self.psl = psl or default_psl()
        self.parallel = parallel or ParallelConfig.serial()
        self.retry = retry
        self.tracer = tracer
        self.store = store
        self.suffix_cache = suffix_cache
        self.metrics = metrics

    def run(self, items: Iterable[TrainingItem]) -> HoihoResult:
        """Group items by suffix and learn a convention per suffix."""
        datasets = group_by_suffix(items, self.psl)
        return self.run_datasets(datasets.values())

    def run_datasets(self,
                     datasets: Iterable[SuffixDataset]) -> HoihoResult:
        """Learn over pre-grouped datasets."""
        ordered = sorted(datasets, key=lambda d: d.suffix)
        with self.tracer.span("learn.run", suffixes=len(ordered)) as span:
            if self.store is not None and self.suffix_cache:
                conventions = self._run_cached(ordered, span)
            else:
                conventions = self._dispatch(ordered, span)
            result = HoihoResult(suffixes_examined=len(ordered))
            self._merge(ordered, conventions, result)
            span.set(learned=len(result.conventions))
        return result

    def _run_cached(self, ordered: List[SuffixDataset],
                    span) -> List[Optional[LearnedConvention]]:
        """The incremental path: serve cached suffixes, learn the rest.

        Suffixes whose fingerprinted artifact is already in the store
        skip phases 1-4 entirely; only the misses are dispatched (in
        sorted-suffix order, so parallel stays bit-identical to
        serial), and their artifacts are written back for the next run.
        """
        from repro.core.delta import plan_datasets, resolve_plans
        from repro.store import KIND_SUFFIX
        plans = plan_datasets(ordered, self.config)
        hits, misses = resolve_plans(self.store, plans,
                                     metrics=self.metrics)
        span.set(suffix_cache_hits=len(hits),
                 suffix_cache_misses=len(misses))
        artifacts = {plan.suffix: artifact for plan, artifact in hits}
        learned = self._dispatch([plan.dataset for plan in misses], span,
                                 worker=_learn_artifact_worker,
                                 traced_worker=_learn_artifact_worker_traced)
        for plan, artifact in zip(misses, learned):
            self.store.put(KIND_SUFFIX, plan.payload, artifact)
            artifacts[plan.suffix] = artifact
        return [artifacts[dataset.suffix].convention
                for dataset in ordered]

    def _dispatch(self, ordered: List[SuffixDataset], span,
                  worker=_learn_dataset_worker,
                  traced_worker=_learn_dataset_worker_traced) -> List:
        """Fan the per-suffix learning out, capturing spans when traced.

        With tracing on, workers run the traced entry point and their
        span trees are adopted under ``learn.run``; retries surface as
        live span events and the post-run :class:`ResilienceStats`
        summary.  With tracing off the dispatch is byte-identical to
        the untraced PR-4 path.
        """
        if not self.tracer.enabled:
            bound = functools.partial(worker, self.config)
            return parallel_map(bound, ordered, self.parallel,
                                retry=self.retry, site=SITE_LEARN)
        bound = functools.partial(traced_worker, self.config)
        stats = ResilienceStats()
        captured = parallel_map(bound, ordered, self.parallel,
                                retry=self.retry, site=SITE_LEARN,
                                on_retry=retry_to_span(span, SITE_LEARN),
                                stats=stats)
        results = adopt_all(self.tracer, captured,
                            parent_id=span.span_id)
        if self.retry is not None:
            resilience_to_span(span, SITE_LEARN, stats)
        return results

    def _merge(self, ordered: List[SuffixDataset],
               conventions: List[Optional[LearnedConvention]],
               result: HoihoResult) -> None:
        for dataset, convention in zip(ordered, conventions):
            if convention is not None:
                result.conventions[dataset.suffix] = convention
                logger.debug("learned %s convention for %s: %s",
                             convention.nc_class.value, dataset.suffix,
                             convention.patterns())
        logger.info("examined %d suffixes, learned %d conventions",
                    result.suffixes_examined, len(result.conventions))
