"""Per-dataset match-vector evaluation cache (the learner's hot path).

The four learning phases evaluate the same regexes against the same
suffix dataset over and over: phase 1 scores every candidate, phase 2
scores merges of those candidates, phase 3 re-scores specialisations,
and phase 4 builds regex *sets* by repeatedly scoring supersets of
regexes it has already measured.  Every one of those evaluations walks
the whole dataset calling ``re.match`` and re-deriving the apparent-ASN
baseline for unmatched hostnames.

A :class:`MatchCache` computes, once per regex, a per-item *match
vector* -- did the regex match, what text/span it extracted, and the
TP/FP/FN classification of that extraction -- after which every further
evaluation is pure array composition:

* scoring a single regex is a dictionary lookup;
* scoring an ordered regex set is a first-match merge of cached vectors
  (:meth:`MatchCache.score_nc`), with no regex engine involvement;
* growing a set one regex at a time (phase 4) is incremental via
  :class:`ComposedNC`, turning set construction from
  O(sets x regexes x items x match) into O(sets x items) composition.

The per-item FN baseline (does the hostname contain an apparent ASN?)
is computed once per dataset instead of once per unmatched item per
evaluation.  :class:`CacheStats` counts the work performed and avoided;
the benchmark harness reports them in ``BENCH_learner.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.congruence import Outcome, classify_extraction
from repro.core.evaluate import NCScore
from repro.core.regex_model import Regex
from repro.core.types import SuffixDataset

#: A single regex-vs-item encounter: (extracted text, capture span),
#: or None when the regex did not match.
Hit = Optional[Tuple[str, Tuple[int, int]]]


@dataclass
class CacheStats:
    """Work counters for one :class:`MatchCache`.

    ``match_calls`` counts actual ``re.match`` invocations (one per item
    per vector built); ``vector_hits`` counts evaluations served from
    cached state (a memoised score or an already-built vector);
    ``compositions`` counts regex-set scores assembled from vectors
    without touching the regex engine.
    """

    vectors_built: int = 0
    vector_hits: int = 0
    match_calls: int = 0
    compositions: int = 0

    @property
    def lookups(self) -> int:
        """Total vector requests (built + served from cache)."""
        return self.vectors_built + self.vector_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of vector requests served without matching."""
        return self.vector_hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"vectors_built": self.vectors_built,
                "vector_hits": self.vector_hits,
                "match_calls": self.match_calls,
                "compositions": self.compositions,
                "hit_rate": self.hit_rate}


class MatchVector:
    """One regex's outcome over every item of a dataset.

    ``hits[i]`` is the (extracted, span) pair or ``None``; ``outcomes[i]``
    is the classification *when the regex supplies the extraction* and is
    only meaningful where ``hits[i]`` is not ``None`` (a matched item
    classifies as TP or FP regardless of what other regexes do, so the
    value composes into any regex set).
    """

    __slots__ = ("hits", "outcomes", "n_matched")

    def __init__(self, hits: List[Hit],
                 outcomes: List[Optional[Outcome]]) -> None:
        self.hits = hits
        self.outcomes = outcomes
        self.n_matched = sum(1 for hit in hits if hit is not None)


class MatchCache:
    """Evaluation cache bound to one :class:`SuffixDataset`.

    >>> from repro.core.types import TrainingItem
    >>> ds = SuffixDataset("x.com", [TrainingItem("as100.pop.x.com", 100),
    ...                              TrainingItem("as200.pop.x.com", 200)])
    >>> cache = MatchCache(ds)
    >>> regex = Regex.raw(r"^as(\\d+)\\.pop\\.x\\.com$")
    >>> cache.score_regex(regex).tp
    2
    >>> cache.score_regex(regex).tp    # second call: pure lookup
    2
    >>> cache.stats.vectors_built, cache.stats.vector_hits
    (1, 1)
    """

    def __init__(self, dataset: SuffixDataset) -> None:
        self.dataset = dataset
        self.stats = CacheStats()
        self._vectors: Dict[str, MatchVector] = {}
        self._scores: Dict[str, NCScore] = {}
        self._fn_baseline: Optional[List[bool]] = None

    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def fn_baseline(self) -> List[bool]:
        """Per-item flag: does the hostname contain an apparent ASN?

        Unmatched items classify as FN exactly when this is true; caching
        it removes the per-evaluation apparent-run derivation.
        """
        if self._fn_baseline is None:
            dataset = self.dataset
            self._fn_baseline = [bool(dataset.apparent_runs(index))
                                 for index in range(len(dataset.items))]
        return self._fn_baseline

    def vector(self, regex: Regex) -> MatchVector:
        """The regex's match vector, building it on first request."""
        cached = self._vectors.get(regex.pattern)
        if cached is not None:
            self.stats.vector_hits += 1
            return cached
        dataset = self.dataset
        hits: List[Hit] = []
        outcomes: List[Optional[Outcome]] = []
        for index, item in enumerate(dataset.items):
            hit = regex.extract(item.hostname)
            self.stats.match_calls += 1
            if hit is None:
                hits.append(None)
                outcomes.append(None)
            else:
                extracted, span = hit
                hits.append(hit)
                outcomes.append(classify_extraction(
                    extracted, span, item.hostname, item.train_asn,
                    dataset.ip_spans(index)))
        vector = MatchVector(hits, outcomes)
        self._vectors[regex.pattern] = vector
        self.stats.vectors_built += 1
        return vector

    def matched_indices(self, regex: Regex) -> List[int]:
        """Indices of items the regex matches (vector-backed)."""
        vector = self.vector(regex)
        return [index for index, hit in enumerate(vector.hits)
                if hit is not None]

    def score_regex(self, regex: Regex,
                    keep_outcomes: bool = False) -> NCScore:
        """Score one regex; repeat calls are dictionary lookups."""
        if not keep_outcomes:
            cached = self._scores.get(regex.pattern)
            if cached is not None:
                self.stats.vector_hits += 1
                return cached
        score = self._compose((self.vector(regex),), keep_outcomes)
        if not keep_outcomes:
            self._scores[regex.pattern] = score
        return score

    def score_nc(self, regexes: Sequence[Regex],
                 keep_outcomes: bool = False) -> NCScore:
        """Score an ordered regex set by first-match vector composition."""
        if len(regexes) == 1:
            return self.score_regex(regexes[0], keep_outcomes=keep_outcomes)
        vectors = tuple(self.vector(regex) for regex in regexes)
        self.stats.compositions += 1
        return self._compose(vectors, keep_outcomes)

    def _compose(self, vectors: Sequence[MatchVector],
                 keep_outcomes: bool) -> NCScore:
        """First-match merge of ``vectors`` into an :class:`NCScore`."""
        score = NCScore()
        baseline = self.fn_baseline
        for index in range(len(self.dataset.items)):
            extracted: Optional[str] = None
            outcome = Outcome.NONE
            for vector in vectors:
                hit = vector.hits[index]
                if hit is not None:
                    extracted = hit[0]
                    outcome = vector.outcomes[index]  # type: ignore[assignment]
                    break
            if extracted is None:
                outcome = Outcome.FN if baseline[index] else Outcome.NONE
            else:
                score.matches += 1
            if outcome is Outcome.TP:
                score.tp += 1
                score.distinct_asns.add(int(extracted))  # type: ignore[arg-type]
            elif outcome is Outcome.FP:
                score.fp += 1
            elif outcome is Outcome.FN:
                score.fn += 1
            if keep_outcomes:
                score.outcomes.append((outcome, extracted))
        return score


class ComposedNC:
    """Incrementally grown first-match state of an ordered regex set.

    Phase 4 extends a working set one regex at a time; each
    :meth:`extend` merges the new regex's cached vector into the items
    still unmatched -- O(items) per candidate instead of a fresh
    O(set x items x match) evaluation.  The running :attr:`score` is
    updated only for items that flip from unmatched to matched.
    """

    __slots__ = ("cache", "hits", "outcomes", "score")

    def __init__(self, cache: MatchCache, hits: List[Hit],
                 outcomes: List[Optional[Outcome]], score: NCScore) -> None:
        self.cache = cache
        self.hits = hits
        self.outcomes = outcomes
        self.score = score

    @classmethod
    def empty(cls, cache: MatchCache) -> "ComposedNC":
        """The empty convention: nothing matches; apparent items are FN."""
        n_items = len(cache.dataset.items)
        score = NCScore(fn=sum(1 for flag in cache.fn_baseline if flag))
        return cls(cache, [None] * n_items, [None] * n_items, score)

    @classmethod
    def of(cls, cache: MatchCache,
           regexes: Sequence[Regex]) -> "ComposedNC":
        """Composition of an existing ordered regex set."""
        composed = cls.empty(cache)
        for regex in regexes:
            composed = composed.extend(regex)
        return composed

    def extend(self, regex: Regex) -> "ComposedNC":
        """A new composition with ``regex`` appended to the set."""
        vector = self.cache.vector(regex)
        baseline = self.cache.fn_baseline
        hits = list(self.hits)
        outcomes = list(self.outcomes)
        score = NCScore(tp=self.score.tp, fp=self.score.fp,
                        fn=self.score.fn, matches=self.score.matches,
                        distinct_asns=set(self.score.distinct_asns))
        for index, hit in enumerate(vector.hits):
            if hit is None or hits[index] is not None:
                continue
            hits[index] = hit
            outcome = vector.outcomes[index]
            outcomes[index] = outcome
            score.matches += 1
            if baseline[index]:
                score.fn -= 1
            if outcome is Outcome.TP:
                score.tp += 1
                score.distinct_asns.add(int(hit[0]))
            elif outcome is Outcome.FP:
                score.fp += 1
        self.cache.stats.compositions += 1
        return ComposedNC(self.cache, hits, outcomes, score)
