"""JSON serialization for training data and learned conventions.

The paper publicly releases both the training data and the inferred
regexes; this module provides the equivalent round-trippable formats so
conventions learned in one process can be applied in another (e.g. a
measurement host learns, an analysis host extracts).

Deserialized conventions are rebuilt with :meth:`Regex.raw`, so they
support matching and scoring; the structural element list (used only by
the learning phases) is not preserved, exactly as a regex published as
text would behave.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.core.evaluate import NCScore
from repro.core.hoiho import HoihoResult
from repro.core.regex_model import Regex
from repro.core.select import LearnedConvention, NCClass
from repro.core.types import TrainingItem


# -- training items ----------------------------------------------------------

def training_to_jsonl(items: Iterable[TrainingItem]) -> str:
    """One JSON object per line: {hostname, asn[, address]}."""
    lines = []
    for item in items:
        record = {"hostname": item.hostname, "asn": item.train_asn}
        if item.address is not None:
            record["address"] = item.address
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def training_from_jsonl(text: str) -> List[TrainingItem]:
    """Parse :func:`training_to_jsonl` output."""
    items: List[TrainingItem] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        record = json.loads(line)
        items.append(TrainingItem(hostname=record["hostname"],
                                  train_asn=int(record["asn"]),
                                  address=record.get("address")))
    return items


# -- learned conventions -----------------------------------------------------

def _score_to_dict(score: NCScore) -> Dict:
    return {"tp": score.tp, "fp": score.fp, "fn": score.fn,
            "matches": score.matches,
            "distinct_asns": sorted(score.distinct_asns)}


def _score_from_dict(raw: Dict) -> NCScore:
    score = NCScore(tp=raw["tp"], fp=raw["fp"], fn=raw["fn"],
                    matches=raw["matches"])
    score.distinct_asns = set(raw["distinct_asns"])
    return score


def conventions_to_json(result: HoihoResult) -> str:
    """Serialize a learning result (regexes as published text)."""
    payload = {
        "suffixes_examined": result.suffixes_examined,
        "conventions": [
            {
                "suffix": convention.suffix,
                "class": convention.nc_class.value,
                "regexes": convention.patterns(),
                "score": _score_to_dict(convention.score),
            }
            for _, convention in sorted(result.conventions.items())
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def conventions_from_json(text: str) -> HoihoResult:
    """Parse :func:`conventions_to_json` output."""
    raw = json.loads(text)
    result = HoihoResult(suffixes_examined=raw.get("suffixes_examined", 0))
    for entry in raw.get("conventions", []):
        convention = LearnedConvention(
            suffix=entry["suffix"],
            regexes=tuple(Regex.raw(p) for p in entry["regexes"]),
            score=_score_from_dict(entry["score"]),
            nc_class=NCClass(entry["class"]))
        result.conventions[convention.suffix] = convention
    return result
