"""Learning AS-*name* conventions without a name dictionary (section 7).

The paper's future-work direction: at least three times more suffixes
embed the neighbor's AS *name* than its number (figure 1's telia.net and
seabone.net).  This module implements the preliminary capability: learn,
per suffix, a regex with an alphabetic capture ``([a-z]+)`` whose
captured tokens *partition* the training ASNs -- each token consistently
co-occurs with one training ASN.  No external name dictionary is used;
the token-to-ASN mapping is derived from the data itself, which is
exactly what makes such conventions shareable validation data.

The learner parallels the ASN phases in miniature: candidate generation
from punctuation structure (phase-1 style), evaluation by a purity-based
ATP analog, and selection of the top-scoring regex.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.regex_model import (
    AlphaCap,
    Any_,
    Element,
    Exclude,
    Lit,
    Regex,
)
from repro.core.types import SuffixDataset, TrainingItem, group_by_suffix
from repro.psl import PublicSuffixList, default_psl

#: Tokens that decorate hostnames everywhere and never identify an AS.
_STOPWORDS = {
    "cust", "peer", "core", "edge", "bb", "gw", "ix", "static", "dyn",
    "dia", "stat", "lo", "eth", "ge", "te", "xe", "et", "hu", "ae",
    "as", "ip", "ipv4", "ipv6", "net", "rev",
}

_MIN_TOKEN_LEN = 4


@dataclass
class NameScore:
    """Purity-based score for an alphabetic-capture regex."""

    tp: int = 0                  # captures agreeing with the token's ASN
    fp: int = 0                  # captures disagreeing
    tokens: Dict[str, int] = field(default_factory=dict)  # token -> ASN

    @property
    def atp(self) -> int:
        return self.tp - self.fp

    @property
    def purity(self) -> float:
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def distinct_asns(self) -> int:
        return len(set(self.tokens.values()))


@dataclass
class NameConvention:
    """A learned AS-name convention for one suffix."""

    suffix: str
    regex: Regex
    mapping: Dict[str, int]      # captured token -> ASN
    score: NameScore

    def extract(self, hostname: str) -> Optional[int]:
        """ASN for ``hostname`` via the learned token mapping."""
        hit = self.regex.extract(hostname.lower())
        if hit is None:
            return None
        return self.mapping.get(hit[0])

    def extract_name(self, hostname: str) -> Optional[str]:
        """The raw name token, for hostnames outside the training set."""
        hit = self.regex.extract(hostname.lower())
        return hit[0] if hit is not None else None


@dataclass
class NameLearnerConfig:
    """Gates for the name learner (mirrors the ASN thresholds)."""

    min_hostnames: int = 4
    min_tokens: int = 3          # distinct captured name tokens
    min_tp: int = 4              # matched name hostnames overall
    min_distinct_asns: int = 3
    min_purity: float = 0.8
    min_occurrences: int = 1     # a token may be seen once: operators
                                 # often have one interface per neighbor
    max_candidates: int = 400
    generation_sample: int = 60


def _segment_element(tokens: Sequence[str], index: int) -> Element:
    text = tokens[index]
    if not text:
        return Lit("")
    right = tokens[index + 1] if index + 1 < len(tokens) else "."
    return Exclude(frozenset(right))


def _candidates_for_item(dataset: SuffixDataset, index: int) -> List[Regex]:
    """Alpha-capture candidates from one hostname's structure."""
    item = dataset.items[index]
    local = dataset.local_part(item)
    if not local:
        return []
    tokens = dataset.tokens(item)
    out: List[Regex] = []
    for seg_index in range(0, len(tokens), 2):
        segment = tokens[seg_index]
        if len(segment) < _MIN_TOKEN_LEN or not segment.isalpha():
            continue
        if segment in _STOPWORDS:
            continue
        elements: List[Element] = []
        for tok_index, token in enumerate(tokens):
            if tok_index == seg_index:
                elements.append(AlphaCap())
            elif tok_index % 2 == 1:
                elements.append(Lit(token))
            else:
                elements.append(_segment_element(tokens, tok_index))
        out.append(Regex(elements, dataset.suffix))
        # A looser variant: everything after the capture collapses.
        if seg_index + 1 < len(tokens):
            loose: List[Element] = []
            for tok_index, token in enumerate(tokens[:seg_index + 1]):
                if tok_index == seg_index:
                    loose.append(AlphaCap())
                elif tok_index % 2 == 1:
                    loose.append(Lit(token))
                else:
                    loose.append(_segment_element(tokens, tok_index))
            loose.append(Lit(tokens[seg_index + 1]))
            loose.append(Any_())
            out.append(Regex(loose, dataset.suffix))
    return out


def evaluate_name_regex(regex: Regex, dataset: SuffixDataset,
                        min_occurrences: int = 1) -> NameScore:
    """Score an alpha-capture regex by token/ASN co-occurrence purity."""
    by_token: Dict[str, Counter] = defaultdict(Counter)
    for item in dataset.items:
        hit = regex.extract(item.hostname)
        if hit is None:
            continue
        token = hit[0]
        if token in _STOPWORDS or len(token) < _MIN_TOKEN_LEN:
            continue
        by_token[token][item.train_asn] += 1
    score = NameScore()
    for token, counts in by_token.items():
        asn, majority = counts.most_common(1)[0]
        total = sum(counts.values())
        if total < min_occurrences:
            # Singletons neither help nor hurt: no evidence either way.
            continue
        score.tp += majority
        score.fp += total - majority
        score.tokens[token] = asn
    return score


def learn_name_suffix(dataset: SuffixDataset,
                      config: Optional[NameLearnerConfig] = None,
                      ) -> Optional[NameConvention]:
    """Learn an AS-name convention for one suffix, or None."""
    config = config or NameLearnerConfig()
    if len(dataset) < config.min_hostnames:
        return None
    if dataset.distinct_train_asns < config.min_distinct_asns:
        return None

    seen: Set[str] = set()
    candidates: List[Regex] = []
    visited = 0
    for index in range(len(dataset.items)):
        if visited >= config.generation_sample:
            break
        fresh = _candidates_for_item(dataset, index)
        if fresh:
            visited += 1
        for regex in fresh:
            if regex.pattern not in seen:
                seen.add(regex.pattern)
                candidates.append(regex)
                if len(candidates) >= config.max_candidates:
                    break
        if len(candidates) >= config.max_candidates:
            break
    if not candidates:
        return None

    best: Optional[Tuple[NameScore, Regex]] = None
    for regex in candidates:
        score = evaluate_name_regex(regex, dataset,
                                    config.min_occurrences)
        if len(score.tokens) < config.min_tokens:
            continue
        if score.tp < config.min_tp:
            continue
        if score.distinct_asns < config.min_distinct_asns:
            continue
        if score.purity < config.min_purity:
            continue
        key = (score.atp, score.distinct_asns, -regex.specificity_cost())
        if best is None or key > (best[0].atp, best[0].distinct_asns,
                                  -best[1].specificity_cost()):
            best = (score, regex)
    if best is None:
        return None
    score, regex = best
    return NameConvention(suffix=dataset.suffix, regex=regex,
                          mapping=dict(score.tokens), score=score)


class NameHoiho:
    """Driver: learn AS-name conventions over a whole training set."""

    def __init__(self, config: Optional[NameLearnerConfig] = None,
                 psl: Optional[PublicSuffixList] = None) -> None:
        self.config = config or NameLearnerConfig()
        self.psl = psl or default_psl()

    def run(self, items: Iterable[TrainingItem]
            ) -> Dict[str, NameConvention]:
        """Learn a name convention per suffix where one exists."""
        datasets = group_by_suffix(items, self.psl)
        conventions: Dict[str, NameConvention] = {}
        for suffix in sorted(datasets):
            convention = learn_name_suffix(datasets[suffix], self.config)
            if convention is not None:
                conventions[suffix] = convention
        return conventions
