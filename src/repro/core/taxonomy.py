"""Taxonomy of how and where conventions embed ASNs (Table 1).

* **simple** -- the hostname is exactly ``as<ASN>`` under the suffix;
* **start** -- ``as<ASN>`` at the start, with more information after it;
* **end** -- ``as<ASN>`` in the final portion before the suffix, with
  information before it;
* **bare** -- the ASN appears with no alphabetic preface;
* **complex** -- mid-hostname placement, an annotation other than "as",
  or a convention needing multiple regexes.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple

from repro.core.regex_model import Alt, Cap, Element, Lit, Regex


class Taxonomy(enum.Enum):
    """Table-1 classes."""

    SIMPLE = "simple"
    START = "start"
    END = "end"
    BARE = "bare"
    COMPLEX = "complex"


def _portion_boundaries(elements: Sequence[Element],
                        cap_index: int) -> Tuple[int, int]:
    """Element range [lo, hi) of the punctuation-delimited portion
    containing the capture."""
    lo = cap_index
    while lo > 0:
        prev = elements[lo - 1]
        if isinstance(prev, Lit) and prev.is_punct:
            break
        lo -= 1
    hi = cap_index + 1
    while hi < len(elements):
        nxt = elements[hi]
        if isinstance(nxt, Lit) and nxt.is_punct:
            break
        hi += 1
    return lo, hi


def _preface(elements: Sequence[Element], lo: int,
             cap_index: int) -> Optional[str]:
    """The literal text immediately before the capture in its portion.

    Returns ``None`` when the preface is variable (an or-group counts as
    a variable preface only when optional)."""
    parts = []
    for element in elements[lo:cap_index]:
        if isinstance(element, Lit):
            parts.append(element.text)
        elif isinstance(element, Alt):
            return None
        else:
            return None
    return "".join(parts)


def taxonomy_of(regexes: Sequence[Regex]) -> Taxonomy:
    """Classify a convention per Table 1."""
    if len(regexes) != 1:
        return Taxonomy.COMPLEX
    regex = regexes[0]
    elements = regex.elements
    cap_index = regex.cap_index()
    lo, hi = _portion_boundaries(elements, cap_index)
    at_start = lo == 0
    at_end = hi == len(elements)
    preface = _preface(elements, lo, cap_index)

    if preface is None:
        # Variable preface (or-groups like (?:p|s)?) defies the simple
        # classes; the paper files these as complex.
        return Taxonomy.COMPLEX
    preface_alpha = "".join(c for c in preface if c.isalpha())
    if not preface_alpha:
        return Taxonomy.BARE
    if preface_alpha != "as":
        return Taxonomy.COMPLEX
    if at_start and at_end and lo == 0 and hi == len(elements) \
            and cap_index == hi - 1 and preface == "as":
        # Nothing besides as<ASN> in the local part.
        return Taxonomy.SIMPLE
    if at_start:
        return Taxonomy.START
    if at_end:
        return Taxonomy.END
    return Taxonomy.COMPLEX
