"""Phase 1: generate base regexes (section 3.2).

For every training hostname containing an apparent ASN, Hoiho builds
anchored candidate regexes that capture the ASN with ``(\\d+)``, embed the
alphanumeric characters sharing the ASN's punctuation-delimited portion
as literals, and cover the remaining portions with components keyed on
adjacent punctuation (``[^\\.]+``, ``[^-]+``) or -- at most once per
regex -- with ``.+``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.core.regex_model import Any_, Cap, Element, Exclude, Lit, Regex
from repro.core.types import SuffixDataset, TrainingItem


def _segment_offsets(tokens: Sequence[str]) -> List[int]:
    """Start offset of each token within the joined local part."""
    offsets = []
    position = 0
    for token in tokens:
        offsets.append(position)
        position += len(token)
    return offsets


def _delimiters(tokens: Sequence[str], seg_index: int) -> (str, str):
    """(left, right) punctuation around segment token ``seg_index``.

    The virtual delimiter right of the last segment is the dot that
    separates the local part from the suffix.
    """
    left = tokens[seg_index - 1] if seg_index > 0 else ""
    right = tokens[seg_index + 1] if seg_index + 1 < len(tokens) else "."
    return left, right


def _segment_element(tokens: Sequence[str], seg_index: int,
                     mode: str) -> Element:
    """Element covering a non-ASN segment under an exclusion mode."""
    text = tokens[seg_index]
    if not text:
        return Lit("")
    left, right = _delimiters(tokens, seg_index)
    char = right if (mode == "right" or not left) else left
    return Exclude(frozenset(char))


def _asn_segment_elements(segment: str, run_start: int,
                          run_end: int) -> List[Element]:
    """Elements for the portion containing the ASN: literals + capture."""
    elements: List[Element] = []
    left = segment[:run_start]
    right = segment[run_end:]
    if left:
        elements.append(Lit(left))
    elements.append(Cap())
    if right:
        elements.append(Lit(right))
    return elements


def candidates_for_item(dataset: SuffixDataset, index: int,
                        max_any_ranges: int = 24) -> List[Regex]:
    """Base regexes derived from one training item.

    Returns an empty list when the hostname contains no apparent ASN.
    """
    item = dataset.items[index]
    local = dataset.local_part(item)
    if not local:
        return []
    runs = [run for run in dataset.apparent_runs(index)
            if run.end <= len(local)]
    if not runs:
        return []
    tokens = dataset.tokens(item)
    offsets = _segment_offsets(tokens)
    out: List[Regex] = []
    seen: Set[str] = set()

    def emit(elements: Sequence[Element]) -> None:
        regex = Regex(elements, dataset.suffix)
        if regex.pattern not in seen:
            seen.add(regex.pattern)
            out.append(regex)

    for run in runs:
        seg_index = _find_segment(tokens, offsets, run.start, run.end)
        if seg_index is None:
            continue
        asn_elements = _asn_segment_elements(
            tokens[seg_index], run.start - offsets[seg_index],
            run.end - offsets[seg_index])

        # Plain expansions under both exclusion modes.
        for mode in ("right", "left"):
            elements: List[Element] = []
            for tok_index, token in enumerate(tokens):
                if tok_index == seg_index:
                    elements.extend(asn_elements)
                elif tok_index % 2 == 1:
                    elements.append(Lit(token))
                else:
                    elements.append(_segment_element(tokens, tok_index, mode))
            emit(elements)

        # Variants replacing one contiguous run of segments with ``.+``.
        n_segments = (len(tokens) + 1) // 2
        emitted_ranges = 0
        for first in range(n_segments):
            for last in range(first, n_segments):
                lo, hi = first * 2, last * 2
                if lo <= seg_index <= hi:
                    continue
                if emitted_ranges >= max_any_ranges:
                    break
                elements = []
                tok_index = 0
                while tok_index < len(tokens):
                    if tok_index == lo:
                        elements.append(Any_())
                        tok_index = hi + 1
                        continue
                    if tok_index == seg_index:
                        elements.extend(asn_elements)
                    elif tok_index % 2 == 1:
                        elements.append(Lit(tokens[tok_index]))
                    else:
                        elements.append(
                            _segment_element(tokens, tok_index, "right"))
                    tok_index += 1
                emit(elements)
                emitted_ranges += 1
    return out


def _find_segment(tokens: Sequence[str], offsets: Sequence[int],
                  start: int, end: int) -> Optional[int]:
    """Token index of the segment containing [start, end), if any."""
    for tok_index in range(0, len(tokens), 2):
        seg_start = offsets[tok_index]
        seg_end = seg_start + len(tokens[tok_index])
        if seg_start <= start and end <= seg_end:
            return tok_index
    return None


def generate_base_regexes(dataset: SuffixDataset,
                          max_candidates: int = 800,
                          sample: Optional[int] = None) -> List[Regex]:
    """Phase-1 candidates for a whole dataset, deduplicated in order.

    ``sample`` caps how many items seed generation (items are visited in
    the dataset's deterministic sorted order); ``max_candidates`` caps the
    total pool so pathological suffixes stay tractable.
    """
    out: List[Regex] = []
    seen: Set[str] = set()
    visited = 0
    for index in range(len(dataset.items)):
        if sample is not None and visited >= sample:
            break
        candidates = candidates_for_item(dataset, index)
        if candidates:
            visited += 1
        for regex in candidates:
            if regex.pattern in seen:
                continue
            seen.add(regex.pattern)
            out.append(regex)
            if len(out) >= max_candidates:
                return out
    return out
