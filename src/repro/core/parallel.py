"""Parallel execution policy for the learner and the eval harness.

Learning is embarrassingly parallel at two granularities: suffix
datasets are independent (``Hoiho.run_datasets``), and the timeline's
training sets are independent (``ExperimentContext``).  A
:class:`ParallelConfig` describes how to fan either out; the default is
serial, and parallel runs are constructed to be *bit-identical* to
serial ones: work items are sorted before dispatch, results are yielded
in input order, and each worker runs the same deterministic learner.

Both mapping primitives accept an optional
:class:`~repro.core.resilience.RetryPolicy`.  Without one they keep the
historical fail-fast fast path (``Executor.map`` with chunking, zero
overhead).  With one, dispatch goes through a resilient per-item loop:
transient worker exceptions are retried with deterministic backoff, a
``BrokenProcessPool`` rebuilds the pool and re-dispatches the in-flight
items (degrading to serial execution after ``policy.pool_rebuilds``
losses), per-item timeouts tear down and rebuild a wedged pool, and
items that fail permanently surface as
:class:`~repro.core.resilience.PoisonItemError` -- or flow to the
caller's ``on_poison`` substitute so a stream can outlive its poison
(the serving engine's dead-letter path).  Ordering, and therefore
byte-identity with serial output, is preserved throughout: retries
happen out of order, but results are emitted strictly in input order.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, \
    Sequence, Tuple, TypeVar

from repro.core.resilience import (
    PoisonItemError,
    ResilienceStats,
    ResilientCall,
    RetryPolicy,
    call_with_retry,
)

#: Run everything in the calling process.
BACKEND_SERIAL = "serial"
#: Fan out over a :class:`concurrent.futures.ProcessPoolExecutor`.
BACKEND_PROCESS = "process"

_BACKENDS = (BACKEND_SERIAL, BACKEND_PROCESS)

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_workers() -> int:
    """A sensible worker count for this machine."""
    return max(1, os.cpu_count() or 1)


def fork_inheritance_available() -> bool:
    """Whether worker processes inherit this process's memory.

    Under the ``fork`` start method, module-level state built *before*
    the pool starts is visible in every worker for free -- the serving
    engine uses this to hand workers a prebuilt dispatch index instead
    of re-parsing conventions JSON per worker.  ``spawn``/``forkserver``
    children re-import modules from scratch, so callers must keep a
    pickle-able fallback either way.
    """
    import multiprocessing
    try:
        return multiprocessing.get_start_method() == "fork"
    except (ValueError, RuntimeError):
        return False


#: First chunk size of an adaptive ramp: small enough that every worker
#: gets work within milliseconds of the stream starting.
ADAPTIVE_CHUNK_MIN = 512

#: Ramp ceiling: large enough to amortise per-chunk dispatch overhead
#: (pickling, queue hops) down to noise on long streams.
ADAPTIVE_CHUNK_MAX = 16384


def adaptive_chunks(items: Iterable[_T],
                    start: int = ADAPTIVE_CHUNK_MIN,
                    limit: int = ADAPTIVE_CHUNK_MAX,
                    ) -> Iterator[List[_T]]:
    """Chunk ``items`` on a deterministic doubling ramp.

    Fixed-size chunking forces a trade-off the stream shouldn't have to
    make: small chunks keep pipeline fill latency low but drown long
    runs in dispatch overhead; large chunks amortise dispatch but leave
    workers idle while the first chunks fill.  The ramp takes both:
    chunk sizes double from ``start`` to ``limit`` and stay there, so a
    short input finishes promptly and a long one pays near-``limit``
    amortisation for all but its opening chunks.  The schedule depends
    only on ``start``/``limit``, never on timing, so chunk boundaries
    -- and therefore parallel output -- stay deterministic.
    """
    if start < 1 or limit < start:
        raise ValueError("need 1 <= start <= limit, got %d/%d"
                         % (start, limit))
    size = start
    chunk: List[_T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
            if size < limit:
                size = min(size * 2, limit)
    if chunk:
        yield chunk


@dataclass(frozen=True)
class ParallelConfig:
    """How to fan out independent learning work.

    Attributes:
        workers: worker process count (1 means serial regardless of
            backend).
        chunk_size: work items handed to a worker per dispatch; larger
            chunks amortise pickling for many small suffixes.
        backend: ``serial`` or ``process``.
    """

    workers: int = 1
    chunk_size: int = 4
    backend: str = BACKEND_SERIAL

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError("unknown backend %r (expected one of %s)"
                             % (self.backend, ", ".join(_BACKENDS)))
        if self.workers < 1:
            raise ValueError("workers must be >= 1, got %d" % self.workers)
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1, got %d"
                             % self.chunk_size)

    @property
    def is_parallel(self) -> bool:
        """True when work should actually leave this process."""
        return self.backend == BACKEND_PROCESS and self.workers > 1

    @classmethod
    def serial(cls) -> "ParallelConfig":
        """The do-everything-inline policy."""
        return cls()

    @classmethod
    def from_jobs(cls, jobs: int) -> "ParallelConfig":
        """Map a ``--jobs N`` CLI value to a config.

        ``0`` means "one worker per CPU"; ``1`` (the default) is serial;
        anything larger is that many worker processes.  Negative values
        are a usage error, not an implicit serial run.
        """
        if jobs < 0:
            raise ValueError("--jobs must be >= 0, got %d" % jobs)
        if jobs == 0:
            jobs = default_workers()
        if jobs <= 1:
            return cls.serial()
        return cls(workers=jobs, backend=BACKEND_PROCESS)


def parallel_map(func: Callable[[_T], _R], items: Sequence[_T],
                 config: ParallelConfig,
                 retry: Optional[RetryPolicy] = None,
                 site: str = "map",
                 on_retry: Optional[Callable] = None,
                 stats: Optional[ResilienceStats] = None) -> List[_R]:
    """Ordered map over ``items`` under ``config``.

    Results arrive in input order whichever backend runs, so callers get
    deterministic output as long as ``items`` is deterministically
    ordered.  ``func`` and the items must be picklable for the process
    backend.

    ``retry`` opts in to the resilient dispatcher (see the module
    docstring); an item that fails permanently raises
    :class:`~repro.core.resilience.PoisonItemError` -- fan-out callers
    like the snapshot pipeline must not silently drop work, so there is
    no substitution here (use :func:`stream_map` with ``on_poison`` for
    that).
    """
    if retry is not None:
        return list(stream_map(func, items, config,
                               window=max(len(items), 1), retry=retry,
                               site=site, on_retry=on_retry, stats=stats))
    if not config.is_parallel or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(config.workers, len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(func, items, chunksize=config.chunk_size))


def stream_map(func: Callable[[_T], _R], items: Iterable[_T],
               config: ParallelConfig,
               window: Optional[int] = None,
               initializer: Optional[Callable[..., None]] = None,
               initargs: Tuple = (),
               retry: Optional[RetryPolicy] = None,
               site: str = "stream",
               on_poison: Optional[Callable] = None,
               on_retry: Optional[Callable] = None,
               stats: Optional[ResilienceStats] = None) -> Iterator[_R]:
    """Lazy, ordered map over an *unbounded* iterable.

    Unlike :func:`parallel_map`, which materialises its input and
    output, this consumes ``items`` lazily and yields results in input
    order with at most ``window`` work items in flight (default: 4 per
    worker) -- the memory bound that lets the serving engine stream
    millions of hostnames through a fixed-size pipeline.

    ``initializer``/``initargs`` run once per worker process before any
    work item (the :class:`~concurrent.futures.ProcessPoolExecutor`
    contract); the serial path invokes them once in the calling process
    so both paths see the same set-up.

    A consumer that abandons the generator (closes it, or lets an
    exception escape its loop) shuts the pool down promptly: queued
    items are cancelled and workers exit after at most one in-flight
    item, instead of draining the whole window.

    ``retry`` enables the resilient dispatcher.  ``on_poison(item,
    error)`` -- if given -- supplies a substitute result for an item
    that failed permanently (the dead-letter hook); without it, poison
    raises :class:`~repro.core.resilience.PoisonItemError`.
    ``on_retry(item, attempts, exc)`` observes each retry, and
    ``stats`` (a :class:`~repro.core.resilience.ResilienceStats`)
    accumulates what the run survived.
    """
    window = window if window and window > 0 else config.workers * 4
    if retry is not None:
        yield from _stream_resilient(func, items, config, window,
                                     initializer, initargs, retry, site,
                                     on_poison, on_retry,
                                     stats or ResilienceStats())
        return
    if not config.is_parallel:
        if initializer is not None:
            initializer(*initargs)
        for item in items:
            yield func(item)
        return
    pool = ProcessPoolExecutor(max_workers=config.workers,
                               initializer=initializer, initargs=initargs)
    try:
        pending = deque()
        for item in items:
            pending.append(pool.submit(func, item))
            if len(pending) >= window:
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


# -- resilient dispatch ------------------------------------------------------

class _Flight:
    """One in-flight work item: identity, payload, and failure count."""

    __slots__ = ("index", "item", "attempts", "future")

    def __init__(self, index: int, item: object) -> None:
        self.index = index
        self.item = item
        self.attempts = 0
        self.future = None


def _stream_resilient(func: Callable, items: Iterable, config: ParallelConfig,
                      window: int, initializer: Optional[Callable],
                      initargs: Tuple, retry: RetryPolicy, site: str,
                      on_poison: Optional[Callable],
                      on_retry: Optional[Callable],
                      stats: ResilienceStats) -> Iterator:
    """The retry-aware ordered streaming dispatcher.

    Results are buffered per index and emitted strictly in input order,
    so retries (which complete out of order) never perturb the output
    stream -- parallel-with-faults output stays byte-identical to a
    clean serial run.
    """
    call = ResilientCall(func, site)
    source = enumerate(items)

    def settle(flight: _Flight, exc: BaseException) -> object:
        """Resolve a permanently failed item: substitute or raise."""
        stats.poisoned += 1
        error = PoisonItemError(flight.index, max(flight.attempts, 1), exc)
        if on_poison is None:
            raise error from exc
        return on_poison(flight.item, error)

    def run_inline(flight: _Flight) -> object:
        try:
            return call_with_retry(call, flight.index, flight.item, retry,
                                   on_retry=on_retry, stats=stats,
                                   attempts=flight.attempts)
        except PoisonItemError as error:
            stats.poisoned += 1
            if on_poison is None:
                raise
            return on_poison(flight.item, error)

    if not config.is_parallel:
        if initializer is not None:
            initializer(*initargs)
        for index, item in source:
            yield run_inline(_Flight(index, item))
        return

    pending: Dict[int, _Flight] = {}
    ready: Dict[int, object] = {}
    emit = 0
    exhausted = False
    rebuilds_left = retry.pool_rebuilds
    pool: Optional[ProcessPoolExecutor] = None

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=config.workers,
                                   initializer=initializer,
                                   initargs=initargs)

    def submit(flight: _Flight) -> None:
        flight.future = pool.submit(
            call, (flight.index, flight.attempts, flight.item))

    def rebuild_pool(timed_out: Optional[_Flight]) -> None:
        """Replace a dead/wedged pool and re-dispatch survivors.

        The culprit is unknowable after a pool loss (the dying worker
        takes the evidence with it), so every in-flight item is charged
        one attempt; items that exhaust their budget are poisoned here
        and never re-run -- in particular never *inline*, where a
        crashing item would take the parent down with it.  A timeout
        names its culprit, so only the wedged item is charged.
        """
        nonlocal pool
        pool.shutdown(wait=False, cancel_futures=True)
        pool = make_pool()
        harvest_done()
        if timed_out is not None:
            charged = [timed_out] if timed_out.index in pending else []
        else:
            charged = list(pending.values())
        for flight in charged:
            flight.attempts += 1
        for index in sorted(pending):
            flight = pending[index]
            if flight.attempts >= retry.max_attempts:
                del pending[index]
                ready[index] = settle(
                    flight,
                    BrokenProcessPool("worker lost while item was "
                                      "in flight"))
            else:
                if flight in charged:
                    stats.retries += 1
                    if on_retry is not None:
                        on_retry(flight.item, flight.attempts, None)
                submit(flight)

    def harvest_done() -> None:
        """Bank results that finished before their pool died, so a
        rebuild neither recomputes nor charges them."""
        for index in sorted(pending):
            future = pending[index].future
            if future is not None and future.done() \
                    and future.exception() is None:
                del pending[index]
                ready[index] = future.result()

    pool = make_pool()
    try:
        while True:
            # Top up the in-flight window from the source.  A submit on
            # a freshly broken pool parks the flight with no future; the
            # collection path below notices and runs the loss protocol.
            while not exhausted and len(pending) < window:
                try:
                    index, item = next(source)
                except StopIteration:
                    exhausted = True
                    break
                flight = _Flight(index, item)
                try:
                    submit(flight)
                except BrokenProcessPool:
                    pass
                pending[flight.index] = flight

            # Emit everything that is ready, in input order.
            while emit in ready:
                value = ready.pop(emit)
                emit += 1
                yield value

            if not pending:
                if exhausted:
                    return
                continue

            # Collect the head-of-line item (oldest unemitted index).
            head = pending[min(pending)]
            outcome = None          # "ok" | "fault" | "lost"
            value = exc = None
            if head.future is None:
                outcome = "lost"
            else:
                try:
                    value = head.future.result(timeout=retry.timeout)
                    outcome = "ok"
                except BrokenProcessPool:
                    outcome = "lost"
                except FuturesTimeoutError:
                    if head.future.done():
                        # The *wait* did not time out -- the worker
                        # finished (or raised) in the window between the
                        # timeout and here, or func raised TimeoutError
                        # itself.
                        exc = head.future.exception()
                        if exc is None:
                            value = head.future.result()
                            outcome = "ok"
                        else:
                            outcome = "fault"
                    else:
                        # The item overran its budget; a busy worker
                        # cannot be reclaimed, so tear the pool down and
                        # re-run everything that was in flight (only the
                        # wedged item is charged an attempt).
                        stats.timeouts += 1
                        rebuild_pool(timed_out=head)
                        continue
                except Exception as err:
                    exc = err
                    outcome = "fault"

            if outcome == "ok":
                del pending[head.index]
                ready[head.index] = value
                continue

            if outcome == "fault":
                head.attempts += 1
                if retry.is_transient(exc) \
                        and head.attempts < retry.max_attempts:
                    stats.retries += 1
                    if on_retry is not None:
                        on_retry(head.item, head.attempts, exc)
                    time.sleep(retry.backoff(head.attempts))
                    submit(head)
                else:
                    del pending[head.index]
                    ready[head.index] = settle(head, exc)
                continue

            # Pool lost.
            stats.pool_losses += 1
            if rebuilds_left > 0:
                rebuilds_left -= 1
                rebuild_pool(timed_out=None)
                continue

            # Too many pool losses: degrade to serial.  Items already
            # past their attempt budget are poisoned (they may be what
            # keeps killing workers); the rest -- and all remaining
            # input -- run inline in this process.
            stats.degraded = True
            pool.shutdown(wait=False, cancel_futures=True)
            if initializer is not None:
                initializer(*initargs)
            harvest_done()
            for flight in pending.values():
                flight.attempts += 1
            for index in sorted(pending):
                flight = pending.pop(index)
                if flight.attempts >= retry.max_attempts:
                    ready[index] = settle(
                        flight,
                        BrokenProcessPool("worker lost while item was "
                                          "in flight"))
                else:
                    ready[index] = run_inline(flight)
                while emit in ready:
                    value = ready.pop(emit)
                    emit += 1
                    yield value
            for index, item in source:
                ready[index] = run_inline(_Flight(index, item))
                while emit in ready:
                    value = ready.pop(emit)
                    emit += 1
                    yield value
            return
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
