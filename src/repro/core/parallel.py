"""Parallel execution policy for the learner and the eval harness.

Learning is embarrassingly parallel at two granularities: suffix
datasets are independent (``Hoiho.run_datasets``), and the timeline's
training sets are independent (``ExperimentContext``).  A
:class:`ParallelConfig` describes how to fan either out; the default is
serial, and parallel runs are constructed to be *bit-identical* to
serial ones: work items are sorted before dispatch, ``Executor.map``
preserves input order, and each worker runs the same deterministic
learner.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, \
    Tuple, TypeVar

#: Run everything in the calling process.
BACKEND_SERIAL = "serial"
#: Fan out over a :class:`concurrent.futures.ProcessPoolExecutor`.
BACKEND_PROCESS = "process"

_BACKENDS = (BACKEND_SERIAL, BACKEND_PROCESS)

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_workers() -> int:
    """A sensible worker count for this machine."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ParallelConfig:
    """How to fan out independent learning work.

    Attributes:
        workers: worker process count (1 means serial regardless of
            backend).
        chunk_size: work items handed to a worker per dispatch; larger
            chunks amortise pickling for many small suffixes.
        backend: ``serial`` or ``process``.
    """

    workers: int = 1
    chunk_size: int = 4
    backend: str = BACKEND_SERIAL

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError("unknown backend %r (expected one of %s)"
                             % (self.backend, ", ".join(_BACKENDS)))
        if self.workers < 1:
            raise ValueError("workers must be >= 1, got %d" % self.workers)
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1, got %d"
                             % self.chunk_size)

    @property
    def is_parallel(self) -> bool:
        """True when work should actually leave this process."""
        return self.backend == BACKEND_PROCESS and self.workers > 1

    @classmethod
    def serial(cls) -> "ParallelConfig":
        """The do-everything-inline policy."""
        return cls()

    @classmethod
    def from_jobs(cls, jobs: int) -> "ParallelConfig":
        """Map a ``--jobs N`` CLI value to a config.

        ``0`` means "one worker per CPU"; ``1`` (the default) is serial;
        anything larger is that many worker processes.
        """
        if jobs == 0:
            jobs = default_workers()
        if jobs <= 1:
            return cls.serial()
        return cls(workers=jobs, backend=BACKEND_PROCESS)


def parallel_map(func: Callable[[_T], _R], items: Sequence[_T],
                 config: ParallelConfig) -> List[_R]:
    """Ordered map over ``items`` under ``config``.

    Results arrive in input order whichever backend runs, so callers get
    deterministic output as long as ``items`` is deterministically
    ordered.  ``func`` and the items must be picklable for the process
    backend.
    """
    if not config.is_parallel or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(config.workers, len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(func, items, chunksize=config.chunk_size))


def stream_map(func: Callable[[_T], _R], items: Iterable[_T],
               config: ParallelConfig,
               window: Optional[int] = None,
               initializer: Optional[Callable[..., None]] = None,
               initargs: Tuple = ()) -> Iterator[_R]:
    """Lazy, ordered map over an *unbounded* iterable.

    Unlike :func:`parallel_map`, which materialises its input and
    output, this consumes ``items`` lazily and yields results in input
    order with at most ``window`` work items in flight (default: 4 per
    worker) -- the memory bound that lets the serving engine stream
    millions of hostnames through a fixed-size pipeline.

    ``initializer``/``initargs`` run once per worker process before any
    work item (the :class:`~concurrent.futures.ProcessPoolExecutor`
    contract); the serial path invokes them once in the calling process
    so both paths see the same set-up.
    """
    if not config.is_parallel:
        if initializer is not None:
            initializer(*initargs)
        for item in items:
            yield func(item)
        return
    window = window if window and window > 0 else config.workers * 4
    with ProcessPoolExecutor(max_workers=config.workers,
                             initializer=initializer,
                             initargs=initargs) as pool:
        pending = deque()
        for item in items:
            pending.append(pool.submit(func, item))
            if len(pending) >= window:
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()
