"""Training data types for the Hoiho-ASN learner.

A training item pairs a hostname with the ASN some oracle believes
operates the router behind it -- inferred by RouterToAsAssignment or
bdrmapIT for ITDK snapshots, or recorded by an operator in PeeringDB.
Items are grouped per registered-domain suffix; the learner works on one
:class:`SuffixDataset` at a time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.congruence import apparent_asn_runs
from repro.psl import PublicSuffixList, default_psl
from repro.util.ipaddr import embedded_ip_spans
from repro.util.strings import split_segments


@dataclass(frozen=True)
class TrainingItem:
    """One (hostname, training ASN) observation.

    Attributes:
        hostname: the full PTR name, lower-cased.
        train_asn: the ASN the training oracle assigned to the router.
        address: the interface address (dotted quad), when known; used by
            the embedded-IP false-positive rule.
    """

    hostname: str
    train_asn: int
    address: Optional[str] = None


class SuffixDataset:
    """All training items sharing one registered-domain suffix.

    Precomputes per-item state the evaluator needs many times: the local
    part (hostname minus suffix), embedded-IP spans, and token structure.

    >>> ds = SuffixDataset("example.com",
    ...                    [TrainingItem("as64500.lon1.example.com", 64500)])
    >>> ds.local_part(ds.items[0])
    'as64500.lon1'
    """

    def __init__(self, suffix: str, items: Iterable[TrainingItem]) -> None:
        self.suffix = suffix.lower()
        seen = set()
        unique: List[TrainingItem] = []
        for item in items:
            hostname = item.hostname.lower()
            key = (hostname, item.train_asn)
            if key in seen:
                continue
            seen.add(key)
            if hostname != item.hostname:
                item = TrainingItem(hostname, item.train_asn, item.address)
            unique.append(item)
        # Sorted for deterministic candidate generation order.
        self.items: List[TrainingItem] = sorted(
            unique, key=lambda it: (it.hostname, it.train_asn))
        self._ip_spans: Dict[int, List[Tuple[int, int]]] = {}
        self._apparent_runs: Dict[int, list] = {}

    def __len__(self) -> int:
        return len(self.items)

    @cached_property
    def distinct_train_asns(self) -> int:
        """Number of distinct training ASNs in the dataset."""
        return len({item.train_asn for item in self.items})

    def local_part(self, item: TrainingItem) -> str:
        """The hostname with the dot-suffix removed (may be empty)."""
        tail = "." + self.suffix
        if item.hostname == self.suffix:
            return ""
        if item.hostname.endswith(tail):
            return item.hostname[:-len(tail)]
        raise ValueError("%r does not end with suffix %r"
                         % (item.hostname, self.suffix))

    def ip_spans(self, index: int) -> List[Tuple[int, int]]:
        """Embedded-IP character spans for item ``index`` (memoised)."""
        spans = self._ip_spans.get(index)
        if spans is None:
            item = self.items[index]
            spans = embedded_ip_spans(item.hostname, item.address)
            self._ip_spans[index] = spans
        return spans

    def apparent_runs(self, index: int) -> list:
        """Apparent-ASN digit runs for item ``index`` (memoised).

        The pre-check gate, phase-1 generation, and the evaluation
        cache's FN baseline all need this; deriving it once per item
        instead of once per consumer keeps it off the hot path.
        """
        runs = self._apparent_runs.get(index)
        if runs is None:
            item = self.items[index]
            runs = apparent_asn_runs(item.hostname, item.train_asn,
                                     self.ip_spans(index))
            self._apparent_runs[index] = runs
        return runs

    def tokens(self, item: TrainingItem) -> List[str]:
        """Alternating segment/punctuation tokens of the local part."""
        return split_segments(self.local_part(item))


def group_by_suffix(items: Iterable[TrainingItem],
                    psl: Optional[PublicSuffixList] = None,
                    ) -> Dict[str, SuffixDataset]:
    """Partition training items into per-suffix datasets.

    Items whose hostname has no registerable suffix (bare TLDs, empty
    names) are dropped, mirroring Hoiho's preprocessing.
    """
    psl = psl or default_psl()
    buckets: Dict[str, List[TrainingItem]] = defaultdict(list)
    for item in items:
        suffix = psl.registered_domain(item.hostname)
        if suffix is None:
            continue
        buckets[suffix].append(item)
    return {suffix: SuffixDataset(suffix, bucket)
            for suffix, bucket in buckets.items()}
