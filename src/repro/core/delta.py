"""Delta planning for incremental per-suffix relearning.

Per-suffix independence is the structural property the learner's
fan-out already exploits: each suffix's convention is a pure function
of (its training observations, the :class:`~repro.core.hoiho.HoihoConfig`).
This module turns that into *incremental* timeline learning.  Every
suffix dataset is fingerprinted (:func:`repro.core.hoiho.suffix_fingerprint`);
consecutive snapshots are diffed fingerprint-by-fingerprint; and only
suffixes whose training set actually changed are dispatched to the
learner -- the rest are served from the artifact store's ``suffixes/``
namespace.  Warm relearning cost becomes proportional to the delta,
not the corpus.

Three layers use these plans:

* :class:`~repro.core.hoiho.Hoiho` resolves one training set's worth
  of plans against the store (``run_datasets`` with ``store=``);
* :meth:`~repro.eval.context.ExperimentContext.learn_timeline` plans a
  whole timeline, dedupes identical suffix training sets *across*
  snapshots (content addressing makes cross-snapshot sharing free, even
  on a cold store), and dispatches only the unique misses;
* the bench/CI incremental sections report the
  :class:`DeltaSummary` numbers (changed/unchanged per consecutive
  snapshot pair) and the cache hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.hoiho import (
    HoihoConfig,
    SuffixArtifact,
    suffix_cache_payload,
)
from repro.core.types import SuffixDataset, group_by_suffix
from repro.store import KIND_SUFFIX, fingerprint


@dataclass
class SuffixPlan:
    """One suffix's unit of incremental work.

    ``fingerprint`` is the content-addressed identity of the training
    problem; ``payload`` is what it hashes (and what keys the store).
    ``label`` names the training set the plan came from (empty for
    single-set :class:`~repro.core.hoiho.Hoiho` runs).
    """

    label: str
    suffix: str
    dataset: SuffixDataset
    payload: Dict[str, object]
    fingerprint: str


def plan_datasets(datasets: Sequence[SuffixDataset],
                  config: HoihoConfig,
                  label: str = "") -> List[SuffixPlan]:
    """Fingerprint every dataset, in sorted-suffix order."""
    plans: List[SuffixPlan] = []
    for dataset in sorted(datasets, key=lambda d: d.suffix):
        payload = suffix_cache_payload(dataset, config)
        plans.append(SuffixPlan(label=label, suffix=dataset.suffix,
                                dataset=dataset, payload=payload,
                                fingerprint=fingerprint(payload)))
    return plans


@dataclass
class LabelPlan:
    """All suffix plans of one training set, sorted by suffix."""

    label: str
    suffixes: List[SuffixPlan]

    def fingerprints(self) -> Dict[str, str]:
        """{suffix: fingerprint} for delta diffing."""
        return {plan.suffix: plan.fingerprint for plan in self.suffixes}


@dataclass
class DeltaSummary:
    """What changed between two consecutive snapshots' suffixes.

    ``changed`` lists suffixes present in both whose training-set
    fingerprint moved; ``unchanged`` those whose fingerprint held
    (these are exactly the suffixes incremental learning never
    re-learns); ``added``/``removed`` the suffixes that appeared in or
    vanished from the later snapshot.
    """

    label: str
    previous: str
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    changed: List[str] = field(default_factory=list)
    unchanged: List[str] = field(default_factory=list)

    @property
    def relearn_fraction(self) -> float:
        """Fraction of the later snapshot's suffixes needing relearning."""
        total = len(self.added) + len(self.changed) + len(self.unchanged)
        return (len(self.added) + len(self.changed)) / total if total \
            else 0.0


def diff_fingerprints(previous: Mapping[str, str],
                      current: Mapping[str, str],
                      label: str = "", previous_label: str = "",
                      ) -> DeltaSummary:
    """Diff two {suffix: fingerprint} maps into a :class:`DeltaSummary`."""
    summary = DeltaSummary(label=label, previous=previous_label)
    for suffix in sorted(current):
        if suffix not in previous:
            summary.added.append(suffix)
        elif previous[suffix] != current[suffix]:
            summary.changed.append(suffix)
        else:
            summary.unchanged.append(suffix)
    summary.removed = sorted(set(previous) - set(current))
    return summary


@dataclass
class TimelinePlan:
    """Suffix plans for a sequence of training sets, plus their deltas.

    ``deltas`` holds one :class:`DeltaSummary` per consecutive pair of
    planned training sets, in timeline order.
    """

    labels: List[LabelPlan]
    deltas: List[DeltaSummary]

    def all_plans(self) -> List[SuffixPlan]:
        """Every suffix plan, label-major, suffix-sorted within."""
        return [plan for label_plan in self.labels
                for plan in label_plan.suffixes]

    def attrs(self) -> Dict[str, int]:
        """Scalar summary for span attributes / reports."""
        plans = self.all_plans()
        return {
            "suffix_plans": len(plans),
            "suffix_unique": len({plan.fingerprint for plan in plans}),
            "delta_added": sum(len(d.added) for d in self.deltas),
            "delta_removed": sum(len(d.removed) for d in self.deltas),
            "delta_changed": sum(len(d.changed) for d in self.deltas),
            "delta_unchanged": sum(len(d.unchanged)
                                   for d in self.deltas),
        }


def plan_timeline(training_sets: Sequence, config: HoihoConfig,
                  psl=None) -> TimelinePlan:
    """Plan incremental learning over a timeline of training sets.

    ``training_sets`` is any sequence of objects with ``label`` and
    ``items`` (e.g. :class:`~repro.eval.timeline.TrainingSet`), in
    timeline order.  Grouping matches
    :meth:`~repro.core.hoiho.Hoiho.run` exactly (same PSL, same
    drop-unregisterable rule), so an incremental assembly of the
    resulting artifacts is indistinguishable from a from-scratch
    ``Hoiho.run`` per label.
    """
    label_plans: List[LabelPlan] = []
    for training_set in training_sets:
        datasets = group_by_suffix(training_set.items, psl)
        label_plans.append(LabelPlan(
            label=training_set.label,
            suffixes=plan_datasets(list(datasets.values()), config,
                                   label=training_set.label)))
    deltas = [
        diff_fingerprints(label_plans[i - 1].fingerprints(),
                          label_plans[i].fingerprints(),
                          label=label_plans[i].label,
                          previous_label=label_plans[i - 1].label)
        for i in range(1, len(label_plans))
    ]
    return TimelinePlan(labels=label_plans, deltas=deltas)


def resolve_plans(store, plans: Sequence[SuffixPlan],
                  metrics=None,
                  ) -> Tuple[List[Tuple[SuffixPlan, SuffixArtifact]],
                             List[SuffixPlan]]:
    """Split plans into store hits and misses.

    A hit must actually be a :class:`~repro.core.hoiho.SuffixArtifact`
    -- anything else on disk under that fingerprint (corruption, stale
    schema) reads as a miss and is relearned.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) accumulates
    ``suffix_cache_hits``/``suffix_cache_misses`` counters.
    """
    hits: List[Tuple[SuffixPlan, SuffixArtifact]] = []
    misses: List[SuffixPlan] = []
    for plan in plans:
        artifact = store.get(KIND_SUFFIX, plan.payload)
        if isinstance(artifact, SuffixArtifact):
            hits.append((plan, artifact))
        else:
            misses.append(plan)
    if metrics is not None:
        if hits:
            metrics.counter("suffix_cache_hits").inc(len(hits))
        if misses:
            metrics.counter("suffix_cache_misses").inc(len(misses))
    return hits, misses


def dedupe_plans(plans: Sequence[SuffixPlan]) -> List[List[SuffixPlan]]:
    """Group plans sharing a fingerprint (identical training problems).

    Content addressing makes the grouping sound: an identical
    fingerprint means identical suffix, items, and config, so one
    learned artifact serves every member.  Groups come back in first-
    seen order, which is deterministic because the input is.
    """
    groups: Dict[str, List[SuffixPlan]] = {}
    order: List[str] = []
    for plan in plans:
        if plan.fingerprint not in groups:
            groups[plan.fingerprint] = []
            order.append(plan.fingerprint)
        groups[plan.fingerprint].append(plan)
    return [groups[key] for key in order]


def assemble_result(label_plan: LabelPlan,
                    artifacts: Mapping[str, SuffixArtifact]):
    """Build one label's :class:`~repro.core.hoiho.HoihoResult` from
    per-suffix artifacts (keyed by fingerprint).

    Conventions land in sorted-suffix order -- the same insertion order
    a from-scratch :meth:`~repro.core.hoiho.Hoiho.run` produces -- and
    rejected suffixes (``convention is None``) still count toward
    ``suffixes_examined``.
    """
    from repro.core.hoiho import HoihoResult
    result = HoihoResult(suffixes_examined=len(label_plan.suffixes))
    for plan in label_plan.suffixes:
        artifact = artifacts[plan.fingerprint]
        if artifact.convention is not None:
            result.conventions[plan.suffix] = artifact.convention
    return result
