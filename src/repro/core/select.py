"""Best-convention selection (section 3.6) and NC classification (§4).

Selection starts from the top-ATP convention, then prefers a convention
expressed in fewer regexes when it matches at least as many hostnames,
has at least as many TPs, and at most one more FP -- fewer regexes mean
less opportunity for overfitting.

Classification follows section 4: *good* conventions extract at least
three unique congruent ASNs with PPV >= 80%; *promising* at least two
with PPV >= 50%; good and promising are *usable*; the rest are *poor*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.evaluate import NCScore
from repro.core.regex_model import Regex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.matchcache import MatchCache


class NCClass(enum.Enum):
    """Quality class of a learned naming convention (section 4)."""

    GOOD = "good"
    PROMISING = "promising"
    POOR = "poor"

    @property
    def usable(self) -> bool:
        """Good and promising conventions are usable."""
        return self is not NCClass.POOR


def classify_nc(score: NCScore) -> NCClass:
    """Classify a convention's score per section 4 thresholds."""
    if score.distinct >= 3 and score.ppv >= 0.80:
        return NCClass.GOOD
    if score.distinct >= 2 and score.ppv >= 0.50:
        return NCClass.PROMISING
    return NCClass.POOR


def select_best(
    conventions: Sequence[Tuple[Tuple[Regex, ...], NCScore]],
    cache: "Optional[MatchCache]" = None,
) -> Optional[Tuple[Tuple[Regex, ...], NCScore]]:
    """Pick the best convention from phase-4 candidates.

    ``conventions`` must already be ordered best-first by ATP rank (as
    :func:`repro.core.phase4.build_regex_sets` returns them).  With
    ``cache`` the winner's score is re-composed with per-item outcomes
    attached -- a vector composition, not a re-match -- so reporting can
    render the per-hostname view without evaluating again.
    """
    if not conventions:
        return None
    best_regexes, best_score = conventions[0]
    for regexes, score in conventions[1:]:
        if (len(regexes) < len(best_regexes)
                and score.matches >= best_score.matches
                and score.tp >= best_score.tp
                and score.fp <= best_score.fp + 1):
            best_regexes, best_score = regexes, score
    if cache is not None and not best_score.outcomes:
        best_score = cache.score_nc(best_regexes, keep_outcomes=True)
    return best_regexes, best_score


@dataclass
class LearnedConvention:
    """A learned naming convention for one suffix."""

    suffix: str
    regexes: Tuple[Regex, ...]
    score: NCScore
    nc_class: NCClass

    @property
    def usable(self) -> bool:
        """Usable = good or promising (section 4)."""
        return self.nc_class.usable

    @property
    def single(self) -> bool:
        """Conventions expressed as exactly one regex."""
        return len(self.regexes) == 1

    def extract(self, hostname: str) -> Optional[int]:
        """Extract an ASN from ``hostname`` using the convention.

        The first matching regex supplies the extraction, mirroring
        evaluation order.  Returns ``None`` when no regex matches.
        """
        hostname = hostname.lower()
        for regex in self.regexes:
            hit = regex.extract(hostname)
            if hit is not None:
                return int(hit[0])
        return None

    def patterns(self) -> List[str]:
        """Rendered patterns, in evaluation order."""
        return [regex.pattern for regex in self.regexes]

    def __repr__(self) -> str:
        return "LearnedConvention(%s, %s, %s)" % (
            self.suffix, self.nc_class.value, " | ".join(self.patterns()))
