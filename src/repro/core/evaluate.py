"""Scoring regexes and regex sets against a suffix dataset.

A *naming convention* (NC) is an ordered list of regexes; the first regex
that matches a hostname supplies the extraction.  Scores follow section
3.1: ATP = TP - (FP + FN); PPV = TP / (TP + FP); plus the count of
distinct congruent extracted ASNs that gates usability (section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.congruence import Outcome, classify_extraction
from repro.core.regex_model import Regex
from repro.core.types import SuffixDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.matchcache import MatchCache


@dataclass
class NCScore:
    """Aggregate score of a regex or regex set over one dataset."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    matches: int = 0
    distinct_asns: Set[int] = field(default_factory=set)
    # item index -> (outcome, extracted text or None)
    outcomes: List[Tuple[Outcome, Optional[str]]] = field(
        default_factory=list)

    @property
    def atp(self) -> int:
        """Absolute true positives: TP - (FP + FN)."""
        return self.tp - (self.fp + self.fn)

    @property
    def ppv(self) -> float:
        """Positive predictive value; 0 when nothing was extracted."""
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def distinct(self) -> int:
        """Number of distinct congruent extracted ASNs."""
        return len(self.distinct_asns)

    def rank_key(self) -> Tuple:
        """Sort key: better scores first (use with ``sorted(...)``)."""
        return (-self.atp, -self.tp, self.fp, self.fn)

    def __repr__(self) -> str:
        return ("NCScore(tp=%d fp=%d fn=%d atp=%d matches=%d "
                "distinct=%d ppv=%.3f)"
                % (self.tp, self.fp, self.fn, self.atp, self.matches,
                   self.distinct, self.ppv))


def evaluate_nc(regexes: Sequence[Regex], dataset: SuffixDataset,
                keep_outcomes: bool = False,
                cache: "Optional[MatchCache]" = None) -> NCScore:
    """Score an ordered regex set over ``dataset``.

    The first matching regex supplies the extraction for a hostname;
    hostnames matching no regex are FNs when they contain an apparent
    ASN.  With ``keep_outcomes`` the per-item classifications are
    retained (used by phase analysis and reporting).  With ``cache`` (a
    :class:`~repro.core.matchcache.MatchCache` bound to ``dataset``) the
    score is composed from per-regex match vectors, so already-scored
    regexes are never re-matched.
    """
    if cache is not None:
        return cache.score_nc(regexes, keep_outcomes=keep_outcomes)
    score = NCScore()
    for index, item in enumerate(dataset.items):
        extracted: Optional[str] = None
        span: Optional[Tuple[int, int]] = None
        for regex in regexes:
            hit = regex.extract(item.hostname)
            if hit is not None:
                extracted, span = hit
                break
        outcome = classify_extraction(extracted, span, item.hostname,
                                      item.train_asn,
                                      dataset.ip_spans(index))
        if extracted is not None:
            score.matches += 1
        if outcome is Outcome.TP:
            score.tp += 1
            score.distinct_asns.add(int(extracted))  # type: ignore[arg-type]
        elif outcome is Outcome.FP:
            score.fp += 1
        elif outcome is Outcome.FN:
            score.fn += 1
        if keep_outcomes:
            score.outcomes.append((outcome, extracted))
    return score


def evaluate_regex(regex: Regex, dataset: SuffixDataset,
                   keep_outcomes: bool = False,
                   cache: "Optional[MatchCache]" = None) -> NCScore:
    """Score a single regex (an NC of one)."""
    if cache is not None:
        return cache.score_regex(regex, keep_outcomes=keep_outcomes)
    return evaluate_nc((regex,), dataset, keep_outcomes=keep_outcomes)


def matched_indices(regex: Regex, dataset: SuffixDataset,
                    cache: "Optional[MatchCache]" = None) -> List[int]:
    """Indices of items the regex matches (used by phase 3)."""
    if cache is not None:
        return cache.matched_indices(regex)
    out: List[int] = []
    for index, item in enumerate(dataset.items):
        if regex.compiled.match(item.hostname) is not None:
            out.append(index)
    return out
