"""Hoiho-ASN: learning regexes that extract ASNs from hostnames.

This package is the paper's primary contribution (sections 3 and 4):

* :mod:`repro.core.types` -- training items and per-suffix datasets;
* :mod:`repro.core.congruence` -- apparent ASNs, the guarded
  edit-distance-one rule, the embedded-IP false-positive rule, and the
  TP/FP/FN/ATP bookkeeping of section 3.1;
* :mod:`repro.core.regex_model` -- a structured regex AST that renders to
  the anchored patterns the paper shows;
* :mod:`repro.core.phase1` .. :mod:`repro.core.phase4` -- the four
  learning phases (base regexes, merging, character classes, regex sets);
* :mod:`repro.core.select` -- best-convention selection (section 3.6) and
  the good/promising/poor classification (section 4);
* :mod:`repro.core.taxonomy` -- the Table-1 placement taxonomy;
* :mod:`repro.core.matchcache` -- the per-dataset match-vector
  evaluation cache every phase scores through;
* :mod:`repro.core.parallel` -- the per-suffix / per-training-set
  fan-out policy;
* :mod:`repro.core.resilience` -- retry policy, transient-vs-poison
  fault classification, and deterministic fault injection for those
  fan-outs;
* :mod:`repro.core.hoiho` -- the end-to-end learner.
"""

from repro.core.types import TrainingItem, SuffixDataset, group_by_suffix
from repro.core.asname import (
    NameConvention,
    NameHoiho,
    NameLearnerConfig,
    learn_name_suffix,
)
from repro.core.routername import (
    RouterItem,
    RouterNameConvention,
    learn_router_names,
    learn_router_suffix,
)
from repro.core.io import (
    conventions_from_json,
    conventions_to_json,
    training_from_jsonl,
    training_to_jsonl,
)
from repro.core.report import render_convention, render_result
from repro.core.congruence import (
    Outcome,
    apparent_asn_runs,
    classify_extraction,
    congruent,
)
from repro.core.regex_model import (
    Alt,
    Any_,
    Cap,
    ClassSeq,
    Exclude,
    Lit,
    Regex,
)
from repro.core.evaluate import NCScore, evaluate_nc, evaluate_regex
from repro.core.matchcache import CacheStats, ComposedNC, MatchCache, \
    MatchVector
from repro.core.parallel import ParallelConfig, parallel_map, stream_map
from repro.core.resilience import (
    FaultInjector,
    PoisonItemError,
    ResilienceStats,
    RetryPolicy,
    TransientError,
)
from repro.core.select import NCClass, LearnedConvention, select_best, classify_nc
from repro.core.taxonomy import Taxonomy, taxonomy_of
from repro.core.hoiho import (
    Hoiho,
    HoihoConfig,
    HoihoResult,
    LearnTrace,
    learn_suffix,
    learn_suffix_traced,
)

__all__ = [
    "TrainingItem",
    "SuffixDataset",
    "group_by_suffix",
    "NameConvention",
    "NameHoiho",
    "NameLearnerConfig",
    "learn_name_suffix",
    "RouterItem",
    "RouterNameConvention",
    "learn_router_names",
    "learn_router_suffix",
    "conventions_from_json",
    "conventions_to_json",
    "training_from_jsonl",
    "training_to_jsonl",
    "render_convention",
    "render_result",
    "Outcome",
    "apparent_asn_runs",
    "classify_extraction",
    "congruent",
    "Alt",
    "Any_",
    "Cap",
    "ClassSeq",
    "Exclude",
    "Lit",
    "Regex",
    "NCScore",
    "evaluate_nc",
    "evaluate_regex",
    "CacheStats",
    "ComposedNC",
    "MatchCache",
    "MatchVector",
    "FaultInjector",
    "ParallelConfig",
    "PoisonItemError",
    "ResilienceStats",
    "RetryPolicy",
    "TransientError",
    "parallel_map",
    "stream_map",
    "NCClass",
    "LearnedConvention",
    "select_best",
    "classify_nc",
    "Taxonomy",
    "taxonomy_of",
    "Hoiho",
    "HoihoConfig",
    "HoihoResult",
    "LearnTrace",
    "learn_suffix",
    "learn_suffix_traced",
]
