"""Phase 3: embed character classes (section 3.4).

For each regex, the punctuation-exclusion components (``[^\\.]+``) are
specialised to the smallest character class covering everything they
actually matched in the training data (``[a-z]+``, ``\\d+``,
``[a-z\\d]+``, ...).  The specialised regex replaces the original when it
scores at least as well, increasing specificity without losing coverage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, \
    Sequence, Set

from repro.core.regex_model import (
    CLASS_ALPHA,
    CLASS_DIGIT,
    ClassSeq,
    Element,
    Exclude,
    Regex,
    instrumented_pattern,
)
from repro.core.types import SuffixDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.matchcache import MatchCache


def _atoms_for(texts: Sequence[str]) -> FrozenSet[str]:
    """Smallest class-atom set covering all of ``texts``."""
    atoms: Set[str] = set()
    for text in texts:
        for ch in text:
            if ch.isdigit():
                atoms.add(CLASS_DIGIT)
            elif ch.isalpha():
                atoms.add(CLASS_ALPHA)
            else:
                atoms.add(ch)
    return frozenset(atoms)


def specialise_regex(regex: Regex,
                     dataset: SuffixDataset,
                     cache: "Optional[MatchCache]" = None) -> Optional[Regex]:
    """The character-class specialisation of ``regex``, if one exists.

    Returns ``None`` when the regex has no exclusion components or never
    matches the dataset.  With ``cache`` a regex whose (already cached)
    match vector is empty is skipped without the instrumented re-match.
    """
    exclude_positions = [i for i, el in enumerate(regex.elements)
                         if isinstance(el, Exclude)]
    if not exclude_positions:
        return None
    if cache is not None and cache.vector(regex).n_matched == 0:
        return None
    variable_positions = [i for i, el in enumerate(regex.elements)
                          if el.variable]
    compiled, group_numbers = instrumented_pattern(regex)
    matched_texts: Dict[int, List[str]] = {i: [] for i in exclude_positions}
    matched_any = False
    for item in dataset.items:
        match = compiled.match(item.hostname)
        if match is None:
            continue
        matched_any = True
        for position, group in zip(variable_positions, group_numbers):
            if position in matched_texts:
                matched_texts[position].append(match.group(group))
    if not matched_any:
        return None
    new_elements: List[Element] = list(regex.elements)
    changed = False
    for position in exclude_positions:
        texts = matched_texts[position]
        if not texts:
            continue
        atoms = _atoms_for(texts)
        replacement = ClassSeq(atoms)
        if replacement.key() != new_elements[position].key():
            new_elements[position] = replacement
            changed = True
    if not changed:
        return None
    return regex.with_elements(new_elements)
