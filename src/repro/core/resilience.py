"""Fault tolerance for the parallel core: retries, classification, injection.

The parallel paths fan work out over :class:`ProcessPoolExecutor`
workers, and workers die: the paper's workload is 162M PTR records, and
at that scale an OOM-killed child or a wedged worker is a *when*, not an
*if*.  This module provides the policy vocabulary the dispatchers in
:mod:`repro.core.parallel` act on:

* :class:`RetryPolicy` -- how many attempts an item gets, the
  deterministic exponential backoff between them, the per-item timeout,
  and how many whole-pool losses to absorb before degrading to serial;
* **fault classification** -- exceptions matching ``policy.transient``
  are retried; anything else is *poison* and fails the item immediately
  as a :class:`PoisonItemError` (which the serving engine turns into a
  dead-letter entry instead of a crashed stream);
* :class:`FaultInjector` -- a deterministic, env-driven hook
  (``REPRO_FAULT_INJECT``) that raises, crashes, or hangs a worker at an
  exact (site, item index, attempt), so tests and CI exercise every
  failure path without real OOMs.

Nothing here imports the executor machinery; the dispatchers own the
pools, this module owns the decisions.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

#: Environment variable holding the fault-injection spec.
ENV_FAULT_INJECT = "REPRO_FAULT_INJECT"
#: Environment variable overriding how long ``hang`` faults sleep.
ENV_HANG_SECONDS = "REPRO_FAULT_HANG_SECONDS"

#: Injection modes: raise a transient fault, kill the worker process,
#: or sleep past the per-item timeout.
MODE_RAISE = "raise"
MODE_CRASH = "crash"
MODE_HANG = "hang"
_MODES = (MODE_RAISE, MODE_CRASH, MODE_HANG)

#: Exit status an injected ``crash`` dies with (visible in pool logs).
CRASH_EXIT_STATUS = 86


class TransientError(Exception):
    """Marker base class for faults worth retrying."""


class InjectedFault(TransientError):
    """A fault raised by the :class:`FaultInjector` (retryable)."""


class PoisonItemError(Exception):
    """An item failed permanently: poison fault, or retries exhausted.

    Carries enough context for dead-letter reporting: the item's input
    index, how many attempts it consumed, and the final underlying
    exception (``cause``).
    """

    def __init__(self, index: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            "item %d failed permanently after %d attempt(s): %s: %s"
            % (index, attempts, type(cause).__name__, cause))
        self.index = index
        self.attempts = attempts
        self.cause = cause


#: Exception types retried by default.  ``BrokenProcessPool`` and wait
#: timeouts are handled structurally by the dispatcher (they are pool
#: events, not exceptions raised by the work function).
DEFAULT_TRANSIENT: Tuple[type, ...] = (TransientError, OSError,
                                       TimeoutError)


@dataclass(frozen=True)
class RetryPolicy:
    """How the parallel core treats a failing work item.

    Attributes:
        max_attempts: total tries per item (1 means fail-fast).
        backoff_base: parent-side sleep before the second attempt.
        backoff_factor: multiplier per further attempt (deterministic
            exponential backoff -- no jitter, so runs are reproducible).
        backoff_max: backoff ceiling in seconds.
        timeout: per-item wall-clock budget enforced while the item
            heads the collection queue; ``None`` disables it.  A timed
            out item costs one attempt and the pool is rebuilt (a busy
            worker cannot be reclaimed).
        pool_rebuilds: whole-pool losses (``BrokenProcessPool``) to
            absorb by rebuilding before degrading to serial execution.
        transient: exception types that are retried; everything else is
            poison and fails the item on the spot.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    timeout: Optional[float] = None
    pool_rebuilds: int = 2
    transient: Tuple[type, ...] = DEFAULT_TRANSIENT

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1, got %d"
                             % self.max_attempts)
        if self.backoff_base < 0 or self.backoff_factor < 1 \
                or self.backoff_max < 0:
            raise ValueError("backoff must be non-negative and "
                             "non-shrinking")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive, got %r"
                             % (self.timeout,))
        if self.pool_rebuilds < 0:
            raise ValueError("pool_rebuilds must be >= 0, got %d"
                             % self.pool_rebuilds)

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based, got %d" % attempt)
        return min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))

    def is_transient(self, exc: BaseException) -> bool:
        """True when ``exc`` is worth another attempt."""
        return isinstance(exc, self.transient)

    @classmethod
    def from_flags(cls, retries: int, backoff: float = 0.05,
                   timeout: Optional[float] = None,
                   ) -> Optional["RetryPolicy"]:
        """Map ``--retries N --retry-backoff S`` CLI values to a policy.

        ``retries`` counts *extra* attempts after the first; ``0`` (the
        CLI default) returns ``None`` -- the historical fail-fast
        behaviour, with zero dispatch overhead.
        """
        if retries < 0:
            raise ValueError("retries must be >= 0, got %d" % retries)
        if retries == 0:
            return None
        return cls(max_attempts=retries + 1, backoff_base=backoff,
                   timeout=timeout)


@dataclass
class ResilienceStats:
    """What the dispatcher survived during one run (for tests/reports)."""

    retries: int = 0
    pool_losses: int = 0
    timeouts: int = 0
    poisoned: int = 0
    degraded: bool = False

    def as_dict(self) -> dict:
        return {"retries": self.retries, "pool_losses": self.pool_losses,
                "timeouts": self.timeouts, "poisoned": self.poisoned,
                "degraded": self.degraded}


# -- deterministic fault injection -------------------------------------------

@dataclass(frozen=True)
class FaultRule:
    """One injected fault: fire ``mode`` at (site, index, attempt).

    ``index``/``attempt`` of ``-1`` match every item / every attempt; a
    rule with a concrete attempt models a *transient* fault (fails that
    attempt, succeeds on retry), an any-attempt rule models *poison*
    (fails until retries exhaust).
    """

    site: str
    index: int
    mode: str
    attempt: int = -1


class FaultInjector:
    """Deterministic fault injection, driven by a compact spec string.

    Spec grammar (comma-separated rules)::

        site:index:mode[:attempt]

    where ``index`` and ``attempt`` are integers or ``*`` (any), and
    ``mode`` is ``raise`` | ``crash`` | ``hang``.  Examples::

        bulk-annotate:2:crash:0     # kill the worker on chunk 2, try 0
        bulk-annotate:1:raise       # chunk 1 is poison (fails every try)
        timeline:0:hang:0           # snapshot 0 hangs on its first try

    The spec usually arrives via :data:`ENV_FAULT_INJECT`, which worker
    processes inherit, so one environment variable drives injection on
    both sides of the pool.
    """

    def __init__(self, rules: Tuple[FaultRule, ...] = ()) -> None:
        self.rules = tuple(rules)

    def __bool__(self) -> bool:
        return bool(self.rules)

    @classmethod
    def parse(cls, spec: str) -> "FaultInjector":
        """Build an injector from a spec string ('' = inject nothing)."""
        rules = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            parts = token.split(":")
            if len(parts) not in (3, 4):
                raise ValueError("bad fault rule %r (want "
                                 "site:index:mode[:attempt])" % token)
            site, index_text, mode = parts[0], parts[1], parts[2]
            if mode not in _MODES:
                raise ValueError("bad fault mode %r (expected one of %s)"
                                 % (mode, ", ".join(_MODES)))
            attempt_text = parts[3] if len(parts) == 4 else "*"
            rules.append(FaultRule(
                site=site,
                index=-1 if index_text == "*" else int(index_text),
                mode=mode,
                attempt=-1 if attempt_text == "*" else int(attempt_text)))
        return cls(tuple(rules))

    def fire(self, site: str, index: int, attempt: int) -> None:
        """Trigger the first matching rule (no-op when none match)."""
        for rule in self.rules:
            if rule.site != site:
                continue
            if rule.index not in (-1, index):
                continue
            if rule.attempt not in (-1, attempt):
                continue
            self._trigger(rule, site, index, attempt)
            return

    @staticmethod
    def _trigger(rule: FaultRule, site: str, index: int,
                 attempt: int) -> None:
        if rule.mode == MODE_CRASH:
            # Die the way an OOM-killed worker dies: no cleanup, no
            # exception, the pool just loses the process.
            os._exit(CRASH_EXIT_STATUS)
        if rule.mode == MODE_HANG:
            time.sleep(float(os.environ.get(ENV_HANG_SECONDS, "60")))
            return  # a hang that outlives the timeout was already charged
        raise InjectedFault("injected fault at %s[%d] attempt %d"
                            % (site, index, attempt))


_EMPTY_INJECTOR = FaultInjector()
_injector_cache: Tuple[str, FaultInjector] = ("", _EMPTY_INJECTOR)


def injector_from_env() -> FaultInjector:
    """The injector :data:`ENV_FAULT_INJECT` describes (cached by spec)."""
    global _injector_cache
    spec = os.environ.get(ENV_FAULT_INJECT, "")
    if spec != _injector_cache[0]:
        _injector_cache = (spec, FaultInjector.parse(spec))
    return _injector_cache[1]


def maybe_inject(site: str, index: int, attempt: int) -> None:
    """Fire any env-configured fault for (site, index, attempt)."""
    if ENV_FAULT_INJECT not in os.environ:
        return
    injector_from_env().fire(site, index, attempt)


class ResilientCall:
    """Worker-side wrapper pairing fault injection with the real work.

    The dispatcher ships ``(index, attempt, item)`` tuples; the wrapper
    fires any injected fault for that coordinate, then runs ``func`` on
    the bare item.  Module-level and attribute-only, so the process
    backend can pickle it.
    """

    def __init__(self, func: Callable, site: str) -> None:
        self.func = func
        self.site = site

    def __call__(self, packed: Tuple[int, int, object]) -> object:
        index, attempt, item = packed
        maybe_inject(self.site, index, attempt)
        return self.func(item)


def call_with_retry(call: ResilientCall, index: int, item: object,
                    policy: RetryPolicy,
                    on_retry: Optional[Callable] = None,
                    stats: Optional[ResilienceStats] = None,
                    sleep: Callable[[float], None] = time.sleep,
                    attempts: int = 0) -> object:
    """Run one item inline under ``policy`` (the serial execution path).

    Transient faults are retried with deterministic backoff up to
    ``policy.max_attempts``; poison faults (or exhausted retries) raise
    :class:`PoisonItemError`.  Per-item timeouts are a pool feature and
    are not enforced inline.  ``attempts`` seeds the failure count for
    an item that already burned tries in a worker pool (the degraded
    serial path) -- the attempt number is also what keeps a
    :class:`FaultInjector` rule from re-firing forever.
    """
    while True:
        try:
            return call((index, attempts, item))
        except Exception as exc:
            attempts += 1
            if not policy.is_transient(exc) \
                    or attempts >= policy.max_attempts:
                # The caller decides whether poison is fatal or
                # substituted; stats.poisoned is counted there.
                raise PoisonItemError(index, attempts, exc) from exc
            if stats is not None:
                stats.retries += 1
            if on_retry is not None:
                on_retry(item, attempts, exc)
            sleep(policy.backoff(attempts))
