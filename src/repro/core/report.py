"""Human-readable reports of learned conventions.

The paper publishes its training data and inferred regexes on a website
showing how each regex applies to the training hostnames [20].  This
module renders the same view as text: per suffix, the convention, its
score, and every hostname annotated with its classification (TP/FP/FN
and the extraction).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.congruence import Outcome
from repro.core.evaluate import evaluate_nc
from repro.core.hoiho import HoihoResult
from repro.core.select import LearnedConvention
from repro.core.types import SuffixDataset

_MARKS = {
    Outcome.TP: "TP",
    Outcome.FP: "FP",
    Outcome.FN: "FN",
    Outcome.NONE: "--",
}


def render_convention(convention: LearnedConvention,
                      dataset: Optional[SuffixDataset] = None,
                      max_rows: Optional[int] = None) -> str:
    """One suffix's page: regexes, score, and per-hostname outcomes."""
    lines: List[str] = []
    lines.append("suffix: %s" % convention.suffix)
    lines.append("class:  %s" % convention.nc_class.value)
    score = convention.score
    lines.append("score:  TP=%d FP=%d FN=%d ATP=%d PPV=%.1f%% "
                 "distinct-ASNs=%d"
                 % (score.tp, score.fp, score.fn, score.atp,
                    100.0 * score.ppv, score.distinct))
    for index, pattern in enumerate(convention.patterns()):
        lines.append("regex %d: %s" % (index + 1, pattern))
    if dataset is not None:
        lines.append("")
        # The learner attaches per-item outcomes to the selected score
        # (via the match cache); reuse them when they cover this dataset.
        if len(score.outcomes) == len(dataset):
            detailed = score
        else:
            detailed = evaluate_nc(convention.regexes, dataset,
                                   keep_outcomes=True)
        rows = list(zip(detailed.outcomes, dataset.items))
        if max_rows is not None:
            rows = rows[:max_rows]
        width = max((len(item.hostname) for _, item in rows), default=10)
        for (outcome, extracted), item in rows:
            lines.append("  [%s] %-*s train AS%-8d extracted %s"
                         % (_MARKS[outcome], width, item.hostname,
                            item.train_asn,
                            extracted if extracted else "-"))
    return "\n".join(lines)


def render_result(result: HoihoResult,
                  datasets: Optional[dict] = None,
                  usable_only: bool = False) -> str:
    """All learned conventions, one page per suffix."""
    pages: List[str] = []
    for suffix in sorted(result.conventions):
        convention = result.conventions[suffix]
        if usable_only and not convention.usable:
            continue
        dataset = datasets.get(suffix) if datasets else None
        pages.append(render_convention(convention, dataset))
    header = ("# %d suffixes examined, %d conventions learned\n"
              % (result.suffixes_examined, len(result.conventions)))
    return header + "\n\n".join(pages)
