"""Structured regex representation for the learner.

The learner never manipulates pattern strings directly; it composes
*elements* -- literals, the ASN capture, punctuation-exclusion components,
character classes, ``.+`` and or-groups -- and renders them into the
anchored patterns the paper presents (e.g.
``^(?:p|s)?(\\d+)\\.[a-z\\d]+\\.equinix\\.com$``).  Element identity is
what phases 2 and 3 transform, so each element exposes a hashable
``key()``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple


_SPECIALS = set(".^$*+?()[]{}|\\")


@lru_cache(maxsize=65536)
def escape_literal(text: str) -> str:
    """Escape regex metacharacters, leaving '-' bare (as the paper does)."""
    return "".join("\\" + ch if ch in _SPECIALS else ch for ch in text)


def escape_class_char(ch: str) -> str:
    """Escape one character for use inside a character class."""
    if ch in "\\]^-":
        return "\\" + ch
    return ch


class Element:
    """Base class for regex elements."""

    #: True for elements that consume a variable amount of text.
    variable = False

    def render(self) -> str:
        """The element's regex source."""
        raise NotImplementedError

    def key(self) -> Tuple:
        """Hashable identity used for comparing/merging regexes."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Element) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.render())


@dataclass(frozen=True, eq=False)
class Lit(Element):
    """A literal string (an alphanumeric token or punctuation)."""

    text: str

    def render(self) -> str:
        return escape_literal(self.text)

    def key(self) -> Tuple:
        return ("lit", self.text)

    @property
    def is_punct(self) -> bool:
        """True when the literal is purely punctuation."""
        return bool(self.text) and all(not c.isalnum() for c in self.text)

    @property
    def is_simple(self) -> bool:
        """A 'simple string' in the paper's merging sense: alnum only."""
        return bool(self.text) and self.text.isalnum()


@dataclass(frozen=True, eq=False)
class Cap(Element):
    """The ASN capture, ``(\\d+)``."""

    def render(self) -> str:
        return "(\\d+)"

    def key(self) -> Tuple:
        return ("cap",)


@dataclass(frozen=True, eq=False)
class AlphaCap(Element):
    """An alphabetic capture ``([a-z]+)``, used by the AS-name learner
    (the paper's section-7 future direction)."""

    def render(self) -> str:
        return "([a-z]+)"

    def key(self) -> Tuple:
        return ("acap",)


@dataclass(frozen=True, eq=False)
class Exclude(Element):
    """A punctuation-exclusion component such as ``[^\\.]+``."""

    chars: FrozenSet[str]
    variable = True

    def render(self) -> str:
        body = "".join(escape_class_char(c) if c not in "."
                       else "\\." for c in sorted(self.chars))
        return "[^%s]+" % body

    def key(self) -> Tuple:
        return ("exclude", tuple(sorted(self.chars)))


@dataclass(frozen=True, eq=False)
class Any_(Element):
    """The match-anything component ``.+`` (at most one per regex)."""

    variable = True

    def render(self) -> str:
        return ".+"

    def key(self) -> Tuple:
        return ("any",)


#: Orderable atoms a character class may contain.
CLASS_ALPHA = "a-z"
CLASS_DIGIT = "\\d"


@dataclass(frozen=True, eq=False)
class ClassSeq(Element):
    """A character-class component such as ``[a-z\\d]+`` or ``\\d+``."""

    atoms: FrozenSet[str]
    variable = True

    def render(self) -> str:
        atoms = set(self.atoms)
        parts: List[str] = []
        if CLASS_ALPHA in atoms:
            parts.append(CLASS_ALPHA)
            atoms.discard(CLASS_ALPHA)
        if CLASS_DIGIT in atoms:
            parts.append(CLASS_DIGIT)
            atoms.discard(CLASS_DIGIT)
        extras = sorted(atoms - {"-"})
        parts.extend(escape_class_char(c) if c != "." else "\\."
                     for c in extras)
        if "-" in self.atoms:
            parts.append("-")
        if parts == [CLASS_DIGIT]:
            return "\\d+"
        return "[%s]+" % "".join(parts)

    def key(self) -> Tuple:
        return ("class", tuple(sorted(self.atoms)))


@dataclass(frozen=True, eq=False)
class Alt(Element):
    """An or-group over simple literals, e.g. ``(?:p|s)?``."""

    options: Tuple[str, ...]
    optional: bool = False

    def render(self) -> str:
        body = "|".join(escape_literal(o) for o in self.options)
        return "(?:%s)%s" % (body, "?" if self.optional else "")

    def key(self) -> Tuple:
        return ("alt", self.options, self.optional)


@lru_cache(maxsize=65536)
def _compile(pattern: str) -> "re.Pattern[str]":
    return re.compile(pattern)


class Regex:
    """An anchored regex assembled from elements.

    Equality and hashing follow the rendered pattern, so structurally
    different but textually identical candidates deduplicate.

    >>> r = Regex([Lit("as"), Cap(), Lit("."), Exclude(frozenset("."))],
    ...           suffix="example.com")
    >>> r.pattern
    '^as(\\\\d+)\\\\.[^\\\\.]+\\\\.example\\\\.com$'
    >>> r.extract("as64500.lon.example.com")
    ('64500', (2, 7))
    """

    __slots__ = ("elements", "suffix", "_pattern", "_hash")

    def __init__(self, elements: Sequence[Element], suffix: str) -> None:
        self.elements: Tuple[Element, ...] = tuple(elements)
        self.suffix = suffix
        body = "".join(el.render() for el in self.elements)
        tail = escape_literal("." + suffix) if suffix else ""
        self._pattern = "^" + body + tail + "$"
        self._hash = hash(self._pattern)

    @classmethod
    def raw(cls, pattern: str) -> "Regex":
        """Wrap a hand-written pattern (e.g. from the paper's figures).

        The result supports matching/extraction and scoring but not the
        structural transformations (it has no elements).  The pattern
        must contain exactly one capturing group over the ASN digits.
        """
        regex = cls.__new__(cls)
        regex.elements = ()
        regex.suffix = ""
        regex._pattern = pattern
        regex._hash = hash(pattern)
        return regex

    @property
    def pattern(self) -> str:
        """The rendered anchored pattern."""
        return self._pattern

    @property
    def compiled(self) -> "re.Pattern[str]":
        """Compiled form (process-wide cached)."""
        return _compile(self._pattern)

    def extract(self, hostname: str) -> Optional[Tuple[str, Tuple[int, int]]]:
        """Extract the ASN capture from ``hostname``.

        Returns (digits, span) or None when the regex does not match.
        """
        match = self.compiled.match(hostname)
        if match is None:
            return None
        return match.group(1), match.span(1)

    def with_elements(self, elements: Iterable[Element]) -> "Regex":
        """A copy of this regex with different elements."""
        return Regex(tuple(elements), self.suffix)

    def specificity_cost(self) -> int:
        """How loose the regex is; lower is more specific.

        Literal-only regexes cost 0; each character class costs 1, each
        punctuation-exclusion 2 and each ``.+`` 3.  Used to break ATP
        ties in favour of the most specific pattern, mirroring the
        paper's preference (phase 3 exists to raise specificity).
        """
        cost = 0
        for el in self.elements:
            if isinstance(el, Any_):
                cost += 3
            elif isinstance(el, Exclude):
                cost += 2
            elif isinstance(el, ClassSeq):
                cost += 1
        return cost

    def cap_index(self) -> int:
        """Index of the capture element (ValueError when absent)."""
        for i, el in enumerate(self.elements):
            if isinstance(el, Cap):
                return i
        raise ValueError("regex has no capture: %s" % self._pattern)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Regex) and self._pattern == other._pattern

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Regex(%s)" % self._pattern

    def __lt__(self, other: "Regex") -> bool:
        return self._pattern < other._pattern


def instrumented_pattern(regex: Regex) -> Tuple["re.Pattern[str]", List[int]]:
    """Compile ``regex`` with every variable element wrapped in a group.

    Returns the compiled pattern and, for each variable element (in
    element order), the 1-based group number capturing its text.  The ASN
    capture keeps group 1 semantics by being counted like any group.
    """
    parts: List[str] = ["^"]
    group_numbers: List[int] = []
    next_group = 1
    for el in regex.elements:
        if isinstance(el, Cap):
            parts.append(el.render())
            next_group += 1
        elif el.variable:
            parts.append("(" + el.render() + ")")
            group_numbers.append(next_group)
            next_group += 1
        elif isinstance(el, Alt):
            # Non-capturing group already; renders fine inside.
            parts.append(el.render())
        else:
            parts.append(el.render())
    if regex.suffix:
        parts.append(escape_literal("." + regex.suffix))
    parts.append("$")
    return _compile("".join(parts)), group_numbers
