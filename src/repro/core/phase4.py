"""Phase 4: build regex sets (section 3.5).

Hoiho ranks candidate regexes by ATP and, for each of the best seeds,
greedily grows a set: walking down the rank order, a regex joins the
working set when the combined ATP strictly improves.  Unlike the
alias-resolution Hoiho, there is no PPV gate on additions -- the goal is
coverage, so that discrepancies between training and embedded ASNs
surface (the training ASN might be the wrong one).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.evaluate import NCScore, evaluate_nc
from repro.core.regex_model import Regex
from repro.core.types import SuffixDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.matchcache import MatchCache


def rank_regexes(scored: Dict[Regex, NCScore]) -> List[Regex]:
    """Regexes ordered best-first.

    Rank by score (ATP, then TPs/FPs/FNs), breaking ties towards the
    most *specific* pattern -- phase 3 exists to raise specificity, so a
    specialised regex beats its looser ancestor at equal score.
    """
    return sorted(scored,
                  key=lambda r: scored[r].rank_key()
                  + (r.specificity_cost(), r.pattern))


def build_regex_sets(scored: Dict[Regex, NCScore],
                     dataset: SuffixDataset,
                     pool_size: int = 25,
                     n_seeds: int = 6,
                     cache: "Optional[MatchCache]" = None,
                     ) -> List[Tuple[Tuple[Regex, ...], NCScore]]:
    """Candidate naming conventions (regex sets) with their scores.

    ``pool_size`` caps how far down the ranking additions are considered;
    ``n_seeds`` caps how many distinct starting regexes grow a set.  The
    result always includes the single-regex conventions for the pool, so
    selection (section 3.6) can prefer fewer regexes.

    With ``cache`` each candidate superset is scored by extending a
    :class:`~repro.core.matchcache.ComposedNC` -- O(items) per candidate
    from already-built match vectors -- instead of re-running every
    regex in the set against every hostname.
    """
    ranked = rank_regexes(scored)[:pool_size]
    conventions: Dict[Tuple[Regex, ...], NCScore] = {}

    for regex in ranked:
        conventions[(regex,)] = scored[regex]

    for seed_index in range(min(n_seeds, len(ranked))):
        seed = ranked[seed_index]
        working: List[Regex] = [seed]
        current = scored[seed]
        if cache is not None:
            from repro.core.matchcache import ComposedNC
            composed = ComposedNC.of(cache, (seed,))
            for regex in ranked[seed_index + 1:]:
                candidate = composed.extend(regex)
                if candidate.score.atp > current.atp:
                    working.append(regex)
                    composed = candidate
                    current = candidate.score
        else:
            for regex in ranked[seed_index + 1:]:
                candidate_score = evaluate_nc(
                    tuple(working) + (regex,), dataset)
                if candidate_score.atp > current.atp:
                    working.append(regex)
                    current = candidate_score
        key = tuple(working)
        if key not in conventions:
            conventions[key] = current

    ordered = sorted(
        conventions.items(),
        key=lambda kv: (kv[1].rank_key(), len(kv[0]),
                        sum(r.specificity_cost() for r in kv[0]),
                        tuple(r.pattern for r in kv[0])))
    return ordered
