"""Phase 2: merge regexes that differ by a single simple string (§3.3).

Regexes sharing every element except one alphanumeric literal merge into
one regex with an or-group over the differing literals; a regex matching
the shared skeleton with *no* literal in that slot makes the group
optional (``(?:p|s)?``).  This phase is what turns the three top regexes
of figure 4 into ``^(?:p|s)?(\\d+)\\.[^\\.]+\\.equinix\\.com$``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.regex_model import Alt, Cap, Element, Lit, Regex

_MAX_OPTIONS = 6
_MAX_OPTION_LEN = 8


def _signature(elements: Sequence[Element], start: int,
               end: int) -> Tuple:
    """Hashable identity of a regex with elements[start:end] removed."""
    return (tuple(el.key() for el in elements[:start]),
            tuple(el.key() for el in elements[end:]))


def merge_regexes(pool: Sequence[Regex]) -> List[Regex]:
    """Return new regexes created by merging members of ``pool``.

    Only simple (alphanumeric) literals merge; punctuation and the suffix
    are structure, not content.  Produced regexes are deduplicated against
    the input pool.
    """
    if not pool:
        return []
    suffix = pool[0].suffix
    # signature -> {option text -> skeleton (prefix, suffix) elements}
    groups: Dict[Tuple, Dict[str, Tuple[Tuple[Element, ...],
                                        Tuple[Element, ...]]]] = \
        defaultdict(dict)

    for regex in pool:
        elements = regex.elements
        for index, element in enumerate(elements):
            if isinstance(element, Lit) and element.is_simple \
                    and len(element.text) <= _MAX_OPTION_LEN:
                sig = _signature(elements, index, index + 1)
                groups[sig].setdefault(
                    element.text,
                    (elements[:index], elements[index + 1:]))
        # The same regex can supply the *empty* option at every split
        # position: a skeleton with nothing where others have a literal.
        for position in range(len(elements) + 1):
            sig = _signature(elements, position, position)
            groups[sig].setdefault(
                "", (elements[:position], elements[position:]))

    existing: Set[str] = {regex.pattern for regex in pool}
    merged: List[Regex] = []
    for options_map in groups.values():
        options = sorted(options_map)
        non_empty = [o for o in options if o]
        if len(non_empty) < 2 or len(non_empty) > _MAX_OPTIONS:
            continue
        optional = "" in options
        prefix, tail = options_map[non_empty[0]]
        alt = Alt(tuple(non_empty), optional=optional)
        candidate = Regex(tuple(prefix) + (alt,) + tuple(tail), suffix)
        if candidate.pattern not in existing:
            existing.add(candidate.pattern)
            merged.append(candidate)
    merged.sort(key=lambda r: r.pattern)
    return merged
