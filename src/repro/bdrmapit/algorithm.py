"""The bdrmapIT-style annotation loop.

Reasoning per node, in order:

1. **Subsequent-interface votes.**  Each *distinct* subsequent interface
   casts one vote with its BGP origin.  Two kinds of subsequent
   interfaces are excluded: the node's own *link mates* (an address in
   the same /30 as one of the node's addresses is the far end of the
   node's own link -- its origin merely repeats who supplied that link),
   and IXP-LAN addresses (they identify the far member, not this node).
   The winning vote is accepted when it is one of the node's origins, or
   a customer, peer or sibling of one -- the far-side-of-a-supplied-link
   pattern of figure 1.

2. **Relationship election.**  With no usable votes and several origins,
   prefer the origin of which every other origin is a provider or peer:
   a multi-homed customer's border router carries each provider's
   supplied address plus its own, and this rule picks the customer.

3. **Destination heuristic** (bdrmap's edge rule).  For nodes that are
   predominantly the last responsive hop, if most terminating traces
   were destined into a customer (or sibling) of the election result,
   annotate with the destination AS: the node is that customer's border
   answering with a provider-supplied address.

4. **Election.**  Majority origin of the node's own interfaces,
   breaking ties towards the smaller ASN (RouterToAsAssignment's core).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.asn.bgp import IXP_ASN, UNKNOWN_ASN
from repro.asn.org import ASOrgMap
from repro.asn.relationships import ASRelationships, Relationship
from repro.bdrmapit.graph import NodeState, RouterGraph
from repro.obs.trace import NULL_TRACER


@dataclass
class AnnotationConfig:
    """Heuristic switches (the ablation benchmarks flip these)."""

    use_votes: bool = True
    use_mate_rule: bool = True
    use_relationship_election: bool = True
    use_dest_heuristic: bool = True
    last_hop_share: float = 0.5   # gate for the destination heuristic


def _election(state: NodeState) -> Optional[int]:
    """Majority origin of the node's own interfaces."""
    votes = Counter({asn: count for asn, count in state.origins.items()
                     if asn not in (IXP_ASN, UNKNOWN_ASN)})
    if not votes:
        return None
    top = max(votes.values())
    return min(asn for asn, count in votes.items() if count == top)


def annotate(graph: RouterGraph,
             relationships: ASRelationships,
             orgs: Optional[ASOrgMap] = None,
             config: Optional[AnnotationConfig] = None,
             tracer=NULL_TRACER) -> Dict[str, int]:
    """Infer an operating AS for every node in the graph.

    ``tracer`` wraps the whole call in a ``bdrmapit.annotate`` span
    with a ``bdrmapit.round`` child per pass over the graph.  This
    reproduction's heuristics converge in a single pass (votes need no
    prior annotations), so there is exactly one round -- the span
    structure exists so the trace shape survives if iterative
    refinement is ever added.
    """
    config = config or AnnotationConfig()
    annotations: Dict[str, int] = {}
    with tracer.span("bdrmapit.annotate") as span:
        nodes = list(graph.nodes())
        with tracer.span("bdrmapit.round", round=1) as round_span:
            for node_id in nodes:
                decision = _annotate_node(graph.state(node_id), graph,
                                          relationships, orgs, config)
                if decision is not None:
                    annotations[node_id] = decision
            round_span.set(nodes=len(nodes), annotated=len(annotations))
        span.set(nodes=len(nodes), annotated=len(annotations), rounds=1)
    return annotations


def _vote_counter(state: NodeState, graph: RouterGraph,
                  config: AnnotationConfig) -> Counter:
    """One vote per distinct, informative subsequent interface."""
    votes: Counter = Counter()
    route_table = graph.route_table
    for address in state.subsequent_ifaces:
        if config.use_mate_rule and address in state.mates:
            continue
        origin = route_table.origin(address)
        if origin in (UNKNOWN_ASN, IXP_ASN):
            continue
        votes[origin] += 1
    return votes


def _origin_set(state: NodeState) -> Set[int]:
    return {asn for asn in state.origins
            if asn not in (IXP_ASN, UNKNOWN_ASN)}


def _related(origin: int, candidate: int,
             relationships: ASRelationships,
             orgs: Optional[ASOrgMap]) -> bool:
    """Is ``candidate`` plausibly the far side of a link from origin?"""
    rel = relationships.relationship(origin, candidate)
    if rel in (Relationship.CUSTOMER, Relationship.PEER):
        return True
    return orgs is not None and orgs.are_siblings(origin, candidate)


def _annotate_node(state: NodeState, graph: RouterGraph,
                   relationships: ASRelationships,
                   orgs: Optional[ASOrgMap],
                   config: AnnotationConfig) -> Optional[int]:
    origins = _origin_set(state)
    election = _election(state)

    # 1. Subsequent-interface votes.
    if config.use_votes:
        votes = _vote_counter(state, graph, config)
        if votes:
            candidate = _pick_candidate(votes, origins, relationships)
            if candidate in origins:
                return candidate
            if any(_related(origin, candidate, relationships, orgs)
                   for origin in origins):
                return candidate
            # Otherwise the votes are unrelated to anything the node
            # carries; fall through to structural reasoning.

    # 2. Relationship election among multiple origins.
    if config.use_relationship_election and len(origins) > 1:
        chosen = _relationship_election(origins, relationships, orgs)
        if chosen is not None:
            return chosen

    # 3. Destination heuristic for predominantly-last-hop nodes.
    if election is None:
        return None
    if config.use_dest_heuristic and state.last_hop_dests:
        traversals = sum(state.dests.values())
        terminal = sum(state.last_hop_dests.values())
        if traversals and terminal / traversals >= config.last_hop_share:
            top = max(state.last_hop_dests.values())
            dest = min(asn for asn, count in state.last_hop_dests.items()
                       if count == top and asn > 0)
            if dest != election:
                rel = relationships.relationship(election, dest)
                if rel is Relationship.CUSTOMER:
                    return dest
                if orgs is not None and orgs.are_siblings(election, dest):
                    return dest

    # 4. Election.
    return election


def _relationship_election(origins: Set[int],
                           relationships: ASRelationships,
                           orgs: Optional[ASOrgMap]) -> Optional[int]:
    """The origin every other origin supplies (provider/peer of it)."""
    candidates: List[int] = []
    for candidate in sorted(origins):
        others = origins - {candidate}
        if not others:
            continue
        ok = True
        for other in others:
            rel = relationships.relationship(candidate, other)
            if rel in (Relationship.PROVIDER, Relationship.PEER):
                continue
            if orgs is not None and orgs.are_siblings(candidate, other):
                continue
            ok = False
            break
        if ok:
            candidates.append(candidate)
    if not candidates:
        return None
    if len(candidates) == 1:
        return candidates[0]
    # Several qualify (e.g. mutual peers): the structurally smaller
    # network is the likelier customer-side operator.
    return min(candidates,
               key=lambda asn: (relationships.transit_degree(asn),
                                relationships.degree(asn), asn))


def _pick_candidate(votes: Counter, origins: Set[int],
                    relationships: ASRelationships) -> int:
    """Top-voted AS with deterministic, relationship-aware tie-breaks."""
    top = max(votes.values())
    leaders = sorted(asn for asn, count in votes.items() if count == top)
    if len(leaders) == 1:
        return leaders[0]
    customers = [asn for asn in leaders
                 if any(relationships.relationship(origin, asn)
                        is Relationship.CUSTOMER for origin in origins)]
    if customers:
        return customers[0]
    in_origins = [asn for asn in leaders if asn in origins]
    if in_origins:
        return in_origins[0]
    return min(leaders, key=lambda asn: (relationships.degree(asn), asn))
