"""Agreement and accuracy metrics for annotations (section 5 numbers).

Two views matter:

* **agreement** between inferred and extracted ASNs over the nodes with
  ASN-bearing hostnames -- the paper's 87.4% -> 97.1%;
* **accuracy** against ground truth (the synthetic world's real router
  owners), expressed as an error rate -- the paper's 1/7.9 -> 1/34.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.alias.midar import AliasResolution
from repro.asn.org import ASOrgMap
from repro.bdrmapit.hints import ExtractionHint


@dataclass
class AgreementMetrics:
    """Inferred-vs-extracted agreement over ASN-labelled nodes."""

    agree: int = 0
    disagree: int = 0

    @property
    def total(self) -> int:
        return self.agree + self.disagree

    @property
    def rate(self) -> float:
        """Fraction of labelled nodes whose inference matches."""
        return self.agree / self.total if self.total else 0.0

    @property
    def error_ratio(self) -> Optional[float]:
        """Denominator of the paper's '1/x' error rate (None when 0)."""
        if self.disagree == 0:
            return None
        return self.total / self.disagree

    def describe(self) -> str:
        ratio = self.error_ratio
        return "%.1f%% agreement, error rate 1/%s" % (
            100.0 * self.rate,
            "inf" if ratio is None else "%.1f" % ratio)


def agreement_metrics(annotations: Mapping[str, int],
                      hints: Iterable[ExtractionHint],
                      orgs: Optional[ASOrgMap] = None) -> AgreementMetrics:
    """Agreement between annotations and extractions, per node.

    Nodes with several hints agree when *any* hint matches (operators
    sometimes label one interface of a router more accurately than
    another; the paper compares per router).
    """
    per_node: Dict[str, bool] = {}
    seen: Dict[str, bool] = {}
    for hint in hints:
        annotation = annotations.get(hint.node_id)
        if annotation is None:
            continue
        match = annotation == hint.extracted_asn or (
            orgs is not None
            and orgs.are_siblings(annotation, hint.extracted_asn))
        per_node[hint.node_id] = per_node.get(hint.node_id, False) or match
    metrics = AgreementMetrics()
    for matched in per_node.values():
        if matched:
            metrics.agree += 1
        else:
            metrics.disagree += 1
    return metrics


@dataclass
class AccuracyMetrics:
    """Annotation accuracy against ground truth."""

    correct: int = 0
    wrong: int = 0
    unknown: int = 0

    @property
    def total(self) -> int:
        return self.correct + self.wrong

    @property
    def rate(self) -> float:
        return self.correct / self.total if self.total else 0.0

    @property
    def error_ratio(self) -> Optional[float]:
        if self.wrong == 0:
            return None
        return self.total / self.wrong


def accuracy_against_truth(annotations: Mapping[str, int],
                           resolution: AliasResolution,
                           orgs: Optional[ASOrgMap] = None,
                           nodes: Optional[Iterable[str]] = None,
                           ) -> AccuracyMetrics:
    """Compare annotations to the synthetic world's true owners.

    ``nodes`` restricts the comparison (e.g. to ASN-labelled routers);
    default is every annotated node.
    """
    metrics = AccuracyMetrics()
    node_ids = list(nodes) if nodes is not None else list(annotations)
    for node_id in node_ids:
        annotation = annotations.get(node_id)
        node = resolution.nodes.get(node_id)
        if annotation is None or node is None:
            continue
        truth = node.true_asn
        if truth is None:
            metrics.unknown += 1
            continue
        match = annotation == truth or (
            orgs is not None and orgs.are_siblings(annotation, truth))
        if match:
            metrics.correct += 1
        else:
            metrics.wrong += 1
    return metrics
