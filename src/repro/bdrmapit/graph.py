"""Topological state bdrmapIT reasons over.

For every inferred node the graph records:

* **origins** -- BGP origin ASes of the node's observed interfaces;
* **subsequent interfaces** -- the distinct interface addresses observed
  immediately after the node in traces, each contributing one vote; the
  paper calls the derived AS multiset the node's *subsequent ASNs*;
* **destination ASNs** -- origin ASes of the traces' destinations,
  tracked separately for traces where the node was the last responsive
  hop (the signal bdrmap's edge heuristics use);
* the **link-mate** relation: a subsequent interface in the same /30 as
  one of the node's own addresses is the far end of the node's own
  point-to-point link, so its origin says who supplied the link, not who
  operates the node.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.alias.midar import AliasResolution
from repro.asn.bgp import IXP_ASN, RouteTable, UNKNOWN_ASN
from repro.traceroute.probe import Trace


@dataclass
class NodeState:
    """Per-node topological annotations."""

    node_id: str
    origins: Counter = field(default_factory=Counter)
    # subsequent interface address -> count of traces using it
    subsequent_ifaces: Counter = field(default_factory=Counter)
    # subsequent addresses that are the far end of this node's own link
    mates: Set[int] = field(default_factory=set)
    # destination ASN votes from traces that *ended* at this node
    last_hop_dests: Counter = field(default_factory=Counter)
    # destination ASNs of every trace traversing the node
    dests: Counter = field(default_factory=Counter)

    def subsequent_asns(self, route_table: RouteTable,
                        include_mates: bool = True) -> Set[int]:
        """The node's subsequent ASN set (section 5 semantics)."""
        out: Set[int] = set()
        for address in self.subsequent_ifaces:
            if not include_mates and address in self.mates:
                continue
            origin = route_table.origin(address)
            if origin not in (IXP_ASN, UNKNOWN_ASN):
                out.add(origin)
        return out

    def dest_asns(self) -> Set[int]:
        """The node's destination ASN set (section 5 semantics)."""
        return {asn for asn in self.dests if asn > 0}


@dataclass
class RouterGraph:
    """All node states plus shared lookup tables."""

    states: Dict[str, NodeState]
    resolution: AliasResolution
    route_table: RouteTable
    # node -> addresses of subsequent IXP-LAN interfaces (resolved via the
    # owning node's annotation during iteration)
    ixp_subsequent: Dict[str, Counter] = field(default_factory=dict)

    def state(self, node_id: str) -> NodeState:
        """State for ``node_id`` (KeyError when never observed)."""
        return self.states[node_id]

    def nodes(self) -> List[str]:
        """All node ids, sorted."""
        return sorted(self.states)


def build_router_graph(resolution: AliasResolution,
                       traces: Iterable[Trace],
                       route_table: RouteTable) -> RouterGraph:
    """Accumulate per-node state from a trace collection."""
    states: Dict[str, NodeState] = {}
    ixp_subsequent: Dict[str, Counter] = defaultdict(Counter)

    def state_for(node_id: str) -> NodeState:
        state = states.get(node_id)
        if state is None:
            state = NodeState(node_id=node_id)
            states[node_id] = state
        return state

    # Interface origins per node.
    for node_id, node in resolution.nodes.items():
        state = state_for(node_id)
        for address in node.addresses:
            state.origins[route_table.origin(address)] += 1

    for trace in traces:
        hops = trace.responsive_hops()
        if not hops:
            continue
        node_path: List[Tuple[str, int]] = []
        for address in hops:
            node_id = resolution.node_of_address.get(address)
            if node_id is None:
                continue
            if node_path and node_path[-1][0] == node_id:
                continue
            node_path.append((node_id, address))

        dest_origin = trace.dst_asn
        for position, (node_id, _) in enumerate(node_path):
            state = state_for(node_id)
            state.dests[dest_origin] += 1
            if position + 1 < len(node_path):
                next_address = node_path[position + 1][1]
                state.subsequent_ifaces[next_address] += 1
                if route_table.is_ixp(next_address):
                    ixp_subsequent[node_id][next_address] += 1
        if node_path:
            last_id, _ = node_path[-1]
            state_for(last_id).last_hop_dests[dest_origin] += 1

    # Mark link mates: a subsequent address in the same /30 as one of the
    # node's own addresses.
    for node_id, state in states.items():
        own = resolution.nodes.get(node_id)
        if own is None:
            continue
        own_slash30 = {address >> 2 for address in own.addresses}
        for address in state.subsequent_ifaces:
            if (address >> 2) in own_slash30:
                state.mates.add(address)

    return RouterGraph(states=states, resolution=resolution,
                       route_table=route_table,
                       ixp_subsequent=dict(ixp_subsequent))
