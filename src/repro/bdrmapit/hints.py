"""The paper's section-5 modification: using extracted ASNs in bdrmapIT.

Learned conventions extract an ASN from each hostname.  When the
extraction disagrees with bdrmapIT's initial inference, either the
hostname is stale (or a typo) or the inference was wrong.  The modified
bdrmapIT accepts the extracted ASN as *reasonable* -- and re-annotates
the node with it -- iff the extracted ASN matches, or is a sibling of, an
ASN in the node's subsequent or destination ASN sets, or is a provider
of one of those ASNs.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.asn.org import ASOrgMap
from repro.asn.relationships import ASRelationships
from repro.bdrmapit.graph import RouterGraph
from repro.core.select import LearnedConvention, NCClass
from repro.itdk.snapshot import ITDKSnapshot
from repro.psl import PublicSuffixList, default_psl


@dataclass(frozen=True)
class ExtractionHint:
    """One hostname's extracted ASN, attached to a node."""

    node_id: str
    address: int
    hostname: str
    suffix: str
    extracted_asn: int
    nc_class: NCClass


@dataclass
class HintDecision:
    """What the modified bdrmapIT did with one hint."""

    hint: ExtractionHint
    initial_asn: Optional[int]
    congruent: bool        # extraction agreed with the initial inference
    used: bool             # node re-annotated with the extracted ASN
    final_asn: Optional[int] = None


@dataclass
class HintsOutcome:
    """Aggregate result of applying hints to an annotation."""

    annotations: Dict[str, int]
    decisions: List[HintDecision] = field(default_factory=list)

    def incongruent(self) -> List[HintDecision]:
        """Decisions where extraction differed from the initial ASN."""
        return [d for d in self.decisions if not d.congruent]

    def used_rate_by_class(self) -> Dict[str, Tuple[int, int]]:
        """{class: (used, total)} over incongruent hints."""
        out: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
        for decision in self.incongruent():
            bucket = out[decision.hint.nc_class.value]
            bucket[1] += 1
            if decision.used:
                bucket[0] += 1
        return {key: (used, total) for key, (used, total) in out.items()}


def hints_from_conventions(snapshot: ITDKSnapshot,
                           conventions: Mapping[str, LearnedConvention],
                           psl: Optional[PublicSuffixList] = None,
                           ) -> List[ExtractionHint]:
    """Extract ASNs from every named interface covered by a convention."""
    psl = psl or default_psl()
    hints: List[ExtractionHint] = []
    for address, hostname in snapshot.named_addresses():
        node_id = snapshot.resolution.node_of_address.get(address)
        if node_id is None:
            continue
        suffix = psl.registered_domain(hostname)
        if suffix is None:
            continue
        convention = conventions.get(suffix)
        if convention is None:
            continue
        extracted = convention.extract(hostname)
        if extracted is None:
            continue
        hints.append(ExtractionHint(
            node_id=node_id, address=address, hostname=hostname,
            suffix=suffix, extracted_asn=extracted,
            nc_class=convention.nc_class))
    return hints


def _reasonable(extracted: int, constraint_asns: Set[int],
                relationships: ASRelationships,
                orgs: Optional[ASOrgMap]) -> bool:
    """The section-5 reasonableness test."""
    if extracted in constraint_asns:
        return True
    if orgs is not None:
        for asn in constraint_asns:
            if orgs.are_siblings(extracted, asn):
                return True
    for customer in relationships.customers(extracted):
        if customer in constraint_asns:
            return True
    return False


_CLASS_PRIORITY = {NCClass.GOOD: 0, NCClass.PROMISING: 1, NCClass.POOR: 2}


def apply_hints(graph: RouterGraph, annotations: Mapping[str, int],
                hints: Iterable[ExtractionHint],
                relationships: ASRelationships,
                orgs: Optional[ASOrgMap] = None) -> HintsOutcome:
    """Re-annotate nodes whose extracted ASNs pass the topology test.

    When several hostnames on one node extract different ASNs, the
    majority wins, with good conventions outranking promising and poor
    ones -- mirroring how the paper weighs convention quality.
    """
    by_node: Dict[str, List[ExtractionHint]] = defaultdict(list)
    for hint in hints:
        by_node[hint.node_id].append(hint)

    outcome = HintsOutcome(annotations=dict(annotations))
    for node_id in sorted(by_node):
        node_hints = by_node[node_id]
        initial = annotations.get(node_id)
        state = graph.states.get(node_id)
        chosen = _choose_extraction(node_hints)
        constraint: Set[int] = set()
        if state is not None:
            constraint = (state.subsequent_asns(graph.route_table)
                          | state.dest_asns())
        def agrees(asn: int) -> bool:
            if initial is None:
                return False
            return asn == initial or (orgs is not None
                                      and orgs.are_siblings(asn, initial))

        used = False
        if not agrees(chosen) and _reasonable(chosen, constraint,
                                              relationships, orgs):
            outcome.annotations[node_id] = chosen
            used = True
        final = outcome.annotations.get(node_id)
        for hint in node_hints:
            outcome.decisions.append(HintDecision(
                hint=hint, initial_asn=initial,
                congruent=agrees(hint.extracted_asn),
                used=used and hint.extracted_asn == chosen,
                final_asn=final))
    return outcome


def _choose_extraction(node_hints: List[ExtractionHint]) -> int:
    """Majority extracted ASN, better convention classes first."""
    votes: Counter = Counter()
    for hint in node_hints:
        weight = 100 - _CLASS_PRIORITY[hint.nc_class]
        votes[hint.extracted_asn] += weight
    top = max(votes.values())
    return min(asn for asn, count in votes.items() if count == top)
