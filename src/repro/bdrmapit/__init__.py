"""bdrmapIT-style router ownership inference, plus the paper's extension.

* :mod:`repro.bdrmapit.graph` builds per-node topological state from
  traceroutes: interface origins, *subsequent* ASN sets (origins of the
  next interfaces observed after the node) and *destination* ASN sets;
* :mod:`repro.bdrmapit.algorithm` runs the iterative annotation loop
  (election plus relationship heuristics, with the /30 link-mate rule and
  IXP resolution);
* :mod:`repro.bdrmapit.hints` implements the paper's section-5
  modification: evaluating ASNs extracted from hostnames against the
  node's topological constraints to decide whether a hostname is stale
  or the initial inference was wrong;
* :mod:`repro.bdrmapit.metrics` computes the agreement/error-rate
  numbers the paper reports.
"""

from repro.bdrmapit.graph import NodeState, RouterGraph, build_router_graph
from repro.bdrmapit.algorithm import AnnotationConfig, annotate
from repro.bdrmapit.hints import (
    ExtractionHint,
    HintDecision,
    HintsOutcome,
    apply_hints,
    hints_from_conventions,
)
from repro.bdrmapit.metrics import agreement_metrics, accuracy_against_truth

__all__ = [
    "NodeState",
    "RouterGraph",
    "build_router_graph",
    "AnnotationConfig",
    "annotate",
    "ExtractionHint",
    "HintDecision",
    "HintsOutcome",
    "apply_hints",
    "hints_from_conventions",
    "agreement_metrics",
    "accuracy_against_truth",
]
