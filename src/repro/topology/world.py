"""The assembled synthetic Internet.

:func:`generate_world` is a pure function of a seed and a
:class:`WorldConfig`; it chains AS-graph generation, address planning, and
router-level construction.  Hostnames are *not* assigned here -- the
naming layer (:mod:`repro.naming`) decorates a world afterwards, so one
structural world can be re-labelled under different conventions (the
timeline experiments rely on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.topology.addressing import AddressPlan, build_address_plan
from repro.topology.asgraph import (
    ASGraph,
    ASGraphConfig,
    ASNode,
    Tier,
    generate_asgraph,
)
from repro.topology.routers import (
    Interface,
    Router,
    RouterLevelTopology,
    build_router_topology,
)


@dataclass
class WorldConfig:
    """Top-level knobs for world generation."""

    asgraph: ASGraphConfig = field(default_factory=ASGraphConfig)

    @classmethod
    def tiny(cls) -> "WorldConfig":
        """A few dozen ASes; for unit tests."""
        return cls(asgraph=ASGraphConfig(
            n_clique=3, n_transit=6, n_access=10, n_stub=16, n_content=3,
            n_ixps=2))

    @classmethod
    def small(cls) -> "WorldConfig":
        """A couple hundred ASes; for integration tests and quick runs."""
        return cls(asgraph=ASGraphConfig(
            n_clique=4, n_transit=18, n_access=50, n_stub=80, n_content=8,
            n_ixps=8))

    @classmethod
    def default(cls) -> "WorldConfig":
        """The benchmark-scale world."""
        return cls()


@dataclass
class World:
    """Everything the measurement pipeline observes, plus ground truth."""

    seed: int
    graph: ASGraph
    plan: AddressPlan
    topology: RouterLevelTopology

    # -- convenience accessors -------------------------------------------

    def node(self, asn: int) -> ASNode:
        """AS metadata for ``asn``."""
        return self.graph.node(asn)

    def routers(self) -> List[Router]:
        """Every router."""
        return self.topology.routers

    def interfaces(self) -> List[Interface]:
        """Every interface."""
        return self.topology.router_interfaces()

    def true_owner(self, address: int) -> Optional[int]:
        """Ground truth: ASN operating the router holding ``address``."""
        iface = self.topology.interfaces_by_address.get(address)
        return iface.router.asn if iface is not None else None

    def origin(self, address: int) -> int:
        """BGP origin of ``address`` (who routes it, not who operates it)."""
        return self.plan.route_table.origin(address)

    def stats(self) -> Dict[str, int]:
        """Size summary, for logging and sanity tests."""
        topo = self.topology
        return {
            "ases": len(self.graph.nodes),
            "ixps": len(self.graph.ixps),
            "routers": len(topo.routers),
            "interfaces": len(topo.interfaces_by_address),
            "links": len(topo.links),
            "interdomain_links": sum(len(v) for v in
                                     topo.interdomain_links.values()),
            "prefixes": len(self.plan.route_table),
        }


def generate_world(seed: int,
                   config: Optional[WorldConfig] = None) -> World:
    """Generate the full structural world for ``seed``."""
    config = config or WorldConfig.default()
    graph = generate_asgraph(seed, config.asgraph)
    plan = build_address_plan(graph)
    topology = build_router_topology(graph, plan, seed)
    return World(seed=seed, graph=graph, plan=plan, topology=topology)
