"""Geography for the synthetic Internet: city coordinates and delays.

The location codes used in router names map to real metro coordinates,
and link delays follow great-circle distance at the speed of light in
fiber.  This is the substrate the DRoP-style geolocation learner
(:mod:`repro.core.geohint`) validates hostname location hints against:
an RTT sample bounds how far a router can be from the vantage point.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

#: Approximate (latitude, longitude) per location code used in names.
COORDS: Dict[str, Tuple[float, float]] = {
    "nyc": (40.71, -74.01), "lax": (34.05, -118.24),
    "chi": (41.88, -87.63), "dfw": (32.90, -97.04),
    "sea": (47.61, -122.33), "mia": (25.77, -80.19),
    "iad": (38.95, -77.45), "sjc": (37.36, -121.93),
    "atl": (33.64, -84.43), "den": (39.74, -104.99),
    "lon": (51.51, -0.13), "fra": (50.11, 8.68),
    "ams": (52.37, 4.90), "par": (48.86, 2.35),
    "zrh": (47.38, 8.54), "vie": (48.21, 16.37),
    "mil": (45.46, 9.19), "mad": (40.42, -3.70),
    "waw": (52.23, 21.01), "sto": (59.33, 18.07),
    "osl": (59.91, 10.75), "hel": (60.17, 24.94),
    "cph": (55.68, 12.57), "prg": (50.08, 14.44),
    "gru": (-23.55, -46.64), "mex": (19.43, -99.13),
    "yyz": (43.65, -79.38), "syd": (-33.87, 151.21),
    "tyo": (35.68, 139.69), "sel": (37.57, 126.98),
    "bom": (19.08, 72.88), "jnb": (-26.20, 28.05),
    "eze": (-34.60, -58.38), "scl": (-33.45, -70.67),
    "mvd": (-34.90, -56.16), "bru": (50.85, 4.35),
    "dub": (53.35, -6.26), "akl": (-36.85, 174.76),
    "mel": (-37.81, 144.96), "hkg": (22.32, 114.17),
    "sin": (1.35, 103.82), "muc": (48.14, 11.58),
    "dus": (51.22, 6.77), "ber": (52.52, 13.40),
    "ham": (53.55, 9.99), "man": (53.48, -2.24),
    "bos": (42.36, -71.06), "phl": (39.95, -75.17),
    "slc": (40.76, -111.89), "phx": (33.45, -112.07),
}

_EARTH_RADIUS_KM = 6371.0

#: Light in fiber travels roughly 200 km per millisecond; real paths
#: are not great circles, so effective speed is lower.
_FIBER_KM_PER_MS = 200.0
_PATH_STRETCH = 1.3


def distance_km(a: str, b: str) -> Optional[float]:
    """Great-circle distance between two location codes, in km.

    Returns ``None`` when either code is unknown.
    """
    if a not in COORDS or b not in COORDS:
        return None
    (lat1, lon1), (lat2, lon2) = COORDS[a], COORDS[b]
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    h = (math.sin(dphi / 2.0) ** 2
         + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2)
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def propagation_ms(a: str, b: str) -> float:
    """One-way propagation delay between two location codes (ms).

    Unknown codes contribute zero (co-located assumption), which keeps
    delays optimistic -- exactly what a feasibility *lower bound* needs.
    """
    distance = distance_km(a, b)
    if distance is None:
        return 0.0
    return distance * _PATH_STRETCH / _FIBER_KM_PER_MS


def min_rtt_ms(a: str, b: str) -> float:
    """The physical floor on RTT between two locations (ms)."""
    distance = distance_km(a, b)
    if distance is None:
        return 0.0
    # The floor uses the true great circle without stretch: no real
    # path can beat it.
    return 2.0 * distance / _FIBER_KM_PER_MS


def feasible(vp_loc: str, candidate_loc: str, rtt_ms: float,
             slack_ms: float = 2.0) -> bool:
    """Could a router in ``candidate_loc`` answer ``vp_loc`` in
    ``rtt_ms``?  (The DRoP-style constraint.)"""
    return rtt_ms + slack_ms >= min_rtt_ms(vp_loc, candidate_loc)
