"""Synthetic AS-level Internet generation.

Produces an AS graph with the structural features the paper's inference
problem depends on: a transit-free clique, regional transit providers,
access networks, stubs and content networks, sibling organizations owning
several ASNs, and IXPs with member sets.  Relationship semantics follow
CAIDA's serial-1 dataset (provider-customer, peer-peer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.asn.org import ASOrgMap
from repro.asn.relationships import ASRelationships
from repro.util.rand import substream


class Tier(enum.Enum):
    """Coarse role of an AS in the synthetic hierarchy."""

    CLIQUE = "clique"      # transit-free backbone (tier 1)
    TRANSIT = "transit"    # regional/national transit provider
    ACCESS = "access"      # access/eyeball ISP, sells to stubs
    STUB = "stub"          # enterprise or small network, buys transit only
    CONTENT = "content"    # content/CDN network, peers widely


# Pools used to synthesize operator slugs and location codes.  The slugs
# intentionally look like real operator shortnames so that generated
# hostnames resemble the paper's examples.
_SYLLABLES = [
    "tel", "net", "com", "link", "core", "via", "trans", "glo", "uni",
    "inter", "fast", "metro", "nova", "alt", "path", "wave", "peak",
    "iron", "star", "blue", "red", "north", "south", "east", "west",
    "sky", "terra", "aqua", "volt", "giga", "zet", "lumen", "dex",
    "quant", "hyper", "omni", "axi", "vec", "nex",
]

_COUNTRIES: List[Tuple[str, str]] = [
    # (country code, preferred TLD for operator domains)
    ("us", "net"), ("us", "com"), ("de", "de"), ("fr", "fr"), ("ch", "ch"),
    ("at", "at"), ("it", "it"), ("es", "es"), ("pl", "pl"), ("se", "se"),
    ("no", "no"), ("fi", "fi"), ("dk", "dk"), ("cz", "cz"), ("br", "com.br"),
    ("mx", "mx"), ("ca", "ca"), ("au", "net.au"), ("jp", "ne.jp"),
    ("kr", "kr"), ("in", "in"), ("za", "co.za"), ("ar", "com.ar"),
    ("cl", "cl"), ("uy", "net.uy"), ("be", "be"), ("nl", "nl"),
    ("gb", "co.uk"), ("nz", "net.nz"), ("lu", "lu"),
]

_LOC_CODES = [
    "nyc", "lax", "chi", "dfw", "sea", "mia", "iad", "sjc", "atl", "den",
    "lon", "fra", "ams", "par", "zrh", "vie", "mil", "mad", "waw", "sto",
    "osl", "hel", "cph", "prg", "gru", "mex", "yyz", "syd", "tyo", "sel",
    "bom", "jnb", "eze", "scl", "mvd", "bru", "dub", "akl", "mel", "hkg",
    "sin", "muc", "dus", "ber", "ham", "man", "bos", "phl", "slc", "phx",
]


@dataclass
class ASNode:
    """One autonomous system in the synthetic Internet."""

    asn: int
    tier: Tier
    slug: str                 # short operator name, e.g. "gtt" or "nts"
    org_id: str
    country: str
    domain: str               # registered domain the operator names under
    loc_codes: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Human-ish operator name derived from the slug."""
        return self.slug.capitalize()


@dataclass
class IXPSpec:
    """An Internet exchange point: shared peering LAN plus member set."""

    ixp_id: int
    slug: str                 # e.g. "akl-ix"
    domain: str               # e.g. "akl-ix.nz"
    country: str
    #: ASN of the exchange operator (route servers, management).  The
    #: LAN prefix is registered to this ASN, which is what pre-bdrmap
    #: election heuristics credit for LAN addresses.
    org_asn: int = 0
    members: List[int] = field(default_factory=list)
    # Peerings established across the LAN, as (a, b) ASN pairs.
    lan_peerings: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class ASGraphConfig:
    """Knobs controlling AS-graph generation."""

    n_clique: int = 5
    n_transit: int = 30
    n_access: int = 90
    n_stub: int = 140
    n_content: int = 15
    n_ixps: int = 18
    sibling_org_fraction: float = 0.08     # orgs owning several ASNs
    max_siblings: int = 3                  # extra ASNs per sibling org
    peering_prob: float = 0.15             # same-tier private peering
    ixp_member_fraction: float = 0.35      # transit/access/content at IXPs
    ixp_peering_prob: float = 0.35         # member pairs peering over LAN


@dataclass
class ASGraph:
    """The generated AS-level Internet."""

    nodes: Dict[int, ASNode]
    relationships: ASRelationships
    orgs: ASOrgMap
    ixps: List[IXPSpec]

    def node(self, asn: int) -> ASNode:
        """The :class:`ASNode` for ``asn`` (KeyError when absent)."""
        return self.nodes[asn]

    def asns(self) -> List[int]:
        """All ASNs, ascending."""
        return sorted(self.nodes)

    def by_tier(self, tier: Tier) -> List[ASNode]:
        """All nodes of ``tier``, ascending by ASN."""
        return [self.nodes[a] for a in self.asns()
                if self.nodes[a].tier is tier]

    def ixp_of_peering(self, a: int, b: int) -> Optional[IXPSpec]:
        """The IXP across whose LAN ``a`` and ``b`` peer, if any."""
        key = (min(a, b), max(a, b))
        for ixp in self.ixps:
            for pa, pb in ixp.lan_peerings:
                if (min(pa, pb), max(pa, pb)) == key:
                    return ixp
        return None


def _make_slug(rng, used: Set[str]) -> str:
    """Generate a fresh two-syllable operator slug."""
    for _ in range(1000):
        slug = rng.choice(_SYLLABLES) + rng.choice(_SYLLABLES)
        if rng.random() < 0.25:
            slug += str(rng.randint(1, 9))
        if slug not in used:
            used.add(slug)
            return slug
    raise RuntimeError("slug pool exhausted")


def _alloc_asn(rng, used: Set[int], tier: Tier) -> int:
    """Pick an unused ASN from a tier-appropriate range.

    Clique/transit networks get low, old-looking ASNs; stubs often get
    32-bit-era ASNs, matching the flavour of the paper's examples.
    """
    ranges = {
        Tier.CLIQUE: (174, 7018),
        Tier.TRANSIT: (701, 25000),
        Tier.ACCESS: (3000, 50000),
        Tier.CONTENT: (8000, 40000),
        Tier.STUB: (20000, 213000),
    }
    lo, hi = ranges[tier]
    for _ in range(10000):
        asn = rng.randint(lo, hi)
        if asn not in used:
            used.add(asn)
            return asn
    raise RuntimeError("ASN pool exhausted")


def generate_asgraph(seed: int,
                     config: Optional[ASGraphConfig] = None) -> ASGraph:
    """Build a deterministic synthetic AS graph from ``seed``.

    The construction proceeds top-down: the transit-free clique is fully
    meshed with peer links; each transit AS buys from 1-3 clique/transit
    networks; access networks buy from transit; stubs and content buy from
    access/transit; content networks peer widely.  A fraction of
    organizations receive sibling ASNs.  IXPs select members and establish
    LAN peerings among them.
    """
    config = config or ASGraphConfig()
    rng = substream(seed, "asgraph")
    used_slugs: Set[str] = set()
    used_asns: Set[int] = set()
    nodes: Dict[int, ASNode] = {}
    rels = ASRelationships()
    orgs = ASOrgMap()

    def new_node(tier: Tier) -> ASNode:
        slug = _make_slug(rng, used_slugs)
        asn = _alloc_asn(rng, used_asns, tier)
        country, tld = rng.choice(_COUNTRIES)
        domain = "%s.%s" % (slug, tld)
        org_id = "org-%s" % slug
        n_locs = {Tier.CLIQUE: 12, Tier.TRANSIT: 8, Tier.ACCESS: 5,
                  Tier.CONTENT: 6, Tier.STUB: 2}[tier]
        locs = rng.sample(_LOC_CODES, min(n_locs, len(_LOC_CODES)))
        node = ASNode(asn=asn, tier=tier, slug=slug, org_id=org_id,
                      country=country, domain=domain, loc_codes=locs)
        nodes[asn] = node
        orgs.assign(asn, org_id, node.name)
        return node

    clique = [new_node(Tier.CLIQUE) for _ in range(config.n_clique)]
    transit = [new_node(Tier.TRANSIT) for _ in range(config.n_transit)]
    access = [new_node(Tier.ACCESS) for _ in range(config.n_access)]
    content = [new_node(Tier.CONTENT) for _ in range(config.n_content)]
    stubs = [new_node(Tier.STUB) for _ in range(config.n_stub)]

    # Clique: full mesh of peerings.
    for i, a in enumerate(clique):
        for b in clique[i + 1:]:
            rels.add_p2p(a.asn, b.asn)

    # Transit networks buy from the clique (and occasionally each other).
    for node in transit:
        n_prov = rng.randint(1, 3)
        providers = rng.sample(clique, min(n_prov, len(clique)))
        for prov in providers:
            rels.add_p2c(prov.asn, node.asn)
    for i, a in enumerate(transit):
        for b in transit[i + 1:]:
            if rng.random() < config.peering_prob:
                rels.add_p2p(a.asn, b.asn)

    # Access networks buy from transit (sometimes two), peer occasionally.
    for node in access:
        n_prov = rng.randint(1, 2)
        providers = rng.sample(transit, min(n_prov, len(transit)))
        for prov in providers:
            rels.add_p2c(prov.asn, node.asn)
    for i, a in enumerate(access):
        for b in access[i + 1:]:
            if rng.random() < config.peering_prob / 3:
                rels.add_p2p(a.asn, b.asn)

    # Content networks buy a little transit and peer widely.
    for node in content:
        prov = rng.choice(transit)
        rels.add_p2c(prov.asn, node.asn)
        for other in transit + access:
            if rng.random() < config.peering_prob:
                rels.add_p2p(node.asn, other.asn)

    # Stubs buy from access/transit networks.
    pool = access + transit
    for node in stubs:
        n_prov = 1 if rng.random() < 0.7 else 2
        providers = rng.sample(pool, n_prov)
        for prov in providers:
            rels.add_p2c(prov.asn, node.asn)

    # Sibling organizations: merge a few orgs so one org owns 2-4 ASNs.
    candidates = transit + access + content
    n_sib_orgs = int(len(candidates) * config.sibling_org_fraction)
    sib_parents = rng.sample(candidates, n_sib_orgs)
    for parent in sib_parents:
        n_extra = rng.randint(1, config.max_siblings)
        extras = rng.sample(stubs + access, n_extra)
        for extra in extras:
            if extra.asn == parent.asn or extra in sib_parents:
                continue
            orgs.assign(extra.asn, parent.org_id, parent.name)

    # IXPs: members drawn from transit/access/content, LAN peerings among
    # members (valley-free peers).
    ixps: List[IXPSpec] = []
    member_pool = transit + access + content
    for ixp_id in range(config.n_ixps):
        country, tld = rng.choice(_COUNTRIES)
        loc = rng.choice(_LOC_CODES)
        slug = "%s-ix" % loc
        if any(x.slug == slug for x in ixps):
            slug = "%s-ix%d" % (loc, ixp_id)
        domain = "%s.%s" % (slug, tld)
        size = max(3, int(len(member_pool) * config.ixp_member_fraction
                          * rng.uniform(0.2, 0.7)))
        members = rng.sample(member_pool, min(size, len(member_pool)))
        org_asn = _alloc_asn(rng, used_asns, Tier.STUB)
        spec = IXPSpec(ixp_id=ixp_id, slug=slug, domain=domain,
                       country=country, org_asn=org_asn,
                       members=[m.asn for m in members])
        # Some exchanges are quiet: members keep ports (and PeeringDB
        # records) but route little traffic over the LAN, so traceroute
        # rarely observes them -- these exchanges become the
        # "PeeringDB-only" suffixes of section 4.
        activity = 0.12 if rng.random() < 0.3 else 1.0
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if rels.relationship(a.asn, b.asn) is not None:
                    continue
                if rng.random() < config.ixp_peering_prob * activity:
                    rels.add_p2p(a.asn, b.asn)
                    spec.lan_peerings.append((a.asn, b.asn))
        ixps.append(spec)

    return ASGraph(nodes=nodes, relationships=rels, orgs=orgs, ixps=ixps)
