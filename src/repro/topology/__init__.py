"""Synthetic Internet topology.

This package stands in for the measured Internet the paper works on.  It
builds, deterministically from a seed:

* an AS-level graph with CAIDA-style relationships, organizations (with
  sibling ASNs), and IXPs (:mod:`repro.topology.asgraph`);
* an address plan -- per-AS prefixes, infrastructure subnets, /31
  interconnects carved from the *supplying* AS's space, IXP peering LANs
  (:mod:`repro.topology.addressing`);
* a router-level topology -- core/edge/border routers per AS, internal
  links, private interconnects and IXP LAN attachments
  (:mod:`repro.topology.routers`);
* the :class:`repro.topology.world.World` container tying it together.

The key real-world property reproduced here, on which the whole paper
rests, is that the AS supplying the address space for an interconnection
names *both* ends of the link under its own domain (figure 1 of the
paper), so a router operated by AS B can only be observed via an address
registered and routed by AS A.
"""

from repro.topology.asgraph import ASGraph, ASNode, IXPSpec, Tier, generate_asgraph, ASGraphConfig
from repro.topology.addressing import AddressPlan, build_address_plan
from repro.topology.routers import (
    Interface,
    InterfaceKind,
    Link,
    LinkKind,
    Router,
    RouterLevelTopology,
    build_router_topology,
)
from repro.topology.world import World, WorldConfig, generate_world

__all__ = [
    "ASGraph",
    "ASNode",
    "IXPSpec",
    "Tier",
    "generate_asgraph",
    "ASGraphConfig",
    "AddressPlan",
    "build_address_plan",
    "Interface",
    "InterfaceKind",
    "Link",
    "LinkKind",
    "Router",
    "RouterLevelTopology",
    "build_router_topology",
    "World",
    "WorldConfig",
    "generate_world",
]
