"""Router-level topology built on top of the AS graph and address plan.

Each AS receives core routers (a ring with chords), edge routers hosting
its announced prefixes, and border routers terminating interdomain links.
Interconnection follows operational practice the paper highlights:

* a private interconnect is a /31 carved from the **supplying** AS's
  infrastructure space (the provider supplies on provider-customer links);
  both ends of the link -- including the neighbor's router -- therefore
  carry addresses registered and routed by the supplier;
* an IXP peering is realised by attaching each member's border router to
  the exchange's shared LAN, so members answer traceroute with
  IXP-owned addresses.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.asn.relationships import Relationship
from repro.topology.addressing import AddressPlan
from repro.topology.asgraph import ASGraph, ASNode, IXPSpec, Tier
from repro.util.ipaddr import IPv4Prefix, int_to_ip
from repro.util.rand import substream


class InterfaceKind(enum.Enum):
    """Functional role of an interface; drives hostname style."""

    LOOPBACK = "loopback"
    INTERNAL = "internal"      # intra-AS point-to-point
    P2P = "p2p"                # private interdomain interconnect
    IXP_LAN = "ixp-lan"        # interface on an IXP peering LAN
    EDGE = "edge"              # attachment for destination prefixes


class LinkKind(enum.Enum):
    """How two routers are joined."""

    INTERNAL = "internal"
    INTERDOMAIN = "interdomain"
    IXP = "ixp"


@dataclass
class Interface:
    """One addressed interface of a router."""

    address: int
    prefix: IPv4Prefix
    router: "Router"
    kind: InterfaceKind
    supplier_asn: int                   # AS whose space the address is from
    neighbor_asn: Optional[int] = None  # far-side AS on interdomain links
    ixp_id: Optional[int] = None        # for IXP LAN interfaces
    port: str = ""                      # interface name hint, e.g. "te0-1-0"
    hostname: Optional[str] = None      # set by the naming layer

    @property
    def ip(self) -> str:
        """Dotted-quad text of the address."""
        return int_to_ip(self.address)

    def __repr__(self) -> str:
        return "<Interface %s %s on %s>" % (self.ip, self.kind.value,
                                            self.router.rid)


@dataclass
class Link:
    """A point-to-point adjacency (or LAN attachment pair) between routers."""

    a: Interface
    b: Interface
    kind: LinkKind
    supplier_asn: int

    def other(self, iface: Interface) -> Interface:
        """The far end of the link relative to ``iface``."""
        if iface is self.a:
            return self.b
        if iface is self.b:
            return self.a
        raise ValueError("interface not on this link")


@dataclass
class Router:
    """A router with a ground-truth operator (the reproduction's oracle)."""

    rid: str
    asn: int                    # ground-truth operator
    role: str                   # core / edge / border / cpe
    loc: str
    index: int                  # per-AS ordinal, used in names
    interfaces: List[Interface] = field(default_factory=list)

    def add_interface(self, iface: Interface) -> None:
        """Attach ``iface`` to this router."""
        self.interfaces.append(iface)

    @property
    def name(self) -> str:
        """Base router name used by hostname templates, e.g. ``cr2``."""
        prefix = {"core": "cr", "edge": "er", "border": "br",
                  "cpe": "gw"}.get(self.role, "r")
        return "%s%d" % (prefix, self.index + 1)

    def __repr__(self) -> str:
        return "<Router %s AS%d %s>" % (self.rid, self.asn, self.role)

    def __hash__(self) -> int:
        return hash(self.rid)


@dataclass
class RouterLevelTopology:
    """All routers, interfaces and links of the synthetic Internet."""

    routers: List[Router]
    links: List[Link]
    interfaces_by_address: Dict[int, Interface]
    routers_by_asn: Dict[int, List[Router]]
    # (a, b) sorted ASN pair -> interdomain links between them
    interdomain_links: Dict[Tuple[int, int], List[Link]]
    # (ixp_id, member asn) -> the member's LAN interface
    ixp_ports: Dict[Tuple[int, int], Interface]
    # destination prefix -> edge router hosting it
    edge_router_of_prefix: Dict[IPv4Prefix, Router]
    # adjacency: router -> list of (link, far interface)
    adjacency: Dict[str, List[Tuple[Link, Interface]]] = field(
        default_factory=dict)

    def router_interfaces(self) -> List[Interface]:
        """Every interface across every router."""
        return [iface for router in self.routers
                for iface in router.interfaces]

    def neighbors(self, router: Router) -> List[Tuple[Link, Interface]]:
        """Adjacent (link, far interface) pairs for ``router``."""
        return self.adjacency.get(router.rid, [])


_CORE_COUNT = {
    Tier.CLIQUE: 6,
    Tier.TRANSIT: 4,
    Tier.ACCESS: 2,
    Tier.CONTENT: 2,
    Tier.STUB: 1,
}

_EDGE_COUNT = {
    Tier.CLIQUE: 3,
    Tier.TRANSIT: 2,
    Tier.ACCESS: 2,
    Tier.CONTENT: 1,
    Tier.STUB: 1,
}

_PORT_STYLES = ["te%d-%d-%d", "ge%d-%d-%d", "xe%d-%d-%d", "et%d-%d-%d",
                "hu%d-%d-%d"]


class _Builder:
    """Stateful helper assembling the router-level topology."""

    def __init__(self, graph: ASGraph, plan: AddressPlan, seed: int) -> None:
        self.graph = graph
        self.plan = plan
        self.rng = substream(seed, "routers")
        self.routers: List[Router] = []
        self.links: List[Link] = []
        self.by_asn: Dict[int, List[Router]] = defaultdict(list)
        self.interdomain: Dict[Tuple[int, int], List[Link]] = defaultdict(list)
        self.ixp_ports: Dict[Tuple[int, int], Interface] = {}
        self.edge_of_prefix: Dict[IPv4Prefix, Router] = {}
        self._counters: Dict[Tuple[int, str], int] = defaultdict(int)
        self._border_rr: Dict[int, int] = defaultdict(int)

    # -- router/interface primitives -------------------------------------

    def new_router(self, node: ASNode, role: str) -> Router:
        index = self._counters[(node.asn, role)]
        self._counters[(node.asn, role)] += 1
        loc = node.loc_codes[index % len(node.loc_codes)]
        router = Router(rid="r%d-%s%d" % (node.asn, role, index),
                        asn=node.asn, role=role, loc=loc, index=index)
        self.routers.append(router)
        self.by_asn[node.asn].append(router)
        return router

    def port_name(self) -> str:
        style = self.rng.choice(_PORT_STYLES)
        return style % (self.rng.randint(0, 2), self.rng.randint(0, 4),
                        self.rng.randint(0, 9))

    def attach(self, router: Router, address: int, prefix: IPv4Prefix,
               kind: InterfaceKind, supplier: int,
               neighbor: Optional[int] = None,
               ixp_id: Optional[int] = None) -> Interface:
        iface = Interface(address=address, prefix=prefix, router=router,
                          kind=kind, supplier_asn=supplier,
                          neighbor_asn=neighbor, ixp_id=ixp_id,
                          port=self.port_name())
        router.add_interface(iface)
        return iface

    def internal_link(self, ra: Router, rb: Router) -> Link:
        """Join two routers of the same AS with a /31 from that AS."""
        asn = ra.asn
        subnet = self.plan.infra[asn].p2p_subnet()
        ia = self.attach(ra, subnet.host(0), subnet,
                         InterfaceKind.INTERNAL, asn)
        ib = self.attach(rb, subnet.host(1), subnet,
                         InterfaceKind.INTERNAL, asn)
        link = Link(a=ia, b=ib, kind=LinkKind.INTERNAL, supplier_asn=asn)
        self.links.append(link)
        return link

    # -- per-AS internals -------------------------------------------------

    def build_as_internals(self, node: ASNode) -> None:
        cores = [self.new_router(node, "core")
                 for _ in range(_CORE_COUNT[node.tier])]
        # Loopbacks on core routers.
        for router in cores:
            alloc = self.plan.infra[node.asn]
            address = alloc.loopback()
            self.attach(router, address, IPv4Prefix(address, 32),
                        InterfaceKind.LOOPBACK, node.asn)
        # Ring plus a chord for larger networks.
        if len(cores) > 1:
            for i, router in enumerate(cores):
                self.internal_link(router, cores[(i + 1) % len(cores)])
            if len(cores) >= 5:
                self.internal_link(cores[0], cores[len(cores) // 2])
        # Edge routers: host the AS's destination prefixes.
        edges = [self.new_router(node, "edge")
                 for _ in range(_EDGE_COUNT[node.tier])]
        for i, router in enumerate(edges):
            self.internal_link(router, cores[i % len(cores)])
        edge_prefixes = self.plan.edge_prefixes(node.asn)
        for i, prefix in enumerate(edge_prefixes):
            self.edge_of_prefix[prefix] = edges[i % len(edges)]

    def border_router(self, node: ASNode) -> Router:
        """A border router for a new interdomain attachment.

        Border routers are reused for up to three attachments so that
        multi-neighbor border routers exist (they make election
        heuristics interesting).
        """
        existing = [r for r in self.by_asn[node.asn] if r.role == "border"]
        if existing:
            candidate = existing[self._border_rr[node.asn] % len(existing)]
            attach_count = sum(1 for i in candidate.interfaces
                               if i.kind in (InterfaceKind.P2P,
                                             InterfaceKind.IXP_LAN))
            if attach_count < 3:
                self._border_rr[node.asn] += 1
                return candidate
        router = self.new_router(node, "border")
        cores = [r for r in self.by_asn[node.asn] if r.role == "core"]
        self.internal_link(router, self.rng.choice(cores))
        return router

    # -- interdomain links --------------------------------------------------

    def private_link(self, supplier: ASNode, other: ASNode) -> None:
        subnet = self.plan.infra[supplier.asn].p2p_subnet()
        ra = self.border_router(supplier)
        rb = self.border_router(other)
        ia = self.attach(ra, subnet.host(0), subnet, InterfaceKind.P2P,
                         supplier.asn, neighbor=other.asn)
        ib = self.attach(rb, subnet.host(1), subnet, InterfaceKind.P2P,
                         supplier.asn, neighbor=supplier.asn)
        link = Link(a=ia, b=ib, kind=LinkKind.INTERDOMAIN,
                    supplier_asn=supplier.asn)
        self.links.append(link)
        key = (min(supplier.asn, other.asn), max(supplier.asn, other.asn))
        self.interdomain[key].append(link)

    def build_interdomain(self) -> None:
        rels = self.graph.relationships
        lan_pairs: Set[Tuple[int, int]] = set()
        for ixp in self.graph.ixps:
            for a, b in ixp.lan_peerings:
                lan_pairs.add((min(a, b), max(a, b)))
        seen: Set[Tuple[int, int]] = set()
        for asn in self.graph.asns():
            node = self.graph.node(asn)
            for customer in sorted(rels.customers(asn)):
                self.private_link(node, self.graph.node(customer))
                # Some customers take a redundant second link; the
                # backup is provisioned and named but carries no
                # traffic, so traceroute never observes it -- the
                # hidden-interconnection population of section 7.
                if self.rng.random() < 0.25:
                    self.private_link(node, self.graph.node(customer))
            for peer in sorted(rels.peers(asn)):
                key = (min(asn, peer), max(asn, peer))
                if key in seen or key in lan_pairs:
                    continue
                seen.add(key)
                # The structurally larger network supplies the subnet.
                peer_node = self.graph.node(peer)
                if rels.degree(peer) > rels.degree(asn):
                    self.private_link(peer_node, node)
                else:
                    self.private_link(node, peer_node)

    def build_ixps(self) -> None:
        for ixp in self.graph.ixps:
            lan = self.plan.ixp_lans[ixp.ixp_id]
            host = 1
            for member in ixp.members:
                node = self.graph.node(member)
                router = self.border_router(node)
                iface = self.attach(router, lan.host(host), lan,
                                    InterfaceKind.IXP_LAN, supplier=-1,
                                    ixp_id=ixp.ixp_id)
                self.ixp_ports[(ixp.ixp_id, member)] = iface
                host += 1
            # Wire LAN peerings as links between member interfaces.
            for a, b in ixp.lan_peerings:
                ia = self.ixp_ports[(ixp.ixp_id, a)]
                ib = self.ixp_ports[(ixp.ixp_id, b)]
                link = Link(a=ia, b=ib, kind=LinkKind.IXP, supplier_asn=-1)
                self.links.append(link)
                key = (min(a, b), max(a, b))
                self.interdomain[key].append(link)

    # -- assembly ----------------------------------------------------------

    def finish(self) -> RouterLevelTopology:
        by_address: Dict[int, Interface] = {}
        for router in self.routers:
            for iface in router.interfaces:
                by_address[iface.address] = iface
        adjacency: Dict[str, List[Tuple[Link, Interface]]] = defaultdict(list)
        for link in self.links:
            adjacency[link.a.router.rid].append((link, link.b))
            adjacency[link.b.router.rid].append((link, link.a))
        return RouterLevelTopology(
            routers=self.routers,
            links=self.links,
            interfaces_by_address=by_address,
            routers_by_asn=dict(self.by_asn),
            interdomain_links=dict(self.interdomain),
            ixp_ports=self.ixp_ports,
            edge_router_of_prefix=self.edge_of_prefix,
            adjacency=dict(adjacency),
        )


def build_router_topology(graph: ASGraph, plan: AddressPlan,
                          seed: int) -> RouterLevelTopology:
    """Construct the router-level topology for ``graph`` and ``plan``."""
    builder = _Builder(graph, plan, seed)
    for asn in graph.asns():
        builder.build_as_internals(graph.node(asn))
    builder.build_interdomain()
    builder.build_ixps()
    return builder.finish()
