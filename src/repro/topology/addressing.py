"""Address plan for the synthetic Internet.

Every AS receives announced prefixes sized by tier; the first prefix of
each AS doubles as its *infrastructure* block, from which loopbacks,
internal point-to-point subnets, and -- crucially -- the /31 interconnect
subnets it *supplies to neighbors* are carved.  IXP peering LANs come from
a separate pool and are registered with the route table's IXP sentinel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.asn.bgp import RouteTable
from repro.topology.asgraph import ASGraph, Tier
from repro.util.ipaddr import IPv4Prefix


_TIER_PREFIX_LEN = {
    Tier.CLIQUE: 14,
    Tier.TRANSIT: 16,
    Tier.ACCESS: 17,
    Tier.CONTENT: 18,
    Tier.STUB: 20,
}

_UNICAST_POOL = IPv4Prefix.parse("4.0.0.0/6")
_IXP_POOL = IPv4Prefix.parse("206.0.0.0/10")


class InfraAllocator:
    """Sequential allocator over an AS's infrastructure block.

    Hands out loopback /32s, internal /31s, and supplied interconnect /31s
    without overlap.  Deterministic: identical call sequences produce
    identical addresses.
    """

    def __init__(self, block: IPv4Prefix) -> None:
        self._block = block
        self._next = block.network

    @property
    def block(self) -> IPv4Prefix:
        """The infrastructure block being carved."""
        return self._block

    def _take(self, length: int) -> IPv4Prefix:
        size = 1 << (32 - length)
        # Align the cursor to the requested size.
        aligned = (self._next + size - 1) & ~(size - 1)
        if aligned + size > self._block.network + self._block.size:
            raise RuntimeError("infrastructure block %s exhausted"
                               % self._block)
        self._next = aligned + size
        return IPv4Prefix(aligned, length)

    def loopback(self) -> int:
        """Allocate one loopback address."""
        return self._take(32).network

    def p2p_subnet(self) -> IPv4Prefix:
        """Allocate one /31 point-to-point subnet."""
        return self._take(31)


@dataclass
class AddressPlan:
    """Prefix allocations plus the BGP view derived from them."""

    route_table: RouteTable
    as_prefixes: Dict[int, List[IPv4Prefix]]
    infra: Dict[int, InfraAllocator]
    ixp_lans: Dict[int, IPv4Prefix] = field(default_factory=dict)

    def prefixes(self, asn: int) -> List[IPv4Prefix]:
        """Announced prefixes of ``asn``."""
        return self.as_prefixes.get(asn, [])

    def edge_prefixes(self, asn: int) -> List[IPv4Prefix]:
        """Prefixes of ``asn`` excluding the infrastructure block.

        Edge prefixes host the addresses traceroute campaigns target.
        When an AS has a single prefix, its non-infra back half is used.
        """
        allocated = self.as_prefixes.get(asn, [])
        if not allocated:
            return []
        if len(allocated) > 1:
            return allocated[1:]
        # Single prefix: split off the back half for edge addresses.
        first = allocated[0]
        if first.length >= 24:
            return [first]
        halves = list(first.subnets(first.length + 1))
        return [halves[1]]


def build_address_plan(graph: ASGraph) -> AddressPlan:
    """Allocate prefixes for every AS and LAN for every IXP.

    Allocation order is the sorted ASN order, so the plan is a pure
    function of the graph.
    """
    route_table = RouteTable()
    as_prefixes: Dict[int, List[IPv4Prefix]] = {}
    infra: Dict[int, InfraAllocator] = {}

    cursor = _UNICAST_POOL.network
    limit = _UNICAST_POOL.network + _UNICAST_POOL.size

    def take(length: int) -> IPv4Prefix:
        nonlocal cursor
        size = 1 << (32 - length)
        aligned = (cursor + size - 1) & ~(size - 1)
        if aligned + size > limit:
            raise RuntimeError("unicast pool exhausted")
        cursor = aligned + size
        return IPv4Prefix(aligned, length)

    for asn in graph.asns():
        node = graph.node(asn)
        length = _TIER_PREFIX_LEN[node.tier]
        first = take(length)
        prefixes = [first]
        # Large networks announce a second, distant prefix so that
        # election heuristics see multiple origins occasionally.
        if node.tier in (Tier.CLIQUE, Tier.TRANSIT):
            prefixes.append(take(length + 2))
        for prefix in prefixes:
            route_table.announce(prefix, asn)
        as_prefixes[asn] = prefixes
        # Infrastructure: front quarter of the first prefix.
        infra_block = next(iter(first.subnets(min(first.length + 2, 32))))
        infra[asn] = InfraAllocator(infra_block)

    plan = AddressPlan(route_table=route_table, as_prefixes=as_prefixes,
                       infra=infra)

    ixp_cursor = _IXP_POOL.network
    for ixp in graph.ixps:
        lan = IPv4Prefix(ixp_cursor, 24)
        ixp_cursor += lan.size
        route_table.add_ixp_prefix(lan, org_asn=ixp.org_asn or None)
        plan.ixp_lans[ixp.ixp_id] = lan

    return plan
