"""Parser and lookup for public-suffix-list rule files.

Implements the algorithm from https://publicsuffix.org/list/:

* rules are matched label-by-label from the right;
* ``*`` matches exactly one label;
* exception rules (``!``) defeat a matching wildcard rule;
* among matching rules the one with the most labels wins;
* if no rule matches, the public suffix is the rightmost label.

The *registered domain* (what the paper calls the suffix an operator
registers, e.g. ``example.com``) is the public suffix plus one more label.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.psl.list_data import EMBEDDED_PSL


class PublicSuffixList:
    """A parsed public suffix list supporting registered-domain extraction.

    >>> psl = default_psl()
    >>> psl.registered_domain("ge0-2.01.p.ost.ch.as15576.nts.ch")
    'nts.ch'
    >>> psl.registered_domain("foo.example.co.uk")
    'example.co.uk'
    >>> psl.public_suffix("foo.example.co.uk")
    'co.uk'
    """

    def __init__(self, rules: Iterable[str]) -> None:
        # Map rule tuple (labels, reversed) -> is_exception
        self._rules: Dict[Tuple[str, ...], bool] = {}
        for raw in rules:
            line = raw.strip()
            if not line or line.startswith("//"):
                continue
            # Rules may carry trailing whitespace-separated comments.
            line = line.split()[0]
            exception = line.startswith("!")
            if exception:
                line = line[1:]
            labels = tuple(reversed(line.lower().lstrip(".").split(".")))
            if labels and all(labels):
                self._rules[labels] = exception

    @classmethod
    def from_text(cls, text: str) -> "PublicSuffixList":
        """Parse a PSL-format string (one rule per line, // comments)."""
        return cls(text.splitlines())

    @classmethod
    def from_file(cls, path: str) -> "PublicSuffixList":
        """Parse a PSL-format file from disk."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_text(handle.read())

    def __len__(self) -> int:
        return len(self._rules)

    def _matching_rules(
            self, labels: List[str]) -> List[Tuple[Tuple[str, ...], bool]]:
        """All rules matching the reversed label list ``labels``."""
        matches = []
        for rule, exception in self._rules.items():
            if len(rule) > len(labels):
                continue
            if all(r == "*" or r == lab
                   for r, lab in zip(rule, labels)):
                matches.append((rule, exception))
        return matches

    def public_suffix(self, hostname: str) -> Optional[str]:
        """Return the public suffix of ``hostname`` (lower-cased).

        Returns ``None`` for an empty hostname.
        """
        hostname = hostname.strip(".").lower()
        if not hostname:
            return None
        labels = list(reversed(hostname.split(".")))
        matches = self._matching_rules(labels)
        exception = [m for m in matches if m[1]]
        if exception:
            # An exception rule's suffix is the rule minus its first label.
            rule = max(exception, key=lambda m: len(m[0]))[0]
            width = len(rule) - 1
        elif matches:
            width = max(len(rule) for rule, _ in matches)
        else:
            width = 1  # default rule: "*" (rightmost label)
        width = min(width, len(labels))
        return ".".join(reversed(labels[:width]))

    def registered_domain(self, hostname: str) -> Optional[str]:
        """Return the registerable domain of ``hostname``.

        This is the public suffix plus one label -- the unit the paper
        trains one naming convention for.  Returns ``None`` when the
        hostname *is* a public suffix (nothing was registered under it).
        """
        hostname = hostname.strip(".").lower()
        suffix = self.public_suffix(hostname)
        if suffix is None:
            return None
        labels = hostname.split(".")
        suffix_width = suffix.count(".") + 1
        if len(labels) <= suffix_width:
            return None
        return ".".join(labels[-(suffix_width + 1):])


_DEFAULT: Optional[PublicSuffixList] = None


def default_psl() -> PublicSuffixList:
    """The embedded snapshot, parsed once and cached."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PublicSuffixList.from_text(EMBEDDED_PSL)
    return _DEFAULT
