"""Embedded snapshot of public suffix list rules.

The real Mozilla list has thousands of rules; this snapshot carries the
effective TLDs that appear in the paper's examples, the generic TLDs our
synthetic domain generator uses, and a handful of multi-label and
wildcard/exception rules so the parser's full rule semantics are exercised.
The file format matches https://publicsuffix.org/list/ so a user can point
:class:`repro.psl.PublicSuffixList` at the real list instead.
"""

EMBEDDED_PSL = """\
// ===BEGIN ICANN DOMAINS===

// generic TLDs
com
org
net
edu
gov
int
biz
info
io

// country TLDs used by the paper's examples and the synthetic world
ch
de
fr
at
it
es
pl
se
no
fi
dk
cz
ru
br
mx
ca
au
jp
kr
cn
in
za
ar
cl
us
uy
be
nl
lu

// multi-label public suffixes
co.uk
org.uk
ac.uk
net.uk
gov.uk
co.nz
org.nz
net.nz
ac.nz
geek.nz
govt.nz
com.au
net.au
org.au
edu.au
co.jp
ne.jp
or.jp
ad.jp
com.br
net.br
org.br
net.uy
com.uy
co.za
net.za
org.za
com.ar
net.ar
com.mx
net.mx
com.sg
net.sg
com.hk
net.hk
com.tw
net.tw
com.cn
net.cn
nsw.au

// wildcard and exception rules (exercise full PSL semantics)
*.ck
!www.ck
*.bd
*.er

// ===END ICANN DOMAINS===

// ===BEGIN PRIVATE DOMAINS===
// (representative private-section rules)
blogspot.com
github.io
// ===END PRIVATE DOMAINS===
"""
