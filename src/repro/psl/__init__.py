"""Public suffix list support.

Hoiho groups hostnames by the operator-registerable suffix (section 3 of
the paper), determined with the Mozilla public suffix list.  This package
provides a parser for PSL-format rule files (including wildcard ``*.`` and
exception ``!`` rules), an embedded snapshot of the rules the synthetic
world and tests need, and registered-domain extraction.
"""

from repro.psl.psl import PublicSuffixList, default_psl

__all__ = ["PublicSuffixList", "default_psl"]
